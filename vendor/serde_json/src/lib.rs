//! Offline stand-in for `serde_json`: serializes the vendored
//! [`serde::Value`] tree to JSON text and parses JSON text back.
//!
//! Implements exactly the surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`], and
//! an [`Error`] type. Numbers round-trip through Rust's shortest-form
//! float `Display`, which `str::parse::<f64>` inverts exactly.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.0)
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Converts a typed value into the generic [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Converts a generic [`Value`] tree into a typed value.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest-round-trip Display; `1.0` prints as "1", which
        // parses back as an integer Value — the serde shim's numeric
        // coercions make that lossless for f64 targets.
        out.push_str(&x.to_string());
    } else {
        // JSON has no NaN/Infinity; serde_json writes null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input was &str, so
                    // byte boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::I64(n)),
                Err(_) => {
                    text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
                }
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::U64(n)),
                Err(_) => {
                    text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn float_display_round_trip() {
        for x in [0.05f64, 1.0, 1e-12, 123456.789, f64::MAX, 5e-324] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}\u{7}".to_owned();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn surrogate_pair_escape() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Vec<u64>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3]]);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[3]]");
    }

    #[test]
    fn pretty_output() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Value = from_str(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k"), Some(&Value::Array(vec![Value::U64(1), Value::U64(2)])));
    }
}
