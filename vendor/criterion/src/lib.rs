//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with criterion's surface syntax (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `black_box`).
//!
//! Methodology: each benchmark warms up for ~300 ms to calibrate an
//! iteration count, then takes `sample_size` timed samples and reports
//! the median ns/iteration plus derived throughput. Results print to
//! stdout; there is no statistical regression analysis or HTML report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: converts time/iter into elements- or
/// bytes-per-second in the printed report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warm_up: Duration::from_millis(300), measurement: Duration::from_millis(1000) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named group of related benchmarks sharing throughput/sample config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.sample_size,
            sample: None,
        };
        f(&mut bencher);
        self.report(&id.name, bencher.sample);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, sample: Option<f64>) {
        let label =
            if self.name.is_empty() { id.to_owned() } else { format!("{}/{}", self.name, id) };
        let Some(ns_per_iter) = sample else {
            println!("{label:<50} (no measurement)");
            return;
        };
        let time = format_ns(ns_per_iter);
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (ns_per_iter / 1e9);
                println!("{label:<50} time: {time:>12}  thrpt: {} elem/s", format_rate(rate));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (ns_per_iter / 1e9);
                println!("{label:<50} time: {time:>12}  thrpt: {}B/s", format_rate(rate));
            }
            None => println!("{label:<50} time: {time:>12}"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    sample: Option<f64>,
}

impl Bencher {
    /// Times the closure: calibrates an iteration count during warm-up,
    /// then records the median of `sample_size` timed samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and calibration: find iters that take ~1/sample_size of
        // the measurement window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter) as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.sample = Some(samples[samples.len() / 2]);
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c =
            Criterion { warm_up: Duration::from_millis(5), measurement: Duration::from_millis(20) };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("fifo", 500).name, "fifo/500");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }
}
