//! Offline stand-in for the `serde` data model.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal serde-compatible core: a [`Value`] tree,
//! [`Serialize`]/[`Deserialize`] traits expressed in terms of it, and
//! declarative macros ([`impl_serde_struct!`], [`impl_serde_unit_enum!`],
//! [`impl_serde_transparent!`]) that replace `#[derive(Serialize,
//! Deserialize)]` for the shapes this codebase uses. Types with
//! non-trivial representations (externally tagged enums with payloads)
//! write the two impls by hand — see `simmr_types::history::HistoryLine`
//! and `simmr_stats::dist::Dist`.
//!
//! The JSON text format lives in the sibling `serde_json` shim; this
//! crate is format-agnostic.

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A self-describing data tree: the intermediate representation between
/// typed values and a concrete format (JSON, in this workspace).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key order is preserved (serialization is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an `Object` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.type_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the self-describing [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the serialized object.
    /// Overridden by `Option<T>` (absent means `None`); everything else
    /// treats a missing field as an error.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// `&'static str` fields deserialize by leaking the owned string; this
/// codebase only uses them for a small fixed catalog of labels, so the
/// leak is bounded in practice.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Arc::from(s.as_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Impl macros (the stand-in for #[derive(Serialize, Deserialize)])
// ---------------------------------------------------------------------------

/// Implements `Serialize`/`Deserialize` for a plain struct with named
/// fields, mapping it to a JSON object with the field names as keys.
///
/// ```ignore
/// impl_serde_struct!(PhaseStats { avg, max, count });
/// ```
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_owned(), $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::DeError> {
                if !matches!(v, $crate::Value::Object(_)) {
                    return Err($crate::DeError::new(format!(
                        "expected object for {}", stringify!($ty)
                    )));
                }
                Ok($ty {
                    $($field: match v.get(stringify!($field)) {
                        Some(fv) => $crate::Deserialize::from_value(fv)
                            .map_err(|e| $crate::DeError::new(format!(
                                "{}.{}: {}", stringify!($ty), stringify!($field), e
                            )))?,
                        None => $crate::Deserialize::from_missing(stringify!($field))?,
                    },)+
                })
            }
        }
    };
}

/// Implements `Serialize`/`Deserialize` for a field-less enum, mapping
/// each variant to its name as a JSON string (serde's default external
/// representation for unit variants).
///
/// ```ignore
/// impl_serde_unit_enum!(TaskKind { Map, Reduce });
/// ```
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let name = match self {
                    $($ty::$variant => stringify!($variant),)+
                };
                $crate::Value::Str(name.to_owned())
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::DeError> {
                match v {
                    $crate::Value::Str(s) => match s.as_str() {
                        $(stringify!($variant) => Ok($ty::$variant),)+
                        other => Err($crate::DeError::new(format!(
                            "unknown {} variant `{}`", stringify!($ty), other
                        ))),
                    },
                    other => Err($crate::DeError::new(format!(
                        "expected string for {}, got {:?}", stringify!($ty), other
                    ))),
                }
            }
        }
    };
}

/// Implements `Serialize`/`Deserialize` for a single-field tuple struct
/// as the bare inner value (serde's `#[serde(transparent)]`).
///
/// ```ignore
/// impl_serde_transparent!(SimTime(u64));
/// ```
#[macro_export]
macro_rules! impl_serde_transparent {
    ($ty:ident($inner:ty)) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::DeError> {
                <$inner as $crate::Deserialize>::from_value(v).map($ty)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: u32,
        y: Option<i64>,
    }
    impl_serde_struct!(Point { x, y });

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    impl_serde_unit_enum!(Color { Red, Green });

    #[derive(Debug, PartialEq)]
    struct Wrapped(u64);
    impl_serde_transparent!(Wrapped(u64));

    #[test]
    fn struct_round_trip() {
        let p = Point { x: 3, y: Some(-4) };
        assert_eq!(Point::from_value(&p.to_value()).unwrap(), p);
    }

    #[test]
    fn missing_option_field_is_none() {
        let v = Value::Object(vec![("x".into(), Value::U64(1))]);
        assert_eq!(Point::from_value(&v).unwrap(), Point { x: 1, y: None });
    }

    #[test]
    fn missing_required_field_errors() {
        let v = Value::Object(vec![("y".into(), Value::I64(1))]);
        assert!(Point::from_value(&v).is_err());
    }

    #[test]
    fn unit_enum_round_trip() {
        assert_eq!(Color::from_value(&Color::Green.to_value()).unwrap(), Color::Green);
        assert!(Color::from_value(&Value::Str("Blue".into())).is_err());
    }

    #[test]
    fn transparent_round_trip() {
        let w = Wrapped(99);
        assert_eq!(w.to_value(), Value::U64(99));
        assert_eq!(Wrapped::from_value(&w.to_value()).unwrap(), w);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::U64(7)).unwrap(), 7.0);
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::I64(-7)).is_err());
    }
}
