//! Offline stand-in for `proptest`: a deterministic random-input test
//! harness with the same surface syntax as the real crate, for the
//! subset this workspace uses.
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy) {..} }`
//! * Strategies: integer/float `Range`s, `proptest::collection::vec`,
//!   tuples (2–8), `Just`, `prop_oneof!`, `proptest::bool::ANY`, string
//!   patterns (`"\\PC{0,200}"`-style length-bounded printable strings),
//!   and `.prop_map`.
//! * `prop_assert!` / `prop_assert_eq!` panic like their `assert!`
//!   counterparts (no shrinking — cases are seeded deterministically per
//!   test, so a failure reproduces by rerunning the test).
//!
//! The RNG is a per-test SplitMix64 seeded from an FNV-1a hash of the
//! fully qualified test name, so runs are stable across processes and
//! machines and independent of test execution order.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64-based test RNG. Deterministic per seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Seeds from a stable FNV-1a hash of the test's qualified name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Debiased via rejection sampling on the high multiply.
        let zone = u64::MAX - u64::MAX.wrapping_rem(n);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return v % n;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of random values. Object-safe: `sample` is the only
/// required method; combinators are `Self: Sized`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.as_ref().sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start as f64 + rng.unit() * (self.end as f64 - self.start as f64);
                // Keep strictly below the exclusive upper bound.
                let x = x.min((self.end as f64).next_down()) as $t;
                x.max(self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// String-pattern strategy: `&str` implements `Strategy` the way
/// proptest treats string literals as regex patterns. Only the shape
/// this workspace uses is honored — a trailing `{lo,hi}` length bound;
/// characters are drawn from printable ASCII plus occasional non-ASCII
/// printables (approximating the `\PC` "not control" class).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_len_bounds(self).unwrap_or((0, 64));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(20) {
                0 => {
                    // Occasional non-ASCII printable char.
                    const POOL: &[char] = &['é', 'λ', '中', '🦀', '∅', 'ß', '→', '\u{00A0}'];
                    POOL[rng.below(POOL.len() as u64) as usize]
                }
                _ => (0x20 + rng.below(0x5F) as u32) as u8 as char,
            };
            out.push(c);
        }
        out
    }
}

fn parse_len_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len)`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi_exclusive - self.len.lo) as u64;
            let n = self.len.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Number of random cases each `proptest!` test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 96 keeps offline CI fast
        // while still exercising a broad input spread.
        ProptestConfig { cases: 96 }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Declares deterministic property tests. Mirrors proptest's syntax:
/// an optional `#![proptest_config(..)]` inner attribute followed by
/// `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among the listed strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($strategy) as $crate::BoxedStrategy<_>),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn int_ranges_respect_bounds(x in 3u64..17, y in -5i32..5, z in 0usize..1) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert_eq!(z, 0);
        }

        #[test]
        fn float_ranges_respect_bounds(x in 0.25f64..8.0, y in -1e6f64..1e6) {
            prop_assert!((0.25..8.0).contains(&x));
            prop_assert!((-1e6..1e6).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0u32..50, 0u64..100), 0..10),
            w in crate::collection::vec(1u64..1_000, 1..100),
            b in crate::bool::ANY,
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!((1..100).contains(&w.len()));
            for (a, t) in &v {
                prop_assert!(*a < 50 && *t < 100);
            }
            let _ = b;
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u8), Just(2u8)].prop_map(|v| v * 10u8)) {
            prop_assert!(x == 10u8 || x == 20u8);
        }

        #[test]
        fn string_pattern(s in "\\PC{0,20}") {
            prop_assert!(s.chars().count() <= 20);
            prop_assert!(!s.chars().any(|c| c.is_control()));
        }
    }
}
