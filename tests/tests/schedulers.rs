//! Cross-crate scheduler behaviour: the §V case-study claims as tests,
//! plus property-based engine invariants.

use proptest::prelude::*;
use simmr_bench::workloads::assign_deadlines;
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_stats::SeededRng;
use simmr_trace::FacebookWorkload;
use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

fn run(trace: &WorkloadTrace, policy: &str, slots: usize) -> simmr_types::SimulationReport {
    SimulatorEngine::new(
        EngineConfig::new(slots, slots),
        trace,
        parse_policy(policy).expect("known policy"),
    )
    .run()
}

/// The §V-C headline: MinEDF beats (or ties) MaxEDF on the relative
/// deadline-exceeded metric, on average across seeds.
#[test]
fn minedf_beats_maxedf_on_average() {
    let mut min_total = 0.0;
    let mut max_total = 0.0;
    for seed in 0..8u64 {
        let mut trace = FacebookWorkload { mean_interarrival_ms: 30_000.0 }.generate(60, seed);
        let mut rng = SeededRng::new(seed ^ 0xD00D);
        assign_deadlines(&mut trace, 2.0, 32, 32, &mut rng);
        min_total += run(&trace, "minedf", 32).total_relative_deadline_exceeded();
        max_total += run(&trace, "maxedf", 32).total_relative_deadline_exceeded();
    }
    assert!(
        min_total < max_total,
        "MinEDF ({min_total:.2}) should beat MaxEDF ({max_total:.2}) at df=2"
    );
}

/// With deadline factor 1 the policies coincide (§V-B, Figure 7a).
///
/// The claim holds for regular task durations (the paper's testbed apps):
/// with df=1 the bounds model concludes the maximum allocation is needed,
/// so MinEDF degenerates to MaxEDF. (Heavy-tailed Facebook-style jobs are
/// a different regime — the paper's own Figure 8 starts at df=1.1.)
#[test]
fn df_one_policies_coincide() {
    let mut rng = SeededRng::new(0xDF1);
    let mut trace = WorkloadTrace::new("df1", "test");
    let mut clock = SimTime::ZERO;
    for i in 0..20 {
        let maps = 4 + (i % 5) * 3;
        let reduces = 2 + i % 3;
        let template = JobTemplate::new(
            format!("regular-{i}"),
            vec![2_000; maps],
            vec![500],
            vec![1_000; reduces],
            vec![700; reduces],
        )
        .unwrap();
        trace.push(JobSpec::new(template, clock));
        clock += rng.uniform_u64(1_000, 20_000);
    }
    assign_deadlines(&mut trace, 1.0, 16, 16, &mut rng);
    let min = run(&trace, "minedf", 16);
    let max = run(&trace, "maxedf", 16);
    let completions =
        |r: &simmr_types::SimulationReport| r.jobs.iter().map(|j| j.completion).collect::<Vec<_>>();
    assert_eq!(
        completions(&min),
        completions(&max),
        "df=1 should make MinEDF degenerate to MaxEDF"
    );
}

/// Relaxing deadlines never hurts any deadline policy.
#[test]
fn relaxed_deadlines_monotone() {
    for policy in ["maxedf", "minedf"] {
        let base = FacebookWorkload { mean_interarrival_ms: 20_000.0 }.generate(40, 9);
        let mut at: Vec<f64> = Vec::new();
        for df in [1.0, 1.5, 3.0] {
            let mut trace = base.clone();
            let mut rng = SeededRng::new(42);
            assign_deadlines(&mut trace, df, 16, 16, &mut rng);
            at.push(run(&trace, policy, 16).total_relative_deadline_exceeded());
        }
        assert!(
            at[0] >= at[1] && at[1] >= at[2],
            "{policy}: metric should fall as deadlines relax: {at:?}"
        );
    }
}

/// Sparser arrivals reduce deadline pressure (the Figure 7 x-axis trend).
/// Heavy-tailed job mixes are noisy at intermediate rates, so this checks
/// the two endpoints of the sweep over several seeds.
#[test]
fn sparser_arrivals_reduce_pressure() {
    let mut values = Vec::new();
    for mean_ia in [2_000.0, 50_000_000.0] {
        let mut total = 0.0;
        for seed in 0..6u64 {
            let mut trace = FacebookWorkload { mean_interarrival_ms: mean_ia }.generate(40, seed);
            let mut rng = SeededRng::new(seed);
            assign_deadlines(&mut trace, 1.5, 16, 16, &mut rng);
            total += run(&trace, "maxedf", 16).total_relative_deadline_exceeded();
        }
        values.push(total);
    }
    assert!(
        values[0] > values[1],
        "deadline metric should decay with sparser arrivals: {values:?}"
    );
}

/// FIFO ignores deadlines entirely: permuting deadlines cannot change
/// completions.
#[test]
fn fifo_is_deadline_blind() {
    let mut trace = FacebookWorkload { mean_interarrival_ms: 10_000.0 }.generate(30, 3);
    let a = run(&trace, "fifo", 8);
    let mut rng = SeededRng::new(1);
    assign_deadlines(&mut trace, 2.0, 8, 8, &mut rng);
    let b = run(&trace, "fifo", 8);
    let completions =
        |r: &simmr_types::SimulationReport| r.jobs.iter().map(|j| j.completion).collect::<Vec<_>>();
    assert_eq!(completions(&a), completions(&b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine invariants hold for arbitrary small workloads under every
    /// policy: all jobs complete after arrival, the makespan covers the
    /// last completion, and a job is never faster than its critical path.
    #[test]
    fn engine_invariants(
        jobs in proptest::collection::vec(
            (1usize..12, 0usize..6, 10u64..2_000, 0u64..5_000),
            1..12,
        ),
        slots in 1usize..8,
        policy_idx in 0usize..4,
    ) {
        let policy = ["fifo", "maxedf", "minedf", "fair"][policy_idx];
        let mut trace = WorkloadTrace::new("prop", "test");
        for (maps, reduces, dur, arrival) in jobs {
            let template = JobTemplate::new(
                "p",
                vec![dur; maps],
                if reduces > 0 { vec![dur / 2] } else { vec![] },
                if reduces > 0 { vec![dur; reduces] } else { vec![] },
                vec![dur / 3; reduces],
            ).unwrap();
            let mut spec = JobSpec::new(template, SimTime::from_millis(arrival));
            if arrival % 2 == 0 {
                spec = spec.with_deadline(SimTime::from_millis(arrival + dur * 20));
            }
            trace.push(spec);
        }
        let report = run(&trace, policy, slots);
        prop_assert_eq!(report.jobs.len(), trace.len());
        for (result, spec) in report.jobs.iter().zip(&trace.jobs) {
            prop_assert!(result.completion >= result.arrival);
            // critical path: longest map + (if reduces) longest shuffle+reduce
            let t = &spec.template;
            let mut critical = *t.map_durations.iter().max().unwrap();
            if t.num_reduces > 0 {
                critical += t.reduce_durations.iter().max().copied().unwrap_or(0);
            }
            prop_assert!(
                result.duration() >= critical.min(result.duration()),
                "job faster than critical path"
            );
        }
        let max_completion = report.jobs.iter().map(|j| j.completion).max().unwrap();
        prop_assert_eq!(report.makespan, max_completion);
    }

    /// More slots never increase the FIFO makespan.
    #[test]
    fn makespan_monotone_in_slots(
        seed in 0u64..50,
        slots in 2usize..16,
    ) {
        let trace = FacebookWorkload { mean_interarrival_ms: 5_000.0 }.generate(15, seed);
        let small = run(&trace, "fifo", slots);
        let big = run(&trace, "fifo", slots * 2);
        prop_assert!(
            big.makespan <= small.makespan,
            "doubling slots increased makespan: {} -> {}",
            small.makespan, big.makespan
        );
    }
}
