//! Cross-crate scheduler behaviour: the §V case-study claims as tests,
//! plus property-based engine invariants.

use proptest::prelude::*;
use simmr_bench::workloads::assign_deadlines;
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_stats::SeededRng;
use simmr_trace::{FacebookWorkload, MultiTenantWorkload};
use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

fn run(trace: &WorkloadTrace, policy: &str, slots: usize) -> simmr_types::SimulationReport {
    SimulatorEngine::new(
        EngineConfig::new(slots, slots),
        trace,
        parse_policy(policy).expect("known policy"),
    )
    .run()
}

/// The §V-C headline: MinEDF beats (or ties) MaxEDF on the relative
/// deadline-exceeded metric, on average across seeds.
#[test]
fn minedf_beats_maxedf_on_average() {
    let mut min_total = 0.0;
    let mut max_total = 0.0;
    for seed in 0..8u64 {
        let mut trace = FacebookWorkload { mean_interarrival_ms: 30_000.0 }.generate(60, seed);
        let mut rng = SeededRng::new(seed ^ 0xD00D);
        assign_deadlines(&mut trace, 2.0, 32, 32, &mut rng);
        min_total += run(&trace, "minedf", 32).total_relative_deadline_exceeded();
        max_total += run(&trace, "maxedf", 32).total_relative_deadline_exceeded();
    }
    assert!(
        min_total < max_total,
        "MinEDF ({min_total:.2}) should beat MaxEDF ({max_total:.2}) at df=2"
    );
}

/// With deadline factor 1 the policies coincide (§V-B, Figure 7a).
///
/// The claim holds for regular task durations (the paper's testbed apps):
/// with df=1 the bounds model concludes the maximum allocation is needed,
/// so MinEDF degenerates to MaxEDF. (Heavy-tailed Facebook-style jobs are
/// a different regime — the paper's own Figure 8 starts at df=1.1.)
#[test]
fn df_one_policies_coincide() {
    let mut rng = SeededRng::new(0xDF1);
    let mut trace = WorkloadTrace::new("df1", "test");
    let mut clock = SimTime::ZERO;
    for i in 0..20 {
        let maps = 4 + (i % 5) * 3;
        let reduces = 2 + i % 3;
        let template = JobTemplate::new(
            format!("regular-{i}"),
            vec![2_000; maps],
            vec![500],
            vec![1_000; reduces],
            vec![700; reduces],
        )
        .unwrap();
        trace.push(JobSpec::new(template, clock));
        clock += rng.uniform_u64(1_000, 20_000);
    }
    assign_deadlines(&mut trace, 1.0, 16, 16, &mut rng);
    let min = run(&trace, "minedf", 16);
    let max = run(&trace, "maxedf", 16);
    let completions =
        |r: &simmr_types::SimulationReport| r.jobs.iter().map(|j| j.completion).collect::<Vec<_>>();
    assert_eq!(
        completions(&min),
        completions(&max),
        "df=1 should make MinEDF degenerate to MaxEDF"
    );
}

/// Relaxing deadlines never hurts any deadline policy.
#[test]
fn relaxed_deadlines_monotone() {
    for policy in ["maxedf", "minedf"] {
        let base = FacebookWorkload { mean_interarrival_ms: 20_000.0 }.generate(40, 9);
        let mut at: Vec<f64> = Vec::new();
        for df in [1.0, 1.5, 3.0] {
            let mut trace = base.clone();
            let mut rng = SeededRng::new(42);
            assign_deadlines(&mut trace, df, 16, 16, &mut rng);
            at.push(run(&trace, policy, 16).total_relative_deadline_exceeded());
        }
        assert!(
            at[0] >= at[1] && at[1] >= at[2],
            "{policy}: metric should fall as deadlines relax: {at:?}"
        );
    }
}

/// Sparser arrivals reduce deadline pressure (the Figure 7 x-axis trend).
/// Heavy-tailed job mixes are noisy at intermediate rates, so this checks
/// the two endpoints of the sweep over several seeds.
#[test]
fn sparser_arrivals_reduce_pressure() {
    let mut values = Vec::new();
    for mean_ia in [2_000.0, 50_000_000.0] {
        let mut total = 0.0;
        for seed in 0..6u64 {
            let mut trace = FacebookWorkload { mean_interarrival_ms: mean_ia }.generate(40, seed);
            let mut rng = SeededRng::new(seed);
            assign_deadlines(&mut trace, 1.5, 16, 16, &mut rng);
            total += run(&trace, "maxedf", 16).total_relative_deadline_exceeded();
        }
        values.push(total);
    }
    assert!(
        values[0] > values[1],
        "deadline metric should decay with sparser arrivals: {values:?}"
    );
}

/// FIFO ignores deadlines entirely: permuting deadlines cannot change
/// completions.
#[test]
fn fifo_is_deadline_blind() {
    let mut trace = FacebookWorkload { mean_interarrival_ms: 10_000.0 }.generate(30, 3);
    let a = run(&trace, "fifo", 8);
    let mut rng = SeededRng::new(1);
    assign_deadlines(&mut trace, 2.0, 8, 8, &mut rng);
    let b = run(&trace, "fifo", 8);
    let completions =
        |r: &simmr_types::SimulationReport| r.jobs.iter().map(|j| j.completion).collect::<Vec<_>>();
    assert_eq!(completions(&a), completions(&b));
}

// ---- hierarchical pool-tree policy ----------------------------------------

/// A map-only job with one tenant-prefixed name.
fn tenant_job(name: &str, maps: usize, map_ms: u64, arrival_ms: u64) -> JobSpec {
    JobSpec::new(
        JobTemplate::new(name, vec![map_ms; maps], vec![], vec![], vec![]).unwrap(),
        SimTime::from_millis(arrival_ms),
    )
}

fn run_invariant_checked(
    trace: &WorkloadTrace,
    policy: &str,
    slots: usize,
) -> simmr_types::SimulationReport {
    SimulatorEngine::new(
        EngineConfig::new(slots, 2).with_invariants(),
        trace,
        parse_policy(policy).expect("known policy"),
    )
    .run()
}

/// The ISSUE acceptance scenario: three tenants under
/// `hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc[w=1]`. An adhoc job
/// hogs all 8 map slots; prod jobs arrive and sit below prod's 4-slot
/// minimum share; 30 s later the min-share preemption pass kills the
/// youngest adhoc tasks — exactly enough to restore the guarantee — and
/// the whole run replays byte-identically with the extended invariant
/// checker (per-pool share accounting) armed.
#[test]
fn hier_three_tenant_preemption_restores_min_share() {
    let mut trace = WorkloadTrace::new("three-tenant", "hier-acceptance");
    trace.push(tenant_job("adhoc-hog", 8, 120_000, 0));
    trace.push(tenant_job("prod-etl-urgent", 4, 10_000, 5_000));
    trace.push(tenant_job("prod-serving-urgent", 2, 10_000, 6_000));
    let spec = "hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc[w=1]";

    let report = run_invariant_checked(&trace, spec, 8);
    // prod starves from t=5s; the wakeup fires at t=35s and four adhoc
    // tasks die: etl gets 2 slots (waves at 45s and 55s), serving 2 (45s)
    assert_eq!(report.jobs[1].completion, SimTime::from_millis(55_000));
    assert_eq!(report.jobs[2].completion, SimTime::from_millis(45_000));
    // adhoc's 4 surviving tasks still finish at 120s; the 4 killed ones
    // relaunch only after prod drains (2 at 45s, 2 at 55s)
    assert_eq!(report.jobs[0].completion, SimTime::from_millis(175_000));

    // byte-identical same-seed rerun, preemption decisions included
    assert_eq!(report, run_invariant_checked(&trace, spec, 8));

    // without the timeout the same tree never preempts: prod waits for
    // the hog to finish at 120s
    let no_timeout =
        run_invariant_checked(&trace, "hier:prod[w=3,min=4]{etl,serving},adhoc[w=1]", 8);
    assert_eq!(no_timeout.jobs[1].completion, SimTime::from_millis(130_000));
    assert_eq!(no_timeout.jobs[0].completion, SimTime::from_millis(120_000));
}

/// A flat `hier:` tree (leaves only, no mins/timeouts) is the capacity
/// scheduler: same weights, same prefix routing, byte-identical reports —
/// the snapshot oracle for the `capacity:` spec stays unchanged.
#[test]
fn flat_hier_tree_matches_capacity_byte_identically() {
    let trace = MultiTenantWorkload::three_tenant(8_000.0).generate(40, 17);
    for (hier, capacity) in [
        // the hier leaves are listed in name order because `capacity:`
        // params normalize to name order at parse time (PolicySpec
        // canonicalization) — equal orders keep tie-breaking identical
        (
            "hier:adhoc[w=3],prod-etl[w=2],prod-serving",
            "capacity:prod-etl=2,prod-serving=1,adhoc=3",
        ),
        // single leaf degenerates to one queue holding everything
        ("hier:only", "capacity:only=1"),
    ] {
        let h = run_invariant_checked(&trace, hier, 6);
        let c = run_invariant_checked(&trace, capacity, 6);
        assert_eq!(h, c, "{hier} diverged from {capacity}");
    }
}

/// A min share larger than the whole cluster cannot over-kill: preemption
/// stops as soon as the starved pool has no pending work left, so the
/// number of kills is bounded by the pool's own demand.
#[test]
fn hier_min_share_beyond_cluster_capacity_is_bounded_by_demand() {
    let mut trace = WorkloadTrace::new("min-overcommit", "hier-edge");
    trace.push(tenant_job("other-hog", 4, 10_000, 0));
    trace.push(tenant_job("greedy-small", 2, 1_000, 200));
    let spec = "hier:greedy[w=1,min=100,timeout=0.1],other";
    let report = run_invariant_checked(&trace, spec, 4);
    // due at t=300: exactly 2 kills (greedy only has 2 tasks), both
    // relaunched immediately -> greedy completes at 1300
    assert_eq!(report.jobs[1].completion, SimTime::from_millis(1_300));
    // the 2 killed hog tasks restart at 1200/1300 after greedy drains
    assert_eq!(report.jobs[0].completion, SimTime::from_millis(11_300));
    assert_eq!(report, run_invariant_checked(&trace, spec, 4));
}

/// A preemption timeout of zero fires in the very scheduling pass that
/// sees the deficit — the starved pool claims its min share instantly.
#[test]
fn hier_zero_timeout_preempts_in_the_arrival_pass() {
    let mut trace = WorkloadTrace::new("timeout-zero", "hier-edge");
    trace.push(tenant_job("bg-hog", 4, 50_000, 0));
    trace.push(tenant_job("fg-urgent", 2, 1_000, 500));
    let report = run_invariant_checked(&trace, "hier:fg[w=1,min=2,timeout=0],bg", 4);
    assert_eq!(report.jobs[1].completion, SimTime::from_millis(1_500));
}

/// A pool that never receives a job is inert: it draws no share, its
/// min-share clock never starts (no pending work), and the schedule is
/// identical to the tree without it.
#[test]
fn hier_empty_pool_is_inert() {
    let mut trace = WorkloadTrace::new("empty-pool", "hier-edge");
    for i in 0..6u64 {
        trace.push(tenant_job(&format!("busy-{i}"), 3, 2_000, i * 700));
    }
    let with_idle = run_invariant_checked(&trace, "hier:idle[w=5,min=2,timeout=0.1],busy", 3);
    let without = run_invariant_checked(&trace, "hier:busy", 3);
    assert_eq!(with_idle, without);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same-seed determinism / rerun-stability sweep for the hierarchical
    /// policy over randomized multi-tenant workloads and cluster widths,
    /// with the extended invariant checker armed on every run.
    #[test]
    fn hier_replay_deterministic_across_reruns(
        seed in 0u64..30,
        slots in 2usize..10,
        jobs in 8usize..30,
    ) {
        let trace = MultiTenantWorkload::three_tenant(3_000.0).generate(jobs, seed);
        let spec = "hier:prod[w=3,min=2,timeout=1]{etl,serving},adhoc[w=1]";
        let run = || run_invariant_checked(&trace, spec, slots);
        let report = run();
        prop_assert_eq!(report.jobs.len(), jobs);
        for job in &report.jobs {
            prop_assert!(job.completion >= job.arrival);
        }
        prop_assert_eq!(report, run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine invariants hold for arbitrary small workloads under every
    /// policy: all jobs complete after arrival, the makespan covers the
    /// last completion, and a job is never faster than its critical path.
    #[test]
    fn engine_invariants(
        jobs in proptest::collection::vec(
            (1usize..12, 0usize..6, 10u64..2_000, 0u64..5_000),
            1..12,
        ),
        slots in 1usize..8,
        policy_idx in 0usize..5,
    ) {
        let policy = [
            "fifo",
            "maxedf",
            "minedf",
            "fair",
            "hier:x[w=3],p[w=1,min=1,timeout=0.2]",
        ][policy_idx];
        let mut trace = WorkloadTrace::new("prop", "test");
        for (maps, reduces, dur, arrival) in jobs {
            let template = JobTemplate::new(
                "p",
                vec![dur; maps],
                if reduces > 0 { vec![dur / 2] } else { vec![] },
                if reduces > 0 { vec![dur; reduces] } else { vec![] },
                vec![dur / 3; reduces],
            ).unwrap();
            let mut spec = JobSpec::new(template, SimTime::from_millis(arrival));
            if arrival % 2 == 0 {
                spec = spec.with_deadline(SimTime::from_millis(arrival + dur * 20));
            }
            trace.push(spec);
        }
        let report = run(&trace, policy, slots);
        prop_assert_eq!(report.jobs.len(), trace.len());
        for (result, spec) in report.jobs.iter().zip(&trace.jobs) {
            prop_assert!(result.completion >= result.arrival);
            // critical path: longest map + (if reduces) longest shuffle+reduce
            let t = &spec.template;
            let mut critical = *t.map_durations.iter().max().unwrap();
            if t.num_reduces > 0 {
                critical += t.reduce_durations.iter().max().copied().unwrap_or(0);
            }
            prop_assert!(
                result.duration() >= critical.min(result.duration()),
                "job faster than critical path"
            );
        }
        let max_completion = report.jobs.iter().map(|j| j.completion).max().unwrap();
        prop_assert_eq!(report.makespan, max_completion);
    }

    /// More slots never increase the FIFO makespan.
    #[test]
    fn makespan_monotone_in_slots(
        seed in 0u64..50,
        slots in 2usize..16,
    ) {
        let trace = FacebookWorkload { mean_interarrival_ms: 5_000.0 }.generate(15, seed);
        let small = run(&trace, "fifo", slots);
        let big = run(&trace, "fifo", slots * 2);
        prop_assert!(
            big.makespan <= small.makespan,
            "doubling slots increased makespan: {} -> {}",
            small.makespan, big.makespan
        );
    }
}
