//! End-to-end tests of the serve layer: the scenario facade, the memo
//! cache's byte-identity guarantee, and the live `simmr serve` HTTP
//! server under concurrent clients.

use simmr_serve::{ScenarioSpec, ServeConfig, Server, SimFacade, TraceRef};
use simmr_trace::{digest_trace, TraceDatabase};
use simmr_types::{ClusterSpec, JobSpec, JobTemplate, SimTime, WorkloadTrace};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn sample_trace() -> WorkloadTrace {
    let mut t = WorkloadTrace::new("serve test", "integration");
    for (i, (name, arrival)) in
        [("prod-etl", 0u64), ("adhoc-ml", 400), ("prod-serving", 900), ("adhoc-bi", 1_500)]
            .iter()
            .enumerate()
    {
        let maps: Vec<u64> = (0..4).map(|m| 300 + 100 * ((i as u64 + m) % 3)).collect();
        t.push(JobSpec::new(
            JobTemplate::new(*name, maps, vec![250, 150], vec![200], vec![120]).unwrap(),
            SimTime::from_millis(*arrival),
        ));
    }
    t
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simmr-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// A tiny test HTTP client (connection: close, optional dechunking)
// ---------------------------------------------------------------------------

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> Reply {
    let stream = TcpStream::connect(addr).expect("connect to test server");
    let mut writer = stream.try_clone().expect("clone socket");
    write!(
        writer,
        "{method} {target} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').expect("header colon");
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let chunked = headers.iter().any(|(n, v)| n == "transfer-encoding" && v.contains("chunked"));
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw).expect("read body");
    let body = if chunked { dechunk(&raw) } else { String::from_utf8(raw).expect("utf8 body") };
    Reply { status, headers, body }
}

/// Reassembles a chunked body (the test client reads to EOF first).
fn dechunk(mut raw: &[u8]) -> String {
    let mut out = Vec::new();
    loop {
        let line_end = raw.windows(2).position(|w| w == b"\r\n").expect("chunk size line");
        let size = usize::from_str_radix(
            std::str::from_utf8(&raw[..line_end]).expect("chunk size utf8"),
            16,
        )
        .expect("chunk size hex");
        raw = &raw[line_end + 2..];
        if size == 0 {
            break;
        }
        out.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..]; // skip chunk trailer CRLF
    }
    String::from_utf8(out).expect("utf8 chunked body")
}

/// Binds a server on an ephemeral port with the given trace database and
/// runs it on a background thread. Returns the address and the join
/// handle (joined after `/v1/shutdown` to assert a clean exit).
fn start_server(
    db_dir: &std::path::Path,
) -> (SocketAddr, std::thread::JoinHandle<Result<(), String>>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        db_dir: Some(db_dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("bind test server");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn run_body(policy: &str, seed: u64) -> String {
    format!(
        r#"{{"trace": "workload", "policy": "{policy}", "seed": {seed}, "deadline_factor": 2.0}}"#
    )
}

// ---------------------------------------------------------------------------
// Facade-level guarantees
// ---------------------------------------------------------------------------

#[test]
fn facade_matches_direct_engine_run() {
    use simmr_core::{EngineConfig, SimulatorEngine};
    let trace = sample_trace();
    let direct = SimulatorEngine::new(
        EngineConfig::new(8, 4),
        &trace,
        simmr_sched::parse_policy("maxedf").unwrap(),
    )
    .run();
    let mut spec = ScenarioSpec::new(TraceRef::Inline(trace), "maxedf".parse().unwrap());
    spec.cluster = ClusterSpec::new(8, 4);
    let run = SimFacade::new().run(&spec).expect("facade run");
    assert_eq!(run.report, direct);
    assert_eq!(
        serde_json::to_string(&run.report).unwrap(),
        serde_json::to_string(&direct).unwrap()
    );
}

#[test]
fn canonical_keys_agree_across_trace_ref_spellings() {
    let dir = tmpdir("keys");
    let db = TraceDatabase::open(&dir).unwrap();
    db.store("workload", &sample_trace()).unwrap();
    let facade = SimFacade::with_db(&dir).unwrap();
    let by_name = facade
        .resolve(&ScenarioSpec::new(TraceRef::Name("workload".into()), "fair".parse().unwrap()));
    let by_digest = facade.resolve(&ScenarioSpec::new(
        TraceRef::Digest(digest_trace(&sample_trace()).unwrap()),
        "fair".parse().unwrap(),
    ));
    let inline = facade
        .resolve(&ScenarioSpec::new(TraceRef::Inline(sample_trace()), "fair".parse().unwrap()));
    let key = by_name.expect("name resolves").key;
    assert_eq!(by_digest.expect("digest resolves").key, key);
    assert_eq!(inline.expect("inline resolves").key, key);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Live-server tests
// ---------------------------------------------------------------------------

#[test]
fn serve_caches_byte_identically_and_shuts_down_cleanly() {
    let dir = tmpdir("cache");
    TraceDatabase::open(&dir).unwrap().store("workload", &sample_trace()).unwrap();
    let (addr, handle) = start_server(&dir);

    let health = http(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""));

    // the trace listing carries the content digest used in cache keys
    let listing = http(addr, "GET", "/v1/traces", "");
    assert_eq!(listing.status, 200);
    let digest = digest_trace(&sample_trace()).unwrap().to_string();
    assert!(listing.body.contains(&digest), "listing {} lacks digest", listing.body);

    // same scenario twice: first computes, second hits the cache with the
    // exact same bytes
    let first = http(addr, "POST", "/v1/run", &run_body("maxedf", 7));
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(first.header("x-simmr-cache"), Some("miss"));
    let second = http(addr, "POST", "/v1/run", &run_body("maxedf", 7));
    assert_eq!(second.header("x-simmr-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cached response must be byte-identical");
    assert_eq!(first.header("x-simmr-digest"), Some(digest.as_str()));

    // normalization: a differently-spelled equivalent spec is the same entry
    let canonical = http(
        addr,
        "POST",
        "/v1/run",
        r#"{"trace": "workload", "policy": "capacity:adhoc=1,prod=3", "seed": 3}"#,
    );
    assert_eq!(canonical.header("x-simmr-cache"), Some("miss"));
    let reordered = http(
        addr,
        "POST",
        "/v1/run",
        r#"{"trace": {"name": "workload"}, "policy": "capacity:prod=3,adhoc=1", "seed": 3}"#,
    );
    assert_eq!(reordered.header("x-simmr-cache"), Some("hit"));
    assert_eq!(canonical.body, reordered.body);

    // bad requests fail without disturbing the server
    assert_eq!(http(addr, "POST", "/v1/run", "{not json").status, 400);
    assert_eq!(http(addr, "POST", "/v1/run", r#"{"trace": "nope", "policy": "fifo"}"#).status, 404);
    assert_eq!(http(addr, "GET", "/v1/run", "").status, 405);
    assert_eq!(http(addr, "GET", "/nowhere", "").status, 404);

    let bye = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(bye.status, 200);
    handle.join().expect("server thread").expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_sweep_batches_and_streams() {
    let dir = tmpdir("sweep");
    TraceDatabase::open(&dir).unwrap().store("workload", &sample_trace()).unwrap();
    let (addr, handle) = start_server(&dir);

    let sweep_body = r#"{"base": {"trace": "workload", "policy": "fifo", "deadline_factor": 1.5},
                         "policies": ["fifo", "maxedf", "minedf"], "seeds": [1, 2]}"#;
    let swept = http(addr, "POST", "/v1/sweep", sweep_body);
    assert_eq!(swept.status, 200, "body: {}", swept.body);
    assert_eq!(swept.header("x-simmr-sweep-count"), Some("6"));
    assert!(swept.body.starts_with('[') && swept.body.ends_with(']'));
    assert_eq!(swept.body.matches("\"cached\":false").count(), 6);

    // the same sweep streamed: every scenario is now cached, and NDJSON
    // lines carry the same reports the buffered form embedded
    let streamed = http(addr, "POST", "/v1/sweep?stream=1", sweep_body);
    assert_eq!(streamed.status, 200);
    let lines: Vec<&str> = streamed.body.lines().collect();
    assert_eq!(lines.len(), 6);
    for line in &lines {
        assert!(line.contains("\"cached\":true"), "expected cache hit: {line}");
        assert!(line.contains("\"report\":{"), "expected embedded report: {line}");
    }

    // a sweep scenario and a single run share the cache
    let single = http(
        addr,
        "POST",
        "/v1/run",
        r#"{"trace": "workload", "policy": "maxedf", "seed": 2, "deadline_factor": 1.5}"#,
    );
    assert_eq!(single.header("x-simmr-cache"), Some("hit"));

    let bad = http(addr, "POST", "/v1/sweep", r#"{"policies": ["fifo"]}"#);
    assert_eq!(bad.status, 400);

    assert_eq!(http(addr, "POST", "/v1/shutdown", "").status, 200);
    handle.join().expect("server thread").expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_fork_requests_share_prefix_checkpoints() {
    let dir = tmpdir("fork");
    TraceDatabase::open(&dir).unwrap().store("workload", &sample_trace()).unwrap();
    let (addr, handle) = start_server(&dir);

    // a contended cluster so divergences genuinely change the schedule
    let fork_run = |divergence: &str| {
        format!(
            r#"{{"trace": "workload", "policy": "fifo",
                 "cluster": {{"map_slots": 2, "reduce_slots": 1, "hosts": 2}},
                 "fork_at": 900, "divergences": [{divergence}]}}"#
        )
    };

    // first forked run computes and memoizes the prefix checkpoint
    let first = http(addr, "POST", "/v1/run", &fork_run(r#"{"policy": "maxedf"}"#));
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(first.header("x-simmr-cache"), Some("miss"));
    assert_eq!(first.header("x-simmr-ckpt"), Some("miss"));

    // identical request: the whole report is memoized, no engine run at all
    let again = http(addr, "POST", "/v1/run", &fork_run(r#"{"policy": "maxedf"}"#));
    assert_eq!(again.header("x-simmr-cache"), Some("hit"));
    assert_eq!(again.header("x-simmr-ckpt"), None, "report hits never touch the engine");
    assert_eq!(first.body, again.body);

    // a different divergence off the same prefix warm-starts from the memo
    let sibling =
        http(addr, "POST", "/v1/run", &fork_run(r#"{"add_slots": {"maps": 6, "reduces": 3}}"#));
    assert_eq!(sibling.status, 200, "body: {}", sibling.body);
    assert_eq!(sibling.header("x-simmr-cache"), Some("miss"));
    assert_eq!(sibling.header("x-simmr-ckpt"), Some("hit"));
    assert_ne!(sibling.body, first.body, "the divergences genuinely differ");

    // a sweep over fork variants runs the shared prefix zero extra times
    // (it is already resident from the /v1/run above)
    let sweep = format!(
        r#"{{"scenarios": [{}, {}, {}]}}"#,
        fork_run(r#"{"fault": {"host": 1, "at": 1200}}"#),
        fork_run(r#"{"add_slots": {"maps": 1}}"#),
        fork_run(r#"{"policy": "fair"}"#)
    );
    let swept = http(addr, "POST", "/v1/sweep", &sweep);
    assert_eq!(swept.status, 200, "body: {}", swept.body);
    assert_eq!(swept.header("x-simmr-sweep-count"), Some("3"));
    assert_eq!(swept.body.matches("\"cached\":false").count(), 3);

    // the checkpoint memo holds exactly one prefix, computed exactly once
    let health = http(addr, "GET", "/healthz", "");
    let ckpt_stats = health.body.split("\"checkpoints\":").nth(1).expect("checkpoints stats");
    assert!(ckpt_stats.starts_with("{\"entries\":1,"), "one shared prefix: {ckpt_stats}");
    assert!(ckpt_stats.contains("\"misses\":1"), "prefix computed once: {ckpt_stats}");

    // fork spec mistakes are 400s, not engine panics
    let no_instant = http(
        addr,
        "POST",
        "/v1/run",
        r#"{"trace": "workload", "policy": "fifo", "divergences": [{"policy": "fair"}]}"#,
    );
    assert_eq!(no_instant.status, 400, "divergences need fork_at");
    let lone_host = http(
        addr,
        "POST",
        "/v1/run",
        r#"{"trace": "workload", "policy": "fifo", "fork_at": 900,
            "divergences": [{"fault": {"host": 1}}]}"#,
    );
    assert_eq!(lone_host.status, 400, "the default cluster has no failable host");

    assert_eq!(http(addr, "POST", "/v1/shutdown", "").status, 200);
    handle.join().expect("server thread").expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_survives_concurrent_clients() {
    let dir = tmpdir("concurrent");
    TraceDatabase::open(&dir).unwrap().store("workload", &sample_trace()).unwrap();
    let (addr, handle) = start_server(&dir);

    // 8 clients × 4 requests, all for the same 2 scenarios: every response
    // for a scenario must be byte-identical regardless of which client
    // computed it first
    let bodies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client| {
                scope.spawn(move || {
                    (0..4)
                        .map(|i| {
                            let reply = http(
                                addr,
                                "POST",
                                "/v1/run",
                                &run_body(if (client + i) % 2 == 0 { "fifo" } else { "maxedf" }, 5),
                            );
                            assert_eq!(reply.status, 200, "body: {}", reply.body);
                            format!(
                                "{}|{}",
                                if (client + i) % 2 == 0 { "fifo" } else { "maxedf" },
                                reply.body
                            )
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let mut fifo: Vec<&String> = Vec::new();
    let mut maxedf: Vec<&String> = Vec::new();
    for body in bodies.iter().flatten() {
        if body.starts_with("fifo|") {
            fifo.push(body)
        } else {
            maxedf.push(body)
        }
    }
    assert_eq!(fifo.len() + maxedf.len(), 32);
    assert!(fifo.windows(2).all(|w| w[0] == w[1]), "fifo responses diverged");
    assert!(maxedf.windows(2).all(|w| w[0] == w[1]), "maxedf responses diverged");
    assert_ne!(fifo[0], maxedf[0]);

    assert_eq!(http(addr, "POST", "/v1/shutdown", "").status, 200);
    handle.join().expect("server thread").expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
