//! Validates the ARIA bounds model (simmr-model) against the SimMR engine
//! (simmr-core): the engine is an instance of the greedy assignment the
//! bounds theorem covers, so standalone completions must respect the model.

use proptest::prelude::*;
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_model::{
    estimate_completion, min_slots_for_deadline, min_slots_for_deadline_with, BoundBasis,
    JobProfileSummary,
};
use simmr_sched::parse_policy;
use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

fn standalone(template: &JobTemplate, map_slots: usize, reduce_slots: usize) -> u64 {
    let mut trace = WorkloadTrace::new("standalone", "model-validation");
    trace.push(JobSpec::new(template.clone(), SimTime::ZERO));
    SimulatorEngine::new(
        EngineConfig::new(map_slots, reduce_slots),
        &trace,
        parse_policy("fifo").unwrap(),
    )
    .run()
    .jobs[0]
        .duration()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For uniform task durations the engine's standalone completion lies
    /// within the model's [low, up] interval (uniform durations make the
    /// per-stage bounds tight around the wave structure).
    #[test]
    fn engine_within_model_bounds_uniform(
        maps in 1usize..60,
        reduces in 0usize..30,
        map_ms in 100u64..5_000,
        sh_ms in 50u64..3_000,
        red_ms in 50u64..3_000,
        map_slots in 1usize..16,
        reduce_slots in 1usize..16,
    ) {
        let template = JobTemplate::new(
            "uniform",
            vec![map_ms; maps],
            if reduces > 0 { vec![sh_ms] } else { vec![] },
            if reduces > 0 { vec![sh_ms; reduces] } else { vec![] },
            vec![red_ms; reduces],
        ).unwrap();
        let profile = JobProfileSummary::from_template(&template);
        let est = estimate_completion(&profile, map_slots, reduce_slots);
        let actual = standalone(&template, map_slots, reduce_slots) as f64;
        // Engine nuances the model ignores: slowstart overlap of the first
        // reduce wave and first-shuffle crediting. Allow modest slack.
        let slack = 1.15;
        prop_assert!(
            actual <= est.up * slack + 1.0,
            "actual {actual} above upper bound {}", est.up
        );
        prop_assert!(
            actual >= est.low / slack - 1.0,
            "actual {actual} below lower bound {}", est.low
        );
    }

    /// Per-basis allocation contracts hold in the engine:
    /// * Upper-basis allocations meet the deadline outright (the makespan
    ///   theorem guarantee, modulo the engine's small first-wave slack);
    /// * Estimate-basis allocations never exceed their own *upper-bound*
    ///   prediction — the bounded risk the paper's mean-of-bounds sizing
    ///   accepts.
    #[test]
    fn minedf_allocation_contracts_in_engine(
        maps in 2usize..50,
        reduces in 1usize..20,
        map_ms in 200u64..3_000,
        factor in 1.2f64..4.0,
    ) {
        let template = JobTemplate::new(
            "alloc",
            vec![map_ms; maps],
            vec![map_ms / 4],
            vec![map_ms / 2; reduces],
            vec![map_ms / 3; reduces],
        ).unwrap();
        // deadline = factor x the all-slots standalone runtime
        let t_j = standalone(&template, 64, 64);
        let deadline = (t_j as f64 * factor) as u64;
        let profile = JobProfileSummary::from_template(&template);

        // conservative basis: actual meets the deadline (when feasible)
        let upper = min_slots_for_deadline_with(&profile, deadline, 64, 64, BoundBasis::Upper);
        if estimate_completion(&profile, 64, 64).up <= deadline as f64 {
            let actual = standalone(&template, upper.maps, upper.reduces.max(1));
            prop_assert!(
                actual as f64 <= deadline as f64 * 1.15 + 1.0,
                "upper-basis {upper:?} blew deadline {deadline} (actual {actual}, T_J {t_j})"
            );
        }

        // default basis: actual stays below the allocation's own T_up
        let alloc = min_slots_for_deadline(&profile, deadline, 64, 64);
        let actual = standalone(&template, alloc.maps, alloc.reduces.max(1));
        let own_up = estimate_completion(&profile, alloc.maps, alloc.reduces.max(1)).up;
        prop_assert!(
            actual as f64 <= own_up * 1.15 + 1.0,
            "estimate-basis {alloc:?} exceeded its own bound (actual {actual}, up {own_up})"
        );
    }
}

#[test]
fn tighter_deadlines_run_faster_in_engine() {
    let template =
        JobTemplate::new("sweep", vec![1_000; 40], vec![300], vec![500; 10], vec![400; 10])
            .unwrap();
    let t_j = standalone(&template, 64, 64);
    let profile = JobProfileSummary::from_template(&template);
    let mut prev_duration = u64::MAX;
    for factor in [8.0, 4.0, 2.0, 1.2] {
        let deadline = (t_j as f64 * factor) as u64;
        let alloc = min_slots_for_deadline(&profile, deadline, 64, 64);
        let actual = standalone(&template, alloc.maps, alloc.reduces.max(1));
        assert!(
            actual <= prev_duration,
            "tighter deadline should not slow the job: {actual} > {prev_duration}"
        );
        prev_duration = actual;
    }
}
