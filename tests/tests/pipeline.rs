//! End-to-end validation pipeline tests (§IV methodology):
//! testbed execution → MRProfiler → SimMR / Mumak replay → accuracy.

use simmr_bench::pipeline::{
    accuracy_rows, mean_abs_error, replay_in_mumak, replay_in_simmr, run_testbed,
};
use simmr_cluster::{ClusterConfig, ClusterPolicy};
use simmr_integration::small_job;
use simmr_mumak::MumakConfig;
use simmr_trace::{profile_history, RumenTrace};
use simmr_types::SimTime;

fn config() -> ClusterConfig {
    ClusterConfig::tiny(8)
}

fn workload() -> Vec<(simmr_apps::JobModel, SimTime, Option<SimTime>)> {
    vec![
        (small_job(simmr_apps::AppKind::WordCount, 24, 8), SimTime::ZERO, None),
        (small_job(simmr_apps::AppKind::Sort, 16, 8), SimTime::from_secs(5), None),
        (small_job(simmr_apps::AppKind::Bayes, 12, 4), SimTime::from_secs(40), None),
    ]
}

#[test]
fn simmr_replay_accuracy_under_fifo() {
    let run = run_testbed(workload(), ClusterPolicy::Fifo, config(), 101);
    let report = replay_in_simmr(&run.history, "fifo", 8, 8, &[None, None, None]);
    let rows = accuracy_rows(&run, &report);
    assert_eq!(rows.len(), 3);
    let err = mean_abs_error(&rows);
    assert!(err < 10.0, "FIFO replay error {err:.2}% too large: {rows:?}");
}

#[test]
fn simmr_replay_accuracy_under_edf_policies() {
    for (policy, name) in [(ClusterPolicy::MaxEdf, "maxedf"), (ClusterPolicy::MinEdf, "minedf")] {
        let deadline = Some(SimTime::from_secs(600));
        let jobs: Vec<_> = workload().into_iter().map(|(m, a, _)| (m, a, deadline)).collect();
        let deadlines: Vec<Option<SimTime>> = jobs.iter().map(|(_, _, d)| *d).collect();
        let run = run_testbed(jobs, policy, config(), 202);
        let report = replay_in_simmr(&run.history, name, 8, 8, &deadlines);
        let rows = accuracy_rows(&run, &report);
        let err = mean_abs_error(&rows);
        // EDF replays can differ more when the two sides size allocations
        // from different profile sources — but must stay in the ballpark
        assert!(err < 25.0, "{name} replay error {err:.2}%: {rows:?}");
    }
}

#[test]
fn mumak_always_underestimates_and_simmr_beats_it() {
    let run = run_testbed(workload(), ClusterPolicy::Fifo, config(), 303);
    let simmr = replay_in_simmr(&run.history, "fifo", 8, 8, &[None, None, None]);
    let mumak =
        replay_in_mumak(&run.history, MumakConfig { num_trackers: 8, ..MumakConfig::default() });
    let simmr_rows = accuracy_rows(&run, &simmr);
    let mumak_rows = accuracy_rows(&run, &mumak);
    for row in &mumak_rows {
        assert!(
            row.error_pct() <= 0.5,
            "Mumak overestimated {}: {:+.2}%",
            row.name,
            row.error_pct()
        );
    }
    assert!(
        mean_abs_error(&simmr_rows) < mean_abs_error(&mumak_rows),
        "SimMR ({:.2}%) should beat Mumak ({:.2}%)",
        mean_abs_error(&simmr_rows),
        mean_abs_error(&mumak_rows)
    );
}

#[test]
fn profiler_and_rumen_agree_on_task_counts() {
    let run = run_testbed(workload(), ClusterPolicy::Fifo, config(), 404);
    let profiled = profile_history(&run.history).unwrap();
    let rumen = RumenTrace::from_history(&run.history).unwrap();
    assert_eq!(profiled.len(), rumen.jobs.len());
    for (p, r) in profiled.iter().zip(&rumen.jobs) {
        assert_eq!(p.template.num_maps, r.maps().len());
        assert_eq!(p.template.num_reduces, r.reduces().len());
        assert_eq!(p.submit, r.submit);
    }
}

#[test]
fn simmr_simulation_loop_is_faster_than_mumaks() {
    // compare the simulation loops alone (parsing excluded, both traces
    // pre-built); SimMR must win — it processes no heartbeat events
    use simmr_core::{EngineConfig, SimulatorEngine};
    use simmr_sched::FifoPolicy;
    let run = run_testbed(workload(), ClusterPolicy::Fifo, config(), 505);
    let trace = simmr_trace::trace_from_history(&run.history, "perf").unwrap();
    let rumen = RumenTrace::from_history(&run.history).unwrap();
    let mumak =
        simmr_mumak::MumakSim::new(MumakConfig { num_trackers: 8, ..MumakConfig::default() });
    let reps = 20;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let _ = SimulatorEngine::new(EngineConfig::new(8, 8), &trace, Box::new(FifoPolicy::new()))
            .run();
    }
    let simmr_t = t0.elapsed();
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let _ = mumak.run(&rumen);
    }
    let mumak_t = t0.elapsed();
    assert!(
        simmr_t < mumak_t,
        "SimMR ({simmr_t:?}) should simulate faster than Mumak ({mumak_t:?})"
    );
}

#[test]
fn event_counts_reflect_architectures() {
    let run = run_testbed(workload(), ClusterPolicy::Fifo, config(), 606);
    let simmr = replay_in_simmr(&run.history, "fifo", 8, 8, &[None, None, None]);
    let mumak =
        replay_in_mumak(&run.history, MumakConfig { num_trackers: 8, ..MumakConfig::default() });
    // Mumak simulates heartbeats: it must process far more events than
    // SimMR's task-level queue (§IV-E's root cause)
    assert!(
        mumak.events_processed > 3 * simmr.events_processed,
        "mumak {} vs simmr {}",
        mumak.events_processed,
        simmr.events_processed
    );
}
