//! Differential harness over the engine's runtime invariant checker
//! (`EngineConfig::with_invariants`):
//!
//! * single-job traces must land inside the ARIA bounds model of eq. 1
//!   across randomized templates and slot counts, with every batch
//!   invariant armed;
//! * random preemption-heavy traces sweep all eight policies (both
//!   preemptive EDF variants and the hierarchical pool tree included)
//!   with the checker on — any slot leak, counter drift, phantom
//!   timeline bar, uncovered queue mutation or per-pool share-accounting
//!   drift panics inside the engine;
//! * random traces under the full failure model (host failures,
//!   speculation, per-slot slowdowns) sweep all eight policies with the
//!   checker on, and every run must replay byte-identically;
//! * random pool trees replay random multi-tenant workloads under both
//!   the incremental `hier` share view and its retained
//!   full-reaggregation reference mode — reports (event timelines
//!   included) must match byte for byte while the checker cross-checks
//!   the maintained per-pool counters against the re-aggregation oracle
//!   after every batch;
//! * random deadline-heavy traces (faults, speculation and preemption
//!   included) replay under the EDF policies' incremental deadline index
//!   and their retained full-scan reference modes — byte-identical
//!   reports required, with the checker cross-checking the index against
//!   the live queue after every batch;
//! * a deterministic preemption scenario is cross-checked against the
//!   snapshot oracle. With the two preemption fixes reverted
//!   (`preempt_map` not setting `jobq_dirty`; map bars recorded at launch
//!   with full duration) this suite fails — the checker provably catches
//!   that bug class.

use proptest::prelude::*;
use simmr_core::SchedulerPolicy;
use simmr_core::{
    Divergence, EngineCheckpoint, EngineConfig, FaultSpec, ForkSpec, HostFailure, RecoverySpec,
    SimulatorEngine,
};
use simmr_model::{estimate_completion, JobProfileSummary};
use simmr_sched::{parse_policy, parse_pool_spec, HierPolicy, MaxEdfPolicy, MinEdfPolicy};
use simmr_stats::Dist;
use simmr_trace::MultiTenantWorkload;
use simmr_types::{HostId, JobSpec, JobTemplate, SimTime, TimelinePhase, WorkloadTrace};

const POLICIES: [&str; 8] = [
    "fifo",
    "maxedf",
    "minedf",
    "fair",
    "maxedf-p",
    "minedf-p",
    "capacity",
    "hier:j[w=2,min=1,timeout=0.5],spare[w=1]",
];

/// The paper's §V validation error band (~10–15%) covers the engine
/// nuances the bounds model ignores (slowstart overlap, first-shuffle
/// crediting).
const SLACK: f64 = 1.15;

fn uniform_template(
    maps: usize,
    reduces: usize,
    map_ms: u64,
    sh_ms: u64,
    red_ms: u64,
) -> JobTemplate {
    JobTemplate::new(
        "j",
        vec![map_ms; maps],
        if reduces > 0 { vec![sh_ms] } else { vec![] },
        if reduces > 0 { vec![sh_ms; reduces] } else { vec![] },
        vec![red_ms; reduces],
    )
    .expect("generated template is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Single-job differential: the simulated makespan lies within the
    /// `simmr-model` bounds of eq. 1, with all runtime invariants checked
    /// along the way.
    #[test]
    fn single_job_makespan_within_model_bounds(
        maps in 1usize..50,
        reduces in 0usize..24,
        map_ms in 50u64..4_000,
        sh_ms in 20u64..2_000,
        red_ms in 20u64..2_000,
        map_slots in 1usize..12,
        reduce_slots in 1usize..12,
        slowstart_pick in 0usize..3,
    ) {
        let template = uniform_template(maps, reduces, map_ms, sh_ms, red_ms);
        let profile = JobProfileSummary::from_template(&template);
        let est = estimate_completion(&profile, map_slots, reduce_slots);
        let mut trace = WorkloadTrace::new("single", "invariant-harness");
        trace.push(JobSpec::new(template, SimTime::ZERO));
        let config = EngineConfig::new(map_slots, reduce_slots)
            .with_slowstart([0.0, 0.05, 1.0][slowstart_pick])
            .with_timeline()
            .with_invariants();
        let report =
            SimulatorEngine::new(config, &trace, parse_policy("fifo").unwrap()).run();
        let actual = report.jobs[0].duration() as f64;
        prop_assert!(
            est.contains(actual, SLACK),
            "makespan {actual} outside model bounds [{}, {}] at slack {SLACK}",
            est.low, est.up
        );
    }

    /// (b) Preemption-heavy sweep: contended slots, staggered arrivals and
    /// ever-tighter deadlines force the preemptive EDF variants through
    /// repeated kill/requeue/relaunch cycles; all eight policies replay
    /// the same trace with the checker armed.
    #[test]
    fn preemption_heavy_sweep_all_policies(
        jobs in proptest::collection::vec(
            // (maps, reduces, map_ms, sh_ms, red_ms, arrival, deadline_rel)
            (1usize..7, 0usize..4, 50u64..600, 1u64..60, 1u64..80,
             0u64..800, 50u64..2_500),
            2..14,
        ),
        map_slots in 1usize..4,
        reduce_slots in 1usize..4,
    ) {
        let mut trace = WorkloadTrace::new("preempt", "invariant-harness");
        for &(maps, reduces, map_ms, sh_ms, red_ms, arrival, deadline_rel) in &jobs {
            trace.push(
                JobSpec::new(
                    uniform_template(maps, reduces, map_ms, sh_ms, red_ms),
                    SimTime::from_millis(arrival),
                )
                .with_deadline(SimTime::from_millis(arrival + deadline_rel)),
            );
        }
        for policy in POLICIES {
            let config = EngineConfig::new(map_slots, reduce_slots)
                .with_timeline()
                .with_invariants();
            let report =
                SimulatorEngine::new(config, &trace, parse_policy(policy).unwrap()).run();
            prop_assert_eq!(report.jobs.len(), jobs.len(), "policy {} lost jobs", policy);
            for job in &report.jobs {
                prop_assert!(
                    job.completion >= job.arrival,
                    "policy {}: job {} finished before arriving", policy, job.job
                );
            }
        }
    }

    /// (c) Failure-model sweep: host failures, speculative re-execution and
    /// per-slot slowdowns together, across all eight policies, invariants
    /// and timeline armed — and every configuration must replay
    /// byte-identically from the same seeds.
    #[test]
    fn failure_model_sweep_all_policies(
        jobs in proptest::collection::vec(
            // (maps, reduces, map_ms, sh_ms, red_ms, arrival)
            (1usize..7, 0usize..4, 50u64..600, 1u64..60, 1u64..80, 0u64..1_000),
            2..10,
        ),
        map_slots in 2usize..8,
        reduce_slots in 1usize..4,
        hosts in 2usize..5,
        fault_count in 0u32..4,
        fault_seed in 0u64..1_000,
        speculation_on in proptest::bool::ANY,
        slowdown_on in proptest::bool::ANY,
    ) {
        let mut trace = WorkloadTrace::new("failures", "invariant-harness");
        for &(maps, reduces, map_ms, sh_ms, red_ms, arrival) in &jobs {
            trace.push(JobSpec::new(
                uniform_template(maps, reduces, map_ms, sh_ms, red_ms),
                SimTime::from_millis(arrival),
            ));
        }
        let mut config = EngineConfig::new(map_slots, reduce_slots)
            .with_hosts(hosts)
            .with_faults(FaultSpec {
                seed: fault_seed,
                count: fault_count,
                mean_interval_ms: 700,
            })
            .with_timeline()
            .with_invariants();
        if speculation_on {
            config = config.with_speculation(1.5);
        }
        if slowdown_on {
            config = config.with_slowdown(
                Dist::LogNormal { mu: -0.125, sigma: 0.5 },
                fault_seed ^ 0x5eed,
            );
        }
        for policy in POLICIES {
            let run = || {
                SimulatorEngine::new(config, &trace, parse_policy(policy).unwrap()).run()
            };
            let report = run();
            prop_assert_eq!(report.jobs.len(), jobs.len(), "policy {} lost jobs", policy);
            for job in &report.jobs {
                prop_assert!(
                    job.completion >= job.arrival,
                    "policy {}: job {} finished before arriving", policy, job.job
                );
            }
            prop_assert_eq!(report, run(), "policy {} replay diverged", policy);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (d) Differential oracle for the incremental share view: the same
    /// random pool tree replays the same random multi-tenant workload
    /// (failures and speculation included) under the incremental `hier`
    /// policy and under its retained full-reaggregation reference mode.
    /// Reports — event timelines included — must match byte for byte,
    /// and the armed invariant checker cross-checks the maintained
    /// per-pool share counters against the re-aggregation oracle after
    /// every settled batch on both sides.
    #[test]
    fn hier_incremental_matches_full_reaggregation_reference(
        shape in 0usize..4,
        w0 in 1u32..6,
        w1 in 1u32..6,
        min0 in 0usize..5,
        max0 in 2usize..7,
        timeout_ds in 0u64..12, // deciseconds; 0 = same-pass preemption
        with_timeout in proptest::bool::ANY,
        jobs in 8usize..48,
        interarrival in 200u64..4_000,
        seed in 0u64..1_000,
        map_slots in 2usize..10,
        reduce_slots in 1usize..6,
        fault_count in 0u32..3,
        speculation_on in proptest::bool::ANY,
    ) {
        let t = if with_timeout {
            format!(",timeout={}", timeout_ds as f64 / 10.0)
        } else {
            String::new()
        };
        // pool-tree shapes over the three_tenant routing prefixes, from
        // flat weighted splits to nested min/max/timeout combinations
        let spec = match shape {
            0 => format!("prod[w={w0},min={min0}{t}]{{etl,serving}},adhoc[w={w1}]"),
            1 => format!("prod[w={w0}]{{etl[min={min0}{t}],serving[max={max0}]}},adhoc[w={w1}]"),
            2 => format!("prod-etl[w={w0},min={min0}{t}],prod-serving[w={w1}],adhoc[max={max0}]"),
            _ => format!("prod[w={w0}]{{etl[min={min0}{t}],serving{{a,b}}}},adhoc[w={w1}]"),
        };
        let pools = parse_pool_spec(&spec).expect("generated pool spec parses");
        let trace = MultiTenantWorkload::three_tenant(interarrival as f64)
            .generate(jobs, seed);
        let mut config = EngineConfig::new(map_slots, reduce_slots)
            .with_hosts(2)
            .with_faults(FaultSpec { seed, count: fault_count, mean_interval_ms: 5_000 })
            .with_timeline()
            .with_invariants();
        if speculation_on {
            config = config.with_speculation(1.5);
        }
        let incremental =
            SimulatorEngine::new(config, &trace, Box::new(HierPolicy::new(pools.clone()))).run();
        let reference = SimulatorEngine::new(
            config,
            &trace,
            Box::new(HierPolicy::new(pools).with_full_reaggregation()),
        )
        .run();
        prop_assert_eq!(incremental, reference, "incremental hier diverged on {}", spec);
    }

    /// (e) Differential oracle for the incremental deadline index: random
    /// deadline-heavy traces (a mix of tight, relaxed and absent
    /// deadlines) replay under every EDF variant — plain and preemptive,
    /// MaxEDF and MinEDF — once scheduling from the lazy-deletion
    /// deadline index and once in the retained `with_full_scan()`
    /// reference mode, with host failures and speculation in play.
    /// Reports (event timelines included) must match byte for byte, and
    /// the armed invariant checker cross-checks index membership against
    /// the live queue after every settled batch on both sides.
    #[test]
    fn edf_incremental_matches_full_scan_reference(
        jobs in proptest::collection::vec(
            // (maps, reduces, map_ms, sh_ms, red_ms, arrival, deadline_rel, has_deadline)
            (1usize..7, 0usize..4, 50u64..600, 1u64..60, 1u64..80,
             0u64..1_200, 50u64..3_000, proptest::bool::ANY),
            2..16,
        ),
        map_slots in 1usize..6,
        reduce_slots in 1usize..4,
        hosts in 2usize..4,
        fault_count in 0u32..3,
        seed in 0u64..1_000,
        speculation_on in proptest::bool::ANY,
    ) {
        let mut trace = WorkloadTrace::new("edf-diff", "invariant-harness");
        for &(maps, reduces, map_ms, sh_ms, red_ms, arrival, deadline_rel, has_deadline) in &jobs {
            let mut spec = JobSpec::new(
                uniform_template(maps, reduces, map_ms, sh_ms, red_ms),
                SimTime::from_millis(arrival),
            );
            if has_deadline {
                spec = spec.with_deadline(SimTime::from_millis(arrival + deadline_rel));
            }
            trace.push(spec);
        }
        let mut config = EngineConfig::new(map_slots, reduce_slots)
            .with_hosts(hosts)
            .with_faults(FaultSpec { seed, count: fault_count, mean_interval_ms: 900 })
            .with_timeline()
            .with_invariants();
        if speculation_on {
            config = config.with_speculation(1.5);
        }
        let build = |variant: &str, full_scan: bool| -> Box<dyn SchedulerPolicy> {
            match (variant, full_scan) {
                ("maxedf", false) => Box::new(MaxEdfPolicy::new()),
                ("maxedf", true) => Box::new(MaxEdfPolicy::new().with_full_scan()),
                ("maxedf-p", false) => Box::new(MaxEdfPolicy::preemptive()),
                ("maxedf-p", true) => Box::new(MaxEdfPolicy::preemptive().with_full_scan()),
                ("minedf", false) => Box::new(MinEdfPolicy::new()),
                ("minedf", true) => Box::new(MinEdfPolicy::new().with_full_scan()),
                ("minedf-p", false) => Box::new(MinEdfPolicy::preemptive()),
                ("minedf-p", true) => Box::new(MinEdfPolicy::preemptive().with_full_scan()),
                _ => unreachable!("unknown EDF variant {variant}"),
            }
        };
        for variant in ["maxedf", "maxedf-p", "minedf", "minedf-p"] {
            let incremental =
                SimulatorEngine::new(config, &trace, build(variant, false)).run();
            let reference =
                SimulatorEngine::new(config, &trace, build(variant, true)).run();
            prop_assert_eq!(incremental, reference, "incremental {} diverged", variant);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// (f) Fork differential oracle for the time-travel checkpoints: for
    /// every policy, a run under the full perturbation stack (host
    /// failures, recovery, speculation, per-slot slowdowns) is
    /// checkpointed at a random instant — through the full binary codec —
    /// resumed, and a random divergence applied (policy swap, slot grow,
    /// injected fault, arrival surge). The warm-started report must be
    /// byte-identical to a from-scratch `run_forked` applying the same
    /// divergence at the same instant, with the invariant checker armed
    /// on both sides. This is the `fork-differential` CI step.
    #[test]
    fn fork_matches_from_scratch_reference(
        jobs in proptest::collection::vec(
            // (maps, reduces, map_ms, sh_ms, red_ms, arrival, deadline_rel, has_deadline)
            (1usize..6, 0usize..4, 50u64..600, 1u64..60, 1u64..80,
             0u64..1_200, 50u64..3_000, proptest::bool::ANY),
            2..12,
        ),
        map_slots in 2usize..6,
        reduce_slots in 1usize..4,
        hosts in 2usize..5,
        fault_count in 0u32..3,
        seed in 0u64..1_000,
        speculation_on in proptest::bool::ANY,
        slowdown_on in proptest::bool::ANY,
        ckpt_percent in 0u64..120, // of the unforked makespan; >100 = past the end
        divergence_pick in 0usize..4,
    ) {
        let mut trace = WorkloadTrace::new("fork-diff", "invariant-harness");
        for &(maps, reduces, map_ms, sh_ms, red_ms, arrival, deadline_rel, has_deadline) in &jobs {
            let mut spec = JobSpec::new(
                uniform_template(maps, reduces, map_ms, sh_ms, red_ms),
                SimTime::from_millis(arrival),
            );
            if has_deadline {
                spec = spec.with_deadline(SimTime::from_millis(arrival + deadline_rel));
            }
            trace.push(spec);
        }
        let mut config = EngineConfig::new(map_slots, reduce_slots)
            .with_hosts(hosts)
            .with_faults(FaultSpec { seed, count: fault_count, mean_interval_ms: 900 })
            .with_recovery(RecoverySpec { seed: seed ^ 0xeca, mean_ms: 600 })
            .with_timeline()
            .with_invariants();
        if speculation_on {
            config = config.with_speculation(1.5);
        }
        if slowdown_on {
            config = config.with_slowdown(
                Dist::LogNormal { mu: -0.125, sigma: 0.5 },
                seed ^ 0x5eed,
            );
        }
        for (pi, policy) in POLICIES.iter().enumerate() {
            let base = SimulatorEngine::new(config, &trace, parse_policy(policy).unwrap()).run();
            let at = SimTime::from_millis(base.makespan.as_millis() * ckpt_percent / 100);
            // both sides get an identically-built fork (Divergence holds a
            // boxed policy, so the spec is rebuilt rather than cloned)
            let make_fork = || {
                let divergences = match divergence_pick {
                    0 => vec![Divergence::PolicySwap(
                        parse_policy(POLICIES[(pi + 1) % POLICIES.len()]).unwrap(),
                    )],
                    1 => vec![Divergence::AddSlots { map_slots: 2, reduce_slots: 1 }],
                    2 => vec![Divergence::InjectFault {
                        host: HostId(1 + (seed % (hosts as u64 - 1)) as u32),
                        at, // at the boundary: clamped to strictly after it
                    }],
                    _ => vec![Divergence::ArrivalSurge(vec![JobSpec::new(
                        uniform_template(3, 1, 120, 10, 20),
                        SimTime::ZERO, // before the boundary: clamped
                    )])],
                };
                ForkSpec::new(at, divergences)
            };
            let reference = SimulatorEngine::new(config, &trace, parse_policy(policy).unwrap())
                .run_forked(make_fork())
                .unwrap();
            let ckpt = SimulatorEngine::new(config, &trace, parse_policy(policy).unwrap())
                .checkpoint_at(at)
                .unwrap();
            let bytes = ckpt.encode();
            let decoded = EngineCheckpoint::decode(&bytes).unwrap();
            prop_assert_eq!(&decoded.encode(), &bytes, "codec not canonical for {}", policy);
            let mut warm =
                SimulatorEngine::resume_materialized(config, &decoded, parse_policy(policy).unwrap())
                    .unwrap();
            warm.apply_fork(make_fork()).unwrap();
            let warm = warm.try_run().unwrap();
            prop_assert_eq!(
                warm, reference,
                "policy {}: warm-started fork at t={} diverged from from-scratch", policy, at
            );
        }
    }
}

/// Deterministic host-failure scenario: killing a host mid-stage re-runs
/// the completed maps whose output it held (Hadoop semantics) and the
/// report still balances under the invariant checker. Mirrors the unit
/// test inside simmr-core but drives the public crate API end to end.
#[test]
fn host_failure_reruns_completed_maps_and_balances() {
    let mut trace = WorkloadTrace::new("host-failure", "invariant-harness");
    trace.push(JobSpec::new(uniform_template(6, 1, 100, 20, 30), SimTime::ZERO));
    let config = EngineConfig::new(4, 2).with_hosts(2).with_timeline().with_invariants();
    let run = |fail: bool| {
        let engine = SimulatorEngine::new(config, &trace, parse_policy("fifo").unwrap());
        let engine = if fail {
            engine.with_fault_plan(vec![HostFailure {
                host: HostId(1),
                at: SimTime::from_millis(150),
            }])
        } else {
            engine
        };
        engine.run()
    };
    let healthy = run(false);
    let failed = run(true);
    // losing half the cluster mid-stage must delay completion, not lose
    // work: the job still finishes, later than the healthy run
    assert_eq!(failed.jobs.len(), 1);
    assert!(failed.jobs[0].completion > healthy.jobs[0].completion);
    // re-runs visible in the timeline: strictly more map bars than tasks
    let map_bars = |r: &simmr_types::SimulationReport| {
        r.timeline.iter().filter(|t| t.phase == TimelinePhase::Map).count()
    };
    assert_eq!(map_bars(&healthy), 6);
    assert!(map_bars(&failed) > 6, "expected re-run bars, got {}", map_bars(&failed));
    // no bar on a dead slot extends past the failure instant
    for bar in failed.timeline.iter().filter(|t| t.slot % 2 == 1) {
        assert!(bar.end <= SimTime::from_millis(150), "bar on dead slot after failure: {bar:?}");
    }
    // deterministic replay
    assert_eq!(failed, run(true));
}

/// Deterministic host-recovery scenario through the public crate API:
/// a seeded fault plan with the recovery model armed restores dead hosts
/// after an exponential repair delay. The run completes, replays
/// byte-identically, and cannot be slower than leaving the hosts dead.
#[test]
fn host_recovery_restores_capacity_end_to_end() {
    let mut trace = WorkloadTrace::new("host-recovery", "invariant-harness");
    for i in 0..4u64 {
        trace
            .push(JobSpec::new(uniform_template(8, 1, 200, 20, 30), SimTime::from_millis(i * 100)));
    }
    let base = EngineConfig::new(6, 2)
        .with_hosts(3)
        .with_faults(FaultSpec { seed: 7, count: 2, mean_interval_ms: 400 })
        .with_timeline()
        .with_invariants();
    let run = |recovery: Option<RecoverySpec>| {
        let config = match recovery {
            Some(r) => base.with_recovery(r),
            None => base,
        };
        SimulatorEngine::new(config, &trace, parse_policy("fifo").unwrap()).run()
    };
    let permanent = run(None);
    let rec = RecoverySpec { seed: 3, mean_ms: 500 };
    let recovered = run(Some(rec));
    assert_eq!(recovered.jobs.len(), 4);
    assert!(
        recovered.makespan <= permanent.makespan,
        "repaired hosts made the run slower: {} vs {}",
        recovered.makespan,
        permanent.makespan
    );
    // byte-identical replay, repair delays included
    assert_eq!(recovered, run(Some(rec)));
    // a different repair seed is a different (but still complete) schedule
    let reseeded = run(Some(RecoverySpec { seed: 99, mean_ms: 500 }));
    assert_eq!(reseeded.jobs.len(), 4);
}

/// Deterministic kill-and-requeue scenario cross-checked against the
/// snapshot oracle, with invariants and timeline recording on. On the
/// pre-fix engine this dies inside the checker: the killed attempt's
/// launch-time bar overlaps the slot's next occupant
/// (`timeline-slot-disjoint`), and `preempt_map` leaves the dirty flag
/// unset (`dirty-flag-coverage`).
#[cfg(debug_assertions)] // with_snapshot_oracle is debug/test-only
#[test]
fn preemption_matches_snapshot_oracle_under_invariants() {
    let mut trace = WorkloadTrace::new("preempt-oracle", "invariant-harness");
    trace.push(
        JobSpec::new(uniform_template(2, 0, 1000, 0, 0), SimTime::ZERO)
            .with_deadline(SimTime::from_millis(100_000)),
    );
    trace.push(
        JobSpec::new(uniform_template(1, 0, 100, 0, 0), SimTime::from_millis(200))
            .with_deadline(SimTime::from_millis(300)),
    );
    let config = EngineConfig::new(1, 1).with_timeline().with_invariants();
    let run = |oracle: bool| {
        let engine = SimulatorEngine::new(config, &trace, parse_policy("maxedf-p").unwrap());
        let engine = if oracle { engine.with_snapshot_oracle() } else { engine };
        engine.run()
    };
    let fast = run(false);
    let oracle = run(true);
    assert_eq!(fast, oracle);
    // the urgent job preempts at t=200 and meets its deadline
    assert_eq!(fast.jobs[1].completion, SimTime::from_millis(300));
    // 3 map tasks + 1 killed attempt = 4 bars, the killed one cut at t=200
    let mut bars: Vec<(u64, u64)> = fast
        .timeline
        .iter()
        .filter(|t| t.phase == TimelinePhase::Map)
        .map(|t| (t.start.as_millis(), t.end.as_millis()))
        .collect();
    bars.sort_unstable();
    assert_eq!(bars, vec![(0, 200), (200, 300), (300, 1300), (1300, 2300)]);
}
