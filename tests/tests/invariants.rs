//! Differential harness over the engine's runtime invariant checker
//! (`EngineConfig::with_invariants`):
//!
//! * single-job traces must land inside the ARIA bounds model of eq. 1
//!   across randomized templates and slot counts, with every batch
//!   invariant armed;
//! * random preemption-heavy traces sweep all five policies with the
//!   checker on — any slot leak, counter drift, phantom timeline bar or
//!   uncovered queue mutation panics inside the engine;
//! * a deterministic preemption scenario is cross-checked against the
//!   snapshot oracle. With the two preemption fixes reverted
//!   (`preempt_map` not setting `jobq_dirty`; map bars recorded at launch
//!   with full duration) this suite fails — the checker provably catches
//!   that bug class.

use proptest::prelude::*;
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_model::{estimate_completion, JobProfileSummary};
use simmr_sched::policy_by_name;
use simmr_types::{JobSpec, JobTemplate, SimTime, TimelinePhase, WorkloadTrace};

const POLICIES: [&str; 5] = ["fifo", "maxedf", "minedf", "fair", "maxedf-p"];

/// The paper's §V validation error band (~10–15%) covers the engine
/// nuances the bounds model ignores (slowstart overlap, first-shuffle
/// crediting).
const SLACK: f64 = 1.15;

fn uniform_template(
    maps: usize,
    reduces: usize,
    map_ms: u64,
    sh_ms: u64,
    red_ms: u64,
) -> JobTemplate {
    JobTemplate::new(
        "j",
        vec![map_ms; maps],
        if reduces > 0 { vec![sh_ms] } else { vec![] },
        if reduces > 0 { vec![sh_ms; reduces] } else { vec![] },
        vec![red_ms; reduces],
    )
    .expect("generated template is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Single-job differential: the simulated makespan lies within the
    /// `simmr-model` bounds of eq. 1, with all runtime invariants checked
    /// along the way.
    #[test]
    fn single_job_makespan_within_model_bounds(
        maps in 1usize..50,
        reduces in 0usize..24,
        map_ms in 50u64..4_000,
        sh_ms in 20u64..2_000,
        red_ms in 20u64..2_000,
        map_slots in 1usize..12,
        reduce_slots in 1usize..12,
        slowstart_pick in 0usize..3,
    ) {
        let template = uniform_template(maps, reduces, map_ms, sh_ms, red_ms);
        let profile = JobProfileSummary::from_template(&template);
        let est = estimate_completion(&profile, map_slots, reduce_slots);
        let mut trace = WorkloadTrace::new("single", "invariant-harness");
        trace.push(JobSpec::new(template, SimTime::ZERO));
        let config = EngineConfig::new(map_slots, reduce_slots)
            .with_slowstart([0.0, 0.05, 1.0][slowstart_pick])
            .with_timeline()
            .with_invariants();
        let report =
            SimulatorEngine::new(config, &trace, policy_by_name("fifo").unwrap()).run();
        let actual = report.jobs[0].duration() as f64;
        prop_assert!(
            est.contains(actual, SLACK),
            "makespan {actual} outside model bounds [{}, {}] at slack {SLACK}",
            est.low, est.up
        );
    }

    /// (b) Preemption-heavy sweep: contended slots, staggered arrivals and
    /// ever-tighter deadlines force `maxedf-p` through repeated
    /// kill/requeue/relaunch cycles; all five policies replay the same
    /// trace with the checker armed.
    #[test]
    fn preemption_heavy_sweep_all_policies(
        jobs in proptest::collection::vec(
            // (maps, reduces, map_ms, sh_ms, red_ms, arrival, deadline_rel)
            (1usize..7, 0usize..4, 50u64..600, 1u64..60, 1u64..80,
             0u64..800, 50u64..2_500),
            2..14,
        ),
        map_slots in 1usize..4,
        reduce_slots in 1usize..4,
    ) {
        let mut trace = WorkloadTrace::new("preempt", "invariant-harness");
        for &(maps, reduces, map_ms, sh_ms, red_ms, arrival, deadline_rel) in &jobs {
            trace.push(
                JobSpec::new(
                    uniform_template(maps, reduces, map_ms, sh_ms, red_ms),
                    SimTime::from_millis(arrival),
                )
                .with_deadline(SimTime::from_millis(arrival + deadline_rel)),
            );
        }
        for policy in POLICIES {
            let config = EngineConfig::new(map_slots, reduce_slots)
                .with_timeline()
                .with_invariants();
            let report =
                SimulatorEngine::new(config, &trace, policy_by_name(policy).unwrap()).run();
            prop_assert_eq!(report.jobs.len(), jobs.len(), "policy {} lost jobs", policy);
            for job in &report.jobs {
                prop_assert!(
                    job.completion >= job.arrival,
                    "policy {}: job {} finished before arriving", policy, job.job
                );
            }
        }
    }
}

/// Deterministic kill-and-requeue scenario cross-checked against the
/// snapshot oracle, with invariants and timeline recording on. On the
/// pre-fix engine this dies inside the checker: the killed attempt's
/// launch-time bar overlaps the slot's next occupant
/// (`timeline-slot-disjoint`), and `preempt_map` leaves the dirty flag
/// unset (`dirty-flag-coverage`).
#[cfg(debug_assertions)] // with_snapshot_oracle is debug/test-only
#[test]
fn preemption_matches_snapshot_oracle_under_invariants() {
    let mut trace = WorkloadTrace::new("preempt-oracle", "invariant-harness");
    trace.push(
        JobSpec::new(uniform_template(2, 0, 1000, 0, 0), SimTime::ZERO)
            .with_deadline(SimTime::from_millis(100_000)),
    );
    trace.push(
        JobSpec::new(uniform_template(1, 0, 100, 0, 0), SimTime::from_millis(200))
            .with_deadline(SimTime::from_millis(300)),
    );
    let config = EngineConfig::new(1, 1).with_timeline().with_invariants();
    let run = |oracle: bool| {
        let engine = SimulatorEngine::new(config, &trace, policy_by_name("maxedf-p").unwrap());
        let engine = if oracle { engine.with_snapshot_oracle() } else { engine };
        engine.run()
    };
    let fast = run(false);
    let oracle = run(true);
    assert_eq!(fast, oracle);
    // the urgent job preempts at t=200 and meets its deadline
    assert_eq!(fast.jobs[1].completion, SimTime::from_millis(300));
    // 3 map tasks + 1 killed attempt = 4 bars, the killed one cut at t=200
    let mut bars: Vec<(u64, u64)> = fast
        .timeline
        .iter()
        .filter(|t| t.phase == TimelinePhase::Map)
        .map(|t| (t.start.as_millis(), t.end.as_millis()))
        .collect();
    bars.sort_unstable();
    assert_eq!(bars, vec![(0, 200), (200, 300), (300, 1300), (1300, 2300)]);
}
