//! The incremental scheduler view must be observationally identical to a
//! from-scratch snapshot rebuild: random traces replayed under every
//! policy produce reports that are equal — and serialize byte-for-byte —
//! whether the engine trusts its O(1) in-place entry updates or rebuilds
//! the whole job queue before every scheduling pass (the snapshot oracle).

// with_snapshot_oracle is compiled under cfg(any(test, debug_assertions)),
// which for this (external) test crate means debug builds only
#![cfg(debug_assertions)]

use proptest::prelude::*;
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_types::{JobSpec, JobTemplate, SimTime, SimulationReport, WorkloadTrace};

/// Both preemptive EDF variants included: preemption exercises the
/// trickiest incremental updates (kill, requeue, relaunch within one
/// pass), and MinEDF layers its wanted-cap filter on top.
const POLICIES: [&str; 6] = ["fifo", "maxedf", "minedf", "fair", "maxedf-p", "minedf-p"];

type JobParams = (usize, usize, u64, u64, u64, u64, u64, u64);

fn build_trace(jobs: &[JobParams]) -> WorkloadTrace {
    let mut trace = WorkloadTrace::new("oracle", "property-test");
    for &(maps, reduces, map_ms, first_sh, typ_sh, red_ms, arrival, deadline_rel) in jobs {
        let template = JobTemplate::new(
            "j",
            vec![map_ms; maps],
            if reduces > 0 { vec![first_sh] } else { vec![] },
            if reduces > 0 { vec![typ_sh; reduces] } else { vec![] },
            vec![red_ms; reduces],
        )
        .expect("generated template is valid");
        let mut spec = JobSpec::new(template, SimTime::from_millis(arrival));
        if deadline_rel > 0 {
            spec = spec.with_deadline(SimTime::from_millis(arrival + deadline_rel));
        }
        trace.push(spec);
    }
    trace
}

fn run(
    trace: &WorkloadTrace,
    config: EngineConfig,
    policy: &str,
    oracle: bool,
) -> SimulationReport {
    let engine = SimulatorEngine::new(config, trace, parse_policy(policy).expect("policy exists"));
    let engine = if oracle { engine.with_snapshot_oracle() } else { engine };
    engine.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random contended workloads (zero-duration tasks, simultaneous
    /// arrivals, deadlines present and absent) across all policies.
    #[test]
    fn incremental_view_equals_snapshot_oracle(
        jobs in proptest::collection::vec(
            (1usize..7, 0usize..4, 0u64..250, 1u64..40, 1u64..40, 0u64..60,
             0u64..1500, 0u64..3000),
            1..16,
        ),
        map_slots in 1usize..5,
        reduce_slots in 1usize..4,
        slowstart_pick in 0usize..3,
    ) {
        let trace = build_trace(&jobs);
        let slowstart = [0.0, 0.05, 1.0][slowstart_pick];
        for policy in POLICIES {
            let config = EngineConfig::new(map_slots, reduce_slots)
                .with_slowstart(slowstart)
                .with_timeline()
                .with_invariants();
            let fast = run(&trace, config, policy, false);
            let oracle = run(&trace, config, policy, true);
            prop_assert_eq!(&fast, &oracle, "policy {} diverged from the oracle", policy);
            let fast_json = serde_json::to_string(&fast).expect("report serializes");
            let oracle_json = serde_json::to_string(&oracle).expect("report serializes");
            prop_assert_eq!(
                fast_json, oracle_json,
                "policy {} reports serialize differently", policy
            );
        }
    }
}
