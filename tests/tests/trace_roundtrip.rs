//! Trace persistence and transformation round-trips, plus a structured
//! fuzzer over the JSON trace schema: randomized traces with boundary
//! durations (0, 1, `u64::MAX`) and escape-heavy names must survive a
//! serialize → parse round-trip byte-exactly; truncated documents and
//! trailing garbage must error (never panic); duplicate object keys
//! resolve first-wins, matching the vendored `serde_json`'s `Value::get`.
//!
//! The same fuzzed traces also exercise the binary codec: JSON → binary →
//! JSON must reproduce every job byte-identically (modulo the format's
//! arrival-order canonicalization); truncations, bit flips, bad magic and
//! unknown versions must surface as typed [`simmr_trace::BinError`]s,
//! never panics. A replay of the same trace through the materialized JSON
//! path and the streaming binary path must produce identical reports.
//!
//! Engine checkpoints ([`simmr_core::EngineCheckpoint`]) are held to the
//! same contract: canonical encoding (encode → decode → encode is the
//! identity) and typed [`simmr_core::CkptError`]s for every truncation or
//! bit flip.

use proptest::prelude::*;
use simmr_bench::pipeline::run_testbed;
use simmr_cluster::{ClusterConfig, ClusterPolicy};
use simmr_core::{CkptError, EngineCheckpoint, EngineConfig, JobSource, SimulatorEngine};
use simmr_integration::small_job;
use simmr_sched::FifoPolicy;
use simmr_trace::{
    decode_trace, encode_trace, scale_template, trace_from_history, BinError, BinTraceSource,
    FacebookWorkload, TraceDatabase,
};
use simmr_types::{parse_history, JobSpec, JobTemplate, SimTime, WorkloadTrace};

fn testbed_trace(seed: u64) -> WorkloadTrace {
    let run = run_testbed(
        vec![
            (small_job(simmr_apps::AppKind::WordCount, 18, 6), SimTime::ZERO, None),
            (small_job(simmr_apps::AppKind::Twitter, 10, 4), SimTime::from_secs(10), None),
        ],
        ClusterPolicy::Fifo,
        ClusterConfig::tiny(6),
        seed,
    );
    trace_from_history(&run.history, "round-trip test").unwrap()
}

fn replay(trace: &WorkloadTrace, slots: usize) -> simmr_types::SimulationReport {
    SimulatorEngine::new(EngineConfig::new(slots, slots), trace, Box::new(FifoPolicy::new())).run()
}

#[test]
fn database_round_trip_preserves_replay() {
    let dir = std::env::temp_dir().join(format!("simmr-it-db-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = TraceDatabase::open(&dir).unwrap();
    let trace = testbed_trace(1);
    db.store("roundtrip", &trace).unwrap();
    let loaded = db.load("roundtrip").unwrap();
    assert_eq!(trace, loaded);
    assert_eq!(replay(&trace, 6), replay(&loaded, 6));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn history_text_round_trip() {
    let run = run_testbed(
        vec![(small_job(simmr_apps::AppKind::Sort, 12, 4), SimTime::ZERO, None)],
        ClusterPolicy::Fifo,
        ClusterConfig::tiny(4),
        2,
    );
    let lines = parse_history(&run.history).unwrap();
    let rewritten = simmr_types::write_history(&lines);
    assert_eq!(parse_history(&rewritten).unwrap(), lines);
    // and both texts profile to the same trace
    let a = trace_from_history(&run.history, "x").unwrap();
    let b = trace_from_history(&rewritten, "x").unwrap();
    assert_eq!(a.jobs, b.jobs);
}

#[test]
fn scaled_traces_replay_proportionally() {
    let trace = testbed_trace(3);
    let base = replay(&trace, 6);

    let mut doubled = trace.clone();
    for job in doubled.jobs.iter_mut() {
        job.template = scale_template(&job.template, 2.0);
    }
    let big = replay(&doubled, 6);
    // twice the data: strictly more work, completion grows substantially
    let base_ms = base.jobs.last().unwrap().completion.as_millis() as f64;
    let big_ms = big.jobs.last().unwrap().completion.as_millis() as f64;
    assert!(
        big_ms > 1.4 * base_ms,
        "2x-scaled trace should run much longer: {base_ms} -> {big_ms}"
    );

    // scaling down to a quarter shrinks it
    let mut quartered = trace.clone();
    for job in quartered.jobs.iter_mut() {
        job.template = scale_template(&job.template, 0.25);
    }
    let small = replay(&quartered, 6);
    assert!(small.makespan < base.makespan);
}

#[test]
fn scaling_then_rescaling_is_close_to_identity() {
    let trace = testbed_trace(4);
    let t = &trace.jobs[0].template;
    let back = scale_template(&scale_template(t, 2.0), 0.5);
    assert_eq!(back.num_maps, t.num_maps);
    assert_eq!(back.num_reduces, t.num_reduces);
    // durations survive up to rounding
    for (a, b) in t.reduce_durations.iter().zip(&back.reduce_durations) {
        let diff = a.abs_diff(*b);
        assert!(diff <= 1, "{a} vs {b}");
    }
}

#[test]
fn profiled_trace_serializes_compactly_and_validates() {
    let trace = testbed_trace(5);
    let json = serde_json::to_string(&trace).unwrap();
    let back: WorkloadTrace = serde_json::from_str(&json).unwrap();
    back.validate().unwrap();
    assert_eq!(trace, back);
}

// ---- structured JSON-schema fuzzer ----------------------------------------

/// Boundary durations/instants the fuzzer injects: zero-length tasks,
/// 1 ms tasks, an ordinary value and the saturating extreme.
const BOUNDARY_MS: [u64; 4] = [0, 1, 5_000, u64::MAX];

/// Names stressing JSON string escaping: quotes, backslashes, control
/// characters, multi-byte UTF-8 and the empty string.
const NAMES: [&str; 4] = ["plain-job", "es\"cape\\me\n\t", "uni-é-☃-日本", ""];

/// Builds one fuzzed job from index picks into the boundary tables.
fn fuzz_job(
    maps: usize,
    reduces: usize,
    dur_pick: usize,
    arr_pick: usize,
    name_pick: usize,
) -> JobSpec {
    let d = BOUNDARY_MS[dur_pick];
    let template = JobTemplate::new(
        NAMES[name_pick],
        vec![d; maps],
        if reduces > 0 { vec![d] } else { vec![] },
        if reduces > 0 { vec![d; reduces] } else { vec![] },
        vec![d; reduces],
    )
    .expect("fuzzed template is structurally valid");
    let mut spec = JobSpec::new(template, SimTime::from_millis(BOUNDARY_MS[arr_pick]));
    if arr_pick % 2 == 1 {
        spec = spec.with_deadline(SimTime::from_millis(BOUNDARY_MS[3 - arr_pick]));
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzzed traces — boundary durations, escape-heavy names, optional
    /// deadlines, empty job lists — survive compact and pretty
    /// serialization round-trips exactly, and still validate.
    #[test]
    fn fuzz_trace_json_round_trip(
        jobs in proptest::collection::vec(
            // (maps, reduces, dur_pick, arr_pick, name_pick)
            (1usize..5, 0usize..3, 0usize..4, 0usize..4, 0usize..4),
            0..8,
        ),
        seed_pick in 0usize..4,
    ) {
        let mut trace = WorkloadTrace::new("fuzzed trace \"with\" escapes", "fuzzer");
        trace.meta.seed = [None, Some(0), Some(1), Some(u64::MAX)][seed_pick];
        for &(maps, reduces, dur_pick, arr_pick, name_pick) in &jobs {
            trace.push(fuzz_job(maps, reduces, dur_pick, arr_pick, name_pick));
        }
        let json = serde_json::to_string(&trace).unwrap();
        let back: WorkloadTrace = serde_json::from_str(&json).unwrap();
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(&back, &trace);
        let pretty = serde_json::to_string_pretty(&trace).unwrap();
        prop_assert_eq!(serde_json::from_str::<WorkloadTrace>(&pretty).unwrap(), trace);
    }

    /// Every proper prefix of a serialized trace is a parse error — never
    /// a panic, never a silent partial success — and so is a document with
    /// trailing garbage.
    #[test]
    fn fuzz_truncated_and_garbage_documents_error(
        jobs in proptest::collection::vec(
            (1usize..3, 0usize..2, 0usize..4, 0usize..4, 0usize..4),
            0..3,
        ),
    ) {
        let mut trace = WorkloadTrace::new("truncation fuzz", "fuzzer");
        for &(maps, reduces, dur_pick, arr_pick, name_pick) in &jobs {
            trace.push(fuzz_job(maps, reduces, dur_pick, arr_pick, name_pick));
        }
        let json = serde_json::to_string(&trace).unwrap();
        for cut in 0..json.len() {
            if !json.is_char_boundary(cut) {
                continue;
            }
            prop_assert!(
                serde_json::from_str::<WorkloadTrace>(&json[..cut]).is_err(),
                "prefix of {cut}/{} bytes parsed successfully", json.len()
            );
        }
        for garbage in ["x", "{}", " null", ",", "]"] {
            prop_assert!(
                serde_json::from_str::<WorkloadTrace>(&format!("{json}{garbage}")).is_err(),
                "trailing {garbage:?} accepted"
            );
        }
    }

    /// JSON → binary → JSON reproduces every job byte-identically. The
    /// binary format canonicalizes job order to (arrival, original index),
    /// so the expectation is the stable arrival sort of the input.
    #[test]
    fn fuzz_trace_binary_round_trip(
        jobs in proptest::collection::vec(
            (1usize..5, 0usize..3, 0usize..4, 0usize..4, 0usize..4),
            0..8,
        ),
        seed_pick in 0usize..4,
    ) {
        let mut trace = WorkloadTrace::new("binary fuzz \"with\" escapes", "fuzzer");
        trace.meta.seed = [None, Some(0), Some(1), Some(u64::MAX)][seed_pick];
        for &(maps, reduces, dur_pick, arr_pick, name_pick) in &jobs {
            trace.push(fuzz_job(maps, reduces, dur_pick, arr_pick, name_pick));
        }
        let mut expected = trace.clone();
        expected.jobs.sort_by_key(|j| j.arrival); // stable: ties keep input order
        let decoded = decode_trace(&encode_trace(&trace).unwrap()).unwrap();
        prop_assert!(decoded.validate().is_ok());
        prop_assert_eq!(decoded.jobs.len(), expected.jobs.len());
        for (d, e) in decoded.jobs.iter().zip(&expected.jobs) {
            prop_assert_eq!(
                serde_json::to_string(d).unwrap(),
                serde_json::to_string(e).unwrap()
            );
        }
        prop_assert_eq!(decoded.meta, expected.meta);
    }

    /// Every proper prefix of a binary trace is a typed error — never a
    /// panic — and so is any single-byte corruption of the
    /// checksum-covered body.
    #[test]
    fn fuzz_binary_corruption_is_a_typed_error(
        jobs in proptest::collection::vec(
            (1usize..3, 0usize..2, 0usize..4, 0usize..4, 0usize..4),
            1..4,
        ),
        flip_pick in 0usize..997,
    ) {
        let mut trace = WorkloadTrace::new("binary corruption fuzz", "fuzzer");
        for &(maps, reduces, dur_pick, arr_pick, name_pick) in &jobs {
            trace.push(fuzz_job(maps, reduces, dur_pick, arr_pick, name_pick));
        }
        let bytes = encode_trace(&trace).unwrap();

        // truncation at every prefix
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded successfully", bytes.len()
            );
        }

        // a bit flip in the body (everything past the header is
        // checksummed) is a checksum mismatch
        let body = bytes.len() - 48;
        let at = 48 + flip_pick % body;
        let mut flipped = bytes.clone();
        flipped[at] ^= 0x40;
        prop_assert!(
            matches!(decode_trace(&flipped), Err(BinError::ChecksumMismatch { .. })),
            "flip at {at} not a checksum mismatch"
        );

        // wrong magic and unknown version are their own errors
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        prop_assert!(matches!(decode_trace(&bad_magic), Err(BinError::BadMagic)));
        let mut bad_version = bytes;
        bad_version[8] = 0xEE;
        bad_version[9] = 0xEE;
        prop_assert!(matches!(decode_trace(&bad_version), Err(BinError::BadVersion(_))));
    }
}

// ---- checkpoint codec fuzzer ----------------------------------------------

/// Builds one fuzzed job with finite durations so the engine prefix the
/// checkpoint fuzzer runs always settles. Escape-heavy names still apply.
fn ckpt_fuzz_job(maps: usize, reduces: usize, ms: u64, arrival: u64, name_pick: usize) -> JobSpec {
    let template = JobTemplate::new(
        NAMES[name_pick],
        vec![ms; maps],
        if reduces > 0 { vec![ms / 4 + 1] } else { vec![] },
        if reduces > 0 { vec![ms / 4 + 1; reduces] } else { vec![] },
        vec![ms; reduces],
    )
    .expect("fuzzed template is structurally valid");
    let mut spec = JobSpec::new(template, SimTime::from_millis(arrival));
    if arrival % 2 == 1 {
        spec = spec.with_deadline(SimTime::from_millis(arrival + 4 * ms));
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Engine checkpoints taken at fuzzed instants over fuzzed traces obey
    /// the same codec contract as binary traces: encode → decode → encode
    /// is the identity; every proper prefix is a typed [`CkptError`], never
    /// a panic; any single-byte corruption is caught — as [`BadMagic`] in
    /// the magic bytes, as a checksum mismatch anywhere else (the CRC-64
    /// trailer covers version, body and itself).
    ///
    /// [`BadMagic`]: CkptError::BadMagic
    #[test]
    fn fuzz_checkpoint_codec_round_trip_and_corruption(
        jobs in proptest::collection::vec(
            // (maps, reduces, map_ms, arrival_ms, name_pick)
            (1usize..5, 0usize..3, 20u64..500, 0u64..2_000, 0usize..4),
            1..8,
        ),
        at in 0u64..3_000,
        flip_pick in 0usize..997,
    ) {
        let mut trace = WorkloadTrace::new("checkpoint fuzz \"with\" escapes", "fuzzer");
        for &(maps, reduces, ms, arrival, name_pick) in &jobs {
            trace.push(ckpt_fuzz_job(maps, reduces, ms, arrival, name_pick));
        }
        let ckpt = SimulatorEngine::new(
            EngineConfig::new(2, 2).with_timeline().with_invariants(),
            &trace,
            Box::new(FifoPolicy::new()),
        )
        .checkpoint_at(SimTime::from_millis(at))
        .unwrap();
        let bytes = ckpt.encode();

        // encode → decode → encode is the identity on accepted inputs
        let decoded = EngineCheckpoint::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded.encode(), &bytes);

        // truncation at every prefix is a typed error, never a panic
        for cut in 0..bytes.len() {
            prop_assert!(
                EngineCheckpoint::decode(&bytes[..cut]).is_err(),
                "prefix of {}/{} bytes decoded successfully", cut, bytes.len()
            );
        }

        // a bit flip anywhere in the document is caught: the magic bytes
        // fail their own check, everything else the CRC-64 trailer
        let flip_at = flip_pick % bytes.len();
        let mut flipped = bytes.clone();
        flipped[flip_at] ^= 0x40;
        let err = EngineCheckpoint::decode(&flipped).map(|_| ()).unwrap_err();
        if flip_at < 8 {
            prop_assert_eq!(err, CkptError::BadMagic, "flip at {}", flip_at);
        } else {
            prop_assert!(
                matches!(err, CkptError::ChecksumMismatch { .. }),
                "flip at {}: unexpected {:?}", flip_at, err
            );
        }
    }
}

/// The same trace replayed through the materialized JSON path and the
/// streaming binary path produces identical reports — per-job rows,
/// makespan and event count.
#[test]
fn json_and_binary_replays_are_byte_identical() {
    let workload = FacebookWorkload { mean_interarrival_ms: 30_000.0 };
    let trace = workload.generate_pooled(300, 4, 0xD0);

    let dir = std::env::temp_dir().join(format!("simmr-it-binrep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("t.trace.bin");
    std::fs::write(&bin_path, encode_trace(&trace).unwrap()).unwrap();

    // materialized: JSON round-trip, then the borrowing constructor
    let json = serde_json::to_string(&trace).unwrap();
    let materialized: WorkloadTrace = serde_json::from_str(&json).unwrap();
    let report_json =
        SimulatorEngine::new(EngineConfig::new(16, 16), &materialized, Box::new(FifoPolicy::new()))
            .run();

    // streaming: pulled from the binary file one arrival at a time
    let source = BinTraceSource::open(&bin_path).unwrap();
    let report_bin = SimulatorEngine::from_source(
        EngineConfig::new(16, 16),
        Box::new(source),
        Box::new(FifoPolicy::new()),
    )
    .try_run()
    .unwrap();

    assert_eq!(report_json, report_bin);
    assert_eq!(
        serde_json::to_string(&report_json).unwrap(),
        serde_json::to_string(&report_bin).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// 100k-job streaming smoke replay, gated for CI: set
/// `SIMMR_STREAM_SMOKE=1` to run. Generates a pooled binary trace on
/// disk, streams it through the engine in aggregate mode and checks the
/// event volume.
#[test]
fn stream_smoke_100k() {
    if std::env::var("SIMMR_STREAM_SMOKE").map(|v| v == "1") != Ok(true) {
        return;
    }
    let jobs = 100_000;
    let mut workload = FacebookWorkload { mean_interarrival_ms: 20_000.0 }.workload();
    workload.classes.truncate(3); // small-job head of the mix: bounded backlog
    let dir = std::env::temp_dir().join(format!("simmr-it-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("smoke.trace.bin");
    let file = std::fs::File::create(&path).unwrap();
    workload
        .write_bin(jobs, 8, 0xBE, None, std::io::BufWriter::new(file))
        .unwrap()
        .into_inner()
        .unwrap();

    let source = BinTraceSource::open(&path).unwrap();
    assert_eq!(source.job_count(), jobs);
    let report = SimulatorEngine::from_source(
        EngineConfig::new(64, 64).without_job_results(),
        Box::new(source),
        Box::new(FifoPolicy::new()),
    )
    .try_run()
    .unwrap();
    assert!(report.jobs.is_empty(), "aggregate mode collects no per-job rows");
    assert!(
        report.events_processed > jobs as u64 * 2,
        "only {} events for {jobs} jobs",
        report.events_processed
    );
    assert!(report.makespan > SimTime::ZERO);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Duplicate object keys resolve first-wins (the vendored `serde_json`
/// keeps every pair and `Value::get` returns the first match); unknown
/// keys are ignored; a schema-violating field type still errors.
#[test]
fn duplicate_keys_resolve_first_wins() {
    let json = r#"{
        "meta": {"description": "first", "description": "second",
                 "source": "fuzz", "seed": 7, "seed": 8, "unknown": [1, 2]},
        "jobs": [{
            "template": {"name": "dup", "name": "loser",
                         "num_maps": 1, "num_maps": 99,
                         "num_reduces": 0,
                         "map_durations": [5], "map_durations": [1, 2, 3],
                         "first_shuffle_durations": [],
                         "typical_shuffle_durations": [],
                         "reduce_durations": []},
            "arrival": 10, "arrival": 20, "deadline": null
        }]
    }"#;
    let trace: WorkloadTrace = serde_json::from_str(json).unwrap();
    assert_eq!(trace.meta.description, "first");
    assert_eq!(trace.meta.seed, Some(7));
    assert_eq!(&*trace.jobs[0].template.name, "dup");
    assert_eq!(trace.jobs[0].template.num_maps, 1);
    assert_eq!(trace.jobs[0].template.map_durations, vec![5]);
    assert_eq!(trace.jobs[0].arrival, SimTime::from_millis(10));
    trace.validate().unwrap();

    // wrong field type is a hard error, not a default
    let bad = r#"{"meta": {"description": 3, "source": "s", "seed": null}, "jobs": []}"#;
    assert!(serde_json::from_str::<WorkloadTrace>(bad).is_err());
}
