//! Trace persistence and transformation round-trips.

use simmr_bench::pipeline::run_testbed;
use simmr_cluster::{ClusterConfig, ClusterPolicy};
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_integration::small_job;
use simmr_sched::FifoPolicy;
use simmr_trace::{scale_template, trace_from_history, TraceDatabase};
use simmr_types::{parse_history, SimTime, WorkloadTrace};

fn testbed_trace(seed: u64) -> WorkloadTrace {
    let run = run_testbed(
        vec![
            (small_job(simmr_apps::AppKind::WordCount, 18, 6), SimTime::ZERO, None),
            (small_job(simmr_apps::AppKind::Twitter, 10, 4), SimTime::from_secs(10), None),
        ],
        ClusterPolicy::Fifo,
        ClusterConfig::tiny(6),
        seed,
    );
    trace_from_history(&run.history, "round-trip test").unwrap()
}

fn replay(trace: &WorkloadTrace, slots: usize) -> simmr_types::SimulationReport {
    SimulatorEngine::new(EngineConfig::new(slots, slots), trace, Box::new(FifoPolicy::new())).run()
}

#[test]
fn database_round_trip_preserves_replay() {
    let dir = std::env::temp_dir().join(format!("simmr-it-db-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = TraceDatabase::open(&dir).unwrap();
    let trace = testbed_trace(1);
    db.store("roundtrip", &trace).unwrap();
    let loaded = db.load("roundtrip").unwrap();
    assert_eq!(trace, loaded);
    assert_eq!(replay(&trace, 6), replay(&loaded, 6));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn history_text_round_trip() {
    let run = run_testbed(
        vec![(small_job(simmr_apps::AppKind::Sort, 12, 4), SimTime::ZERO, None)],
        ClusterPolicy::Fifo,
        ClusterConfig::tiny(4),
        2,
    );
    let lines = parse_history(&run.history).unwrap();
    let rewritten = simmr_types::write_history(&lines);
    assert_eq!(parse_history(&rewritten).unwrap(), lines);
    // and both texts profile to the same trace
    let a = trace_from_history(&run.history, "x").unwrap();
    let b = trace_from_history(&rewritten, "x").unwrap();
    assert_eq!(a.jobs, b.jobs);
}

#[test]
fn scaled_traces_replay_proportionally() {
    let trace = testbed_trace(3);
    let base = replay(&trace, 6);

    let mut doubled = trace.clone();
    for job in doubled.jobs.iter_mut() {
        job.template = scale_template(&job.template, 2.0);
    }
    let big = replay(&doubled, 6);
    // twice the data: strictly more work, completion grows substantially
    let base_ms = base.jobs.last().unwrap().completion.as_millis() as f64;
    let big_ms = big.jobs.last().unwrap().completion.as_millis() as f64;
    assert!(
        big_ms > 1.4 * base_ms,
        "2x-scaled trace should run much longer: {base_ms} -> {big_ms}"
    );

    // scaling down to a quarter shrinks it
    let mut quartered = trace.clone();
    for job in quartered.jobs.iter_mut() {
        job.template = scale_template(&job.template, 0.25);
    }
    let small = replay(&quartered, 6);
    assert!(small.makespan < base.makespan);
}

#[test]
fn scaling_then_rescaling_is_close_to_identity() {
    let trace = testbed_trace(4);
    let t = &trace.jobs[0].template;
    let back = scale_template(&scale_template(t, 2.0), 0.5);
    assert_eq!(back.num_maps, t.num_maps);
    assert_eq!(back.num_reduces, t.num_reduces);
    // durations survive up to rounding
    for (a, b) in t.reduce_durations.iter().zip(&back.reduce_durations) {
        let diff = a.abs_diff(*b);
        assert!(diff <= 1, "{a} vs {b}");
    }
}

#[test]
fn profiled_trace_serializes_compactly_and_validates() {
    let trace = testbed_trace(5);
    let json = serde_json::to_string(&trace).unwrap();
    let back: WorkloadTrace = serde_json::from_str(&json).unwrap();
    back.validate().unwrap();
    assert_eq!(trace, back);
}
