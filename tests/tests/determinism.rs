//! Reproducibility: every layer of the stack must be bit-for-bit
//! deterministic given a seed — the property the whole experiment harness
//! stands on.

use simmr_bench::pipeline::{replay_in_simmr, run_testbed};
use simmr_cluster::{ClusterConfig, ClusterPolicy};
use simmr_core::{EngineCheckpoint, EngineConfig, FaultSpec, RecoverySpec, SimulatorEngine};
use simmr_integration::small_job;
use simmr_sched::parse_policy;
use simmr_stats::Dist;
use simmr_trace::FacebookWorkload;
use simmr_types::SimTime;

#[test]
fn testbed_runs_identical_per_seed() {
    let go = |seed| {
        run_testbed(
            vec![(small_job(simmr_apps::AppKind::TfIdf, 20, 6), SimTime::ZERO, None)],
            ClusterPolicy::Fifo,
            ClusterConfig::tiny(6),
            seed,
        )
    };
    let a = go(9);
    let b = go(9);
    assert_eq!(a.history, b.history);
    assert_eq!(a.events, b.events);
    assert_eq!(a.makespan, b.makespan);
    let c = go(10);
    assert_ne!(a.history, c.history, "different seeds must differ");
}

#[test]
fn full_pipeline_identical_per_seed() {
    let go = || {
        let run = run_testbed(
            vec![
                (small_job(simmr_apps::AppKind::WordCount, 16, 4), SimTime::ZERO, None),
                (small_job(simmr_apps::AppKind::Sort, 12, 4), SimTime::from_secs(3), None),
            ],
            ClusterPolicy::Fifo,
            ClusterConfig::tiny(6),
            77,
        );
        replay_in_simmr(&run.history, "fifo", 6, 6, &[None, None])
    };
    assert_eq!(go(), go());
}

#[test]
fn engine_identical_across_all_policies() {
    let trace = FacebookWorkload { mean_interarrival_ms: 20_000.0 }.generate(40, 5);
    for name in ["fifo", "maxedf", "minedf", "fair"] {
        let run = |_: u32| {
            SimulatorEngine::new(EngineConfig::new(16, 16), &trace, parse_policy(name).unwrap())
                .run()
        };
        assert_eq!(run(0), run(1), "policy {name} not deterministic");
    }
}

#[test]
fn resume_from_checkpoint_is_deterministic() {
    // Interrupting a seeded run at a checkpoint and resuming — even through
    // the serialized byte form — must land on the exact report of the
    // uninterrupted run, for every policy, with the full perturbation stack
    // (faults, recovery, speculation, slowdowns) armed.
    let trace = FacebookWorkload { mean_interarrival_ms: 15_000.0 }.generate(30, 7);
    let config = EngineConfig::new(8, 8)
        .with_hosts(4)
        .with_timeline()
        .with_invariants()
        .with_faults(FaultSpec { seed: 21, count: 2, mean_interval_ms: 60_000 })
        .with_recovery(RecoverySpec { seed: 22, mean_ms: 30_000 })
        .with_speculation(1.5)
        .with_slowdown(Dist::Exponential { mean: 1.1 }, 23);
    for name in ["fifo", "maxedf", "minedf-p", "fair", "capacity", "hier"] {
        let uninterrupted =
            SimulatorEngine::new(config, &trace, parse_policy(name).unwrap()).try_run().unwrap();
        let at = SimTime::from_millis(uninterrupted.makespan.as_millis() / 2);
        let resume = |_: u32| {
            let ckpt = SimulatorEngine::new(config, &trace, parse_policy(name).unwrap())
                .checkpoint_at(at)
                .unwrap();
            let wire = EngineCheckpoint::decode(&ckpt.encode()).unwrap();
            SimulatorEngine::resume_materialized(config, &wire, parse_policy(name).unwrap())
                .unwrap()
                .try_run()
                .unwrap()
        };
        let a = resume(0);
        assert_eq!(a, uninterrupted, "policy {name}: resumed run diverged");
        assert_eq!(a, resume(1), "policy {name}: resume not deterministic");
    }
}

#[test]
fn facebook_generator_stable_across_calls() {
    let w = FacebookWorkload { mean_interarrival_ms: 1_000.0 };
    let a = w.generate(200, 123);
    let b = w.generate(200, 123);
    assert_eq!(a, b);
    // and the serialized form round-trips exactly
    let json = serde_json::to_string(&a).unwrap();
    let back: simmr_types::WorkloadTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(a, back);
}

#[test]
fn conservation_every_job_completes_exactly_once() {
    let trace = FacebookWorkload { mean_interarrival_ms: 5_000.0 }.generate(60, 11);
    for name in ["fifo", "maxedf", "minedf", "fair"] {
        let report =
            SimulatorEngine::new(EngineConfig::new(8, 8), &trace, parse_policy(name).unwrap())
                .run();
        assert_eq!(report.jobs.len(), trace.len(), "{name}");
        for (i, job) in report.jobs.iter().enumerate() {
            assert_eq!(job.job.index(), i);
            assert!(job.completion >= job.arrival, "{name}: job finished before arriving");
            assert_eq!(job.num_maps, trace.jobs[i].template.num_maps);
            assert_eq!(job.num_reduces, trace.jobs[i].template.num_reduces);
        }
        let max_completion = report.jobs.iter().map(|j| j.completion).max().unwrap();
        assert_eq!(report.makespan, max_completion, "{name}");
    }
}
