//! Shared helpers for the cross-crate integration tests.

use simmr_apps::{AppKind, JobModel};
use simmr_stats::Dist;

/// A scaled-down application job so integration tests finish in
/// milliseconds: task times in the low seconds, modest shuffle volumes.
pub fn small_job(kind: AppKind, maps: usize, reduces: usize) -> JobModel {
    let mut job = JobModel::with_task_counts(kind, maps, reduces);
    job.map_time_s = Dist::LogNormal { mu: 0.8, sigma: 0.25 };
    job.reduce_time_s = Dist::LogNormal { mu: 0.2, sigma: 0.25 };
    job.shuffle_mb_per_reduce = 50.0;
    job
}
