//! Deadline-driven scheduling: the §V case study in miniature.
//!
//! Runs two of the paper's applications on the fine-grained testbed to get
//! realistic job profiles, builds a deadline workload from them, and
//! compares FIFO, MaxEDF and MinEDF on the *sum of relative deadlines
//! exceeded* metric.
//!
//! ```sh
//! cargo run --release -p simmr-examples --bin deadline_scheduling
//! ```

use simmr_apps::{AppKind, JobModel};
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_stats::SeededRng;
use simmr_trace::profile_history;
use simmr_types::{JobSpec, SimTime, WorkloadTrace};

const SLOTS: usize = 16;

/// Profiles one application on a small testbed, returning its template.
fn profile_app(kind: AppKind, maps: usize, reduces: usize, seed: u64) -> simmr_types::JobTemplate {
    let mut sim = ClusterSim::new(ClusterConfig::tiny(SLOTS), ClusterPolicy::Fifo, seed);
    sim.submit(JobModel::with_task_counts(kind, maps, reduces), SimTime::ZERO, None);
    let run = sim.run();
    profile_history(&run.history).expect("testbed history profiles")[0].template.clone()
}

/// Standalone (all-slots) runtime of a template — the deadline baseline.
fn standalone(template: &simmr_types::JobTemplate) -> u64 {
    let mut trace = WorkloadTrace::new("standalone", "example");
    trace.push(JobSpec::new(template.clone(), SimTime::ZERO));
    SimulatorEngine::new(
        EngineConfig::new(SLOTS, SLOTS),
        &trace,
        parse_policy("fifo").expect("fifo exists"),
    )
    .run()
    .jobs[0]
        .duration()
}

fn main() {
    println!("profiling WordCount and Sort on the testbed simulator ...");
    let templates =
        [profile_app(AppKind::WordCount, 48, 16, 11), profile_app(AppKind::Sort, 32, 16, 12)];

    // Build a bursty workload: 10 jobs, exponential-ish arrivals, deadlines
    // uniform in [T_J, 2 T_J] after arrival (deadline factor 2).
    let mut rng = SeededRng::new(2024);
    let mut trace = WorkloadTrace::new("deadline case study", "example");
    let mut clock = SimTime::ZERO;
    for i in 0..10 {
        let template = templates[i % templates.len()].clone();
        let t_j = standalone(&template);
        let deadline = clock + rng.uniform_u64(t_j, 2 * t_j);
        trace.push(JobSpec::new(template, clock).with_deadline(deadline));
        clock += rng.uniform_u64(5_000, 60_000);
    }

    println!("\n{:<8} {:>14} {:>10} {:>12}", "policy", "rel_exceeded", "missed", "makespan_s");
    for name in ["fifo", "maxedf", "minedf"] {
        let report = SimulatorEngine::new(
            EngineConfig::new(SLOTS, SLOTS),
            &trace,
            parse_policy(name).expect("known policy"),
        )
        .run();
        println!(
            "{:<8} {:>14.2} {:>7}/{:<2} {:>12.1}",
            name,
            report.total_relative_deadline_exceeded(),
            report.missed_deadlines(),
            report.jobs.len(),
            report.makespan.as_secs_f64()
        );
    }
    println!(
        "\nMinEDF conserves slots per job (sized by the ARIA bounds model), so\n\
         urgent late arrivals find room — the paper's §V result."
    );
}
