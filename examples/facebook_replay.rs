//! Synthetic Facebook workload end-to-end (§V-C): generate a trace from the
//! fitted LogNormal model, verify its statistics against the paper's
//! parameters, and replay it under the deadline schedulers.
//!
//! ```sh
//! cargo run --release -p simmr-examples --bin facebook_replay
//! ```

use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_stats::{fit_best, fit_lognormal, Dist};
use simmr_trace::FacebookWorkload;

fn main() {
    let workload = FacebookWorkload { mean_interarrival_ms: 120_000.0 };
    let trace = workload.generate(150, 42);

    // 1. Statistical sanity: the generated map durations should fit a
    //    LogNormal with the paper's parameters (mu=9.9511, sigma=1.6764).
    let map_samples: Vec<f64> = trace
        .jobs
        .iter()
        .flat_map(|j| j.template.map_durations.iter().map(|&d| d as f64))
        .collect();
    match fit_lognormal(&map_samples) {
        Some(Dist::LogNormal { mu, sigma }) => {
            println!(
                "map durations: fitted LN(mu={mu:.3}, sigma={sigma:.3}) — paper LN(9.9511, 1.6764)"
            );
        }
        other => println!("unexpected fit result: {other:?}"),
    }
    // ... and the K-S ranking should pick LogNormal first, like StatAssist
    // did for the paper's authors.
    let best = &fit_best(&map_samples)[0];
    println!("best K-S fit: {:?} (K-S = {:.4})", best.dist, best.ks);

    // 2. Deadline study on this trace (deadline factor 1.5).
    let mut rng = simmr_stats::SeededRng::new(7);
    let mut trace = trace;
    for job in trace.jobs.iter_mut() {
        // standalone runtime on the 64x64 cluster as deadline baseline
        let mut single = simmr_types::WorkloadTrace::new("s", "fb");
        single.push(simmr_types::JobSpec::new(job.template.clone(), simmr_types::SimTime::ZERO));
        let t_j = SimulatorEngine::new(
            EngineConfig::new(64, 64),
            &single,
            parse_policy("fifo").expect("fifo"),
        )
        .run()
        .jobs[0]
            .duration();
        let rel = rng.uniform_u64(t_j, (1.5 * t_j as f64) as u64);
        job.deadline = Some(job.arrival + rel);
    }

    println!("\n{:<8} {:>8} {:>16}", "policy", "missed", "rel_exceeded");
    for name in ["maxedf", "minedf"] {
        let report = SimulatorEngine::new(
            EngineConfig::new(64, 64),
            &trace,
            parse_policy(name).expect("policy"),
        )
        .run();
        println!(
            "{:<8} {:>5}/{:<3} {:>16.2}",
            name,
            report.missed_deadlines(),
            report.jobs.len(),
            report.total_relative_deadline_exceeded()
        );
    }
}
