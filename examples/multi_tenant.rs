//! Multi-tenant hierarchical scheduling walkthrough.
//!
//! Three tenants share one cluster: two production groups (`prod-etl`,
//! `prod-serving`) under a common `prod` pool with a guaranteed minimum
//! share, and a noisy `adhoc` tenant submitting half of all jobs. The
//! hierarchical pool-tree policy routes jobs by name prefix, splits slots
//! by weight at each tree level, and — when `prod` has sat below its
//! minimum share longer than its preemption timeout — kills the youngest
//! `adhoc` map tasks to restore the guarantee.
//!
//! ```sh
//! cargo run --release -p simmr-examples --bin multi_tenant
//! ```

use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_trace::MultiTenantWorkload;
use simmr_types::{SimulationReport, WorkloadTrace};

/// The ISSUE's 3-tenant tree: `prod` holds 3/4 of the weight, a 4-slot
/// minimum share and a 30 s preemption timeout; `adhoc` takes the rest.
const POOLS: &str = "hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc[w=1]";

fn replay(trace: &WorkloadTrace, policy: &str) -> SimulationReport {
    SimulatorEngine::new(
        EngineConfig::new(16, 8).with_invariants(),
        trace,
        parse_policy(policy).expect("policy spec parses"),
    )
    .run()
}

/// Mean job duration in seconds per tenant prefix.
fn per_tenant(report: &SimulationReport, tenants: &[&str]) -> Vec<(usize, f64)> {
    tenants
        .iter()
        .map(|t| {
            let durs: Vec<f64> = report
                .jobs
                .iter()
                .filter(|j| j.name.starts_with(t))
                .map(|j| j.duration() as f64 / 1000.0)
                .collect();
            (durs.len(), durs.iter().sum::<f64>() / durs.len().max(1) as f64)
        })
        .collect()
}

fn main() {
    let workload = MultiTenantWorkload::three_tenant(20_000.0);
    let trace = workload.generate(150, 11);
    println!(
        "workload: {} jobs from {} tenants, {} tasks\n",
        trace.len(),
        workload.tenants.len(),
        trace.total_tasks()
    );

    let tenants: Vec<&str> = workload.tenants.iter().map(|(t, _)| t.as_str()).collect();
    println!("policy comparison on 16 map + 8 reduce slots:");
    println!("{:<44} {:>10}  per-tenant mean job duration", "policy", "makespan_s");
    for policy in ["fifo", "fair", POOLS] {
        let report = replay(&trace, policy);
        let stats = per_tenant(&report, &tenants);
        let detail = tenants
            .iter()
            .zip(&stats)
            .map(|(t, (n, mean))| format!("{t}: {mean:.0}s ({n} jobs)"))
            .collect::<Vec<_>>()
            .join("  ");
        println!("{:<44} {:>10.0}  {detail}", policy, report.makespan.as_secs_f64());
    }

    // Same-seed reruns are byte-identical — preemption decisions included.
    let a = replay(&trace, POOLS);
    let b = replay(&trace, POOLS);
    assert_eq!(a, b, "hierarchical replay must be deterministic");

    println!(
        "\nthe pool tree `{}`\nguarantees prod 4 map slots: after 30 s below that share the \
         youngest adhoc\ntasks are preempted (killed and requeued) until the guarantee holds.",
        &POOLS[5..]
    );
}
