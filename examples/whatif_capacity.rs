//! What-if capacity planning: the use case from the paper's introduction.
//!
//! "When there is a need to expand the set of production jobs ... one has
//! to evaluate whether additional resources are required." This example
//! profiles a production-like job mix once, then replays it at several
//! hypothetical cluster sizes in milliseconds of wall-clock time — the
//! kind of question that would take days on a real testbed. The what-ifs
//! are phrased as `ScenarioSpec`s and run as one batch through the
//! `simmr-serve` facade — exactly what `simmr serve` does for a
//! `POST /v1/sweep` request.
//!
//! ```sh
//! cargo run --release -p simmr-examples --bin whatif_capacity
//! ```

use simmr_sched::PolicySpec;
use simmr_serve::{ScenarioSpec, SimFacade, TraceRef};
use simmr_stats::SeededRng;
use simmr_trace::FacebookWorkload;
use simmr_types::{ClusterSpec, WorkloadTrace};

const SLOT_SIZES: [usize; 5] = [16, 32, 64, 128, 256];

fn scenario(trace: &WorkloadTrace, slots: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(TraceRef::Inline(trace.clone()), PolicySpec::Fifo);
    spec.cluster = ClusterSpec::new(slots, slots);
    spec
}

fn main() {
    // A production-like mix: 200 Facebook-style jobs arriving over ~3.3 h.
    let mut trace = FacebookWorkload { mean_interarrival_ms: 60_000.0 }.generate(200, 7);
    println!(
        "workload: {} jobs, {} tasks, {:.1} h serial work\n",
        trace.len(),
        trace.total_tasks(),
        trace.total_serial_work_ms() as f64 / 3.6e6
    );

    let facade = SimFacade::new();
    let specs: Vec<ScenarioSpec> = SLOT_SIZES.iter().map(|&s| scenario(&trace, s)).collect();
    let runs = facade.run_batch(&specs);

    println!("{:>7} {:>14} {:>16}", "slots", "makespan_h", "mean_job_dur_s");
    let mut prev: Option<f64> = None;
    for (slots, run) in SLOT_SIZES.iter().zip(runs) {
        let report = run.expect("capacity scenario runs").report;
        let makespan_s = report.makespan.as_secs_f64();
        let delta = prev
            .map(|p| format!("  ({:+.0}% vs previous)", (makespan_s / p - 1.0) * 100.0))
            .unwrap_or_default();
        println!(
            "{:>4}x{:<3} {:>13.2}h {:>15.1}s{delta}",
            slots,
            slots,
            makespan_s / 3600.0,
            report.mean_duration_ms() / 1000.0
        );
        prev = Some(makespan_s);
    }

    // Second what-if: what happens when the input data doubles (§VII trace
    // scaling)? Scale every job and re-ask the 64-slot question.
    let mut rng = SeededRng::new(99);
    for job in trace.jobs.iter_mut() {
        // production datasets rarely double uniformly — jitter the factor
        let f = rng.uniform(1.8, 2.2);
        job.template = simmr_trace::scale_template(&job.template, f);
    }
    let report = facade.run(&scenario(&trace, 64)).expect("scaled scenario runs").report;
    println!(
        "\nafter ~2x data growth on 64x64 slots: makespan {:.2} h, mean job {:.1}s",
        report.makespan.as_secs_f64() / 3600.0,
        report.mean_duration_ms() / 1000.0
    );
    println!("=> decide whether to buy nodes before the data arrives, not after.");
}
