//! What-if capacity planning: the use case from the paper's introduction.
//!
//! "When there is a need to expand the set of production jobs ... one has
//! to evaluate whether additional resources are required." This example
//! profiles a production-like job mix once, then replays it at several
//! hypothetical cluster sizes in milliseconds of wall-clock time — the
//! kind of question that would take days on a real testbed.
//!
//! ```sh
//! cargo run --release -p simmr-examples --bin whatif_capacity
//! ```

use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::FifoPolicy;
use simmr_stats::SeededRng;
use simmr_trace::FacebookWorkload;
use simmr_types::WorkloadTrace;

fn replay(trace: &WorkloadTrace, slots: usize) -> (f64, f64) {
    let report =
        SimulatorEngine::new(EngineConfig::new(slots, slots), trace, Box::new(FifoPolicy::new()))
            .run();
    (report.makespan.as_secs_f64(), report.mean_duration_ms() / 1000.0)
}

fn main() {
    // A production-like mix: 200 Facebook-style jobs arriving over ~3.3 h.
    let mut trace = FacebookWorkload { mean_interarrival_ms: 60_000.0 }.generate(200, 7);
    println!(
        "workload: {} jobs, {} tasks, {:.1} h serial work\n",
        trace.len(),
        trace.total_tasks(),
        trace.total_serial_work_ms() as f64 / 3.6e6
    );

    println!("{:>7} {:>14} {:>16}", "slots", "makespan_h", "mean_job_dur_s");
    let mut prev: Option<f64> = None;
    for slots in [16, 32, 64, 128, 256] {
        let (makespan_s, mean_dur) = replay(&trace, slots);
        let delta = prev
            .map(|p| format!("  ({:+.0}% vs previous)", (makespan_s / p - 1.0) * 100.0))
            .unwrap_or_default();
        println!(
            "{:>4}x{:<3} {:>13.2}h {:>15.1}s{delta}",
            slots,
            slots,
            makespan_s / 3600.0,
            mean_dur
        );
        prev = Some(makespan_s);
    }

    // Second what-if: what happens when the input data doubles (§VII trace
    // scaling)? Scale every job and re-ask the 64-slot question.
    let mut rng = SeededRng::new(99);
    for job in trace.jobs.iter_mut() {
        // production datasets rarely double uniformly — jitter the factor
        let f = rng.uniform(1.8, 2.2);
        job.template = simmr_trace::scale_template(&job.template, f);
    }
    let (makespan_s, mean_dur) = replay(&trace, 64);
    println!(
        "\nafter ~2x data growth on 64x64 slots: makespan {:.2} h, mean job {:.1}s",
        makespan_s / 3600.0,
        mean_dur
    );
    println!("=> decide whether to buy nodes before the data arrives, not after.");
}
