//! Quickstart: build a tiny workload by hand, replay it in the SimMR
//! engine, and read the report.
//!
//! ```sh
//! cargo run -p simmr-examples --bin quickstart
//! ```

use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::FifoPolicy;
use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

fn main() {
    // 1. A job template is the paper's replayable profile: map durations,
    //    first/typical shuffle durations, and reduce-phase durations (ms).
    let wordcount = JobTemplate::new(
        "wordcount-demo",
        vec![18_000; 40], // 40 map tasks, ~18 s each
        vec![6_000; 8],   // non-overlapping first-wave shuffle tails
        vec![14_000; 16], // typical (later-wave) shuffles
        vec![4_000; 16],  // reduce phases
    )
    .expect("structurally valid template");

    let sort = JobTemplate::new(
        "sort-demo",
        vec![4_000; 24],
        vec![9_000; 8],
        vec![21_000; 8],
        vec![12_000; 8],
    )
    .expect("structurally valid template");

    // 2. A workload trace is a set of jobs with arrival times (and,
    //    optionally, deadlines — see the deadline_scheduling example).
    let mut trace = WorkloadTrace::new("quickstart demo", "handwritten");
    trace.push(JobSpec::new(wordcount, SimTime::ZERO));
    trace.push(JobSpec::new(sort, SimTime::from_secs(30)));

    // 3. Replay on a simulated 16x8-slot cluster under FIFO.
    let config = EngineConfig::new(16, 8).with_timeline();
    let report = SimulatorEngine::new(config, &trace, Box::new(FifoPolicy::new())).run();

    println!("processed {} events", report.events_processed);
    for job in &report.jobs {
        println!(
            "{:<16} arrived {:>6}  maps done {:>8}  finished {:>8}  ({} maps, {} reduces)",
            job.name,
            job.arrival,
            job.maps_finished.expect("job has maps"),
            job.completion,
            job.num_maps,
            job.num_reduces,
        );
    }
    println!("cluster makespan: {}", report.makespan);

    // 4. The recorded timeline drives Figure-1-style plots: one bar per
    //    task phase, with the slot it occupied.
    let map_bars =
        report.timeline.iter().filter(|b| b.phase == simmr_types::TimelinePhase::Map).count();
    println!("timeline: {} bars total, {} map bars", report.timeline.len(), map_bars);
}
