//! # simmr-sched
//!
//! Pluggable scheduling policies for the SimMR engine (§III-C and §V of the
//! paper):
//!
//! * [`FifoPolicy`] — Hadoop's default FIFO: earliest-arrived job first;
//! * [`MaxEdfPolicy`] — Earliest-Deadline-First ordering with FIFO-style
//!   greedy resource allocation (grab every free slot);
//! * [`MinEdfPolicy`] — EDF ordering with *minimal* resource allocation:
//!   on arrival, the ARIA bounds model computes the smallest `(S_M, S_R)`
//!   that meets the job's deadline, and the policy never runs more tasks
//!   than that, leaving spare slots to later arrivals;
//! * [`FairSharePolicy`] — an HFS-flavoured extension: the job with the
//!   smallest running-task share goes first;
//! * [`CapacityPolicy`] — a Capacity-Scheduler-flavoured extension:
//!   weighted queues with FIFO inside each queue.
//!
//! All policies implement [`simmr_core::SchedulerPolicy`] and are
//! deterministic: ties break on `(arrival, job id)`.

pub mod capacity;
pub mod edf;
pub mod fair;
pub mod fifo;

pub use capacity::CapacityPolicy;
pub use edf::{MaxEdfPolicy, MinEdfPolicy};
pub use fair::FairSharePolicy;
pub use fifo::FifoPolicy;

use simmr_core::SchedulerPolicy;

/// The built-in policies by name, for CLIs and experiment harnesses.
///
/// Returns `None` for an unknown name. Valid names: `fifo`, `maxedf`,
/// `minedf`, `fair`, and the preemptive variants `maxedf-p` / `minedf-p`.
pub fn policy_by_name(name: &str) -> Option<Box<dyn SchedulerPolicy>> {
    match name {
        "fifo" => Some(Box::new(FifoPolicy::new())),
        "maxedf" => Some(Box::new(MaxEdfPolicy::new())),
        "minedf" => Some(Box::new(MinEdfPolicy::new())),
        "maxedf-p" => Some(Box::new(MaxEdfPolicy::preemptive())),
        "minedf-p" => Some(Box::new(MinEdfPolicy::preemptive())),
        "fair" => Some(Box::new(FairSharePolicy::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        for name in ["fifo", "maxedf", "minedf", "fair"] {
            let p = policy_by_name(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(policy_by_name("maxedf-p").is_some());
        assert!(policy_by_name("minedf-p").is_some());
        assert!(policy_by_name("nope").is_none());
    }
}
