//! # simmr-sched
//!
//! Pluggable scheduling policies for the SimMR engine (§III-C and §V of the
//! paper):
//!
//! * [`FifoPolicy`] — Hadoop's default FIFO: earliest-arrived job first;
//! * [`MaxEdfPolicy`] — Earliest-Deadline-First ordering with FIFO-style
//!   greedy resource allocation (grab every free slot);
//! * [`MinEdfPolicy`] — EDF ordering with *minimal* resource allocation:
//!   on arrival, the ARIA bounds model computes the smallest `(S_M, S_R)`
//!   that meets the job's deadline, and the policy never runs more tasks
//!   than that, leaving spare slots to later arrivals;
//! * [`FairSharePolicy`] — an HFS-flavoured extension: the job with the
//!   smallest running-task share goes first;
//! * [`CapacityPolicy`] — a Capacity-Scheduler-flavoured extension:
//!   weighted queues with FIFO inside each queue;
//! * [`HierPolicy`] — hierarchical pool *trees* (Hadoop Fair/Capacity
//!   style, the paper's refs. 2–3): nested pools with weights, min/max
//!   shares per slot kind and min-share preemption timeouts, declared via
//!   [`pool::PoolSpec`].
//!
//! All policies implement [`simmr_core::SchedulerPolicy`] and are
//! deterministic: ties break on `(arrival, job id)`.
//!
//! The EDF policies schedule from an incremental lazy-deletion deadline
//! index ([`edf_index::DeadlineIndex`]) maintained from the engine's
//! queue-mutation hooks — amortized O(log n) per decision instead of a
//! full queue scan; the hierarchical policy keeps incremental share
//! aggregates the same way. Both retain their full-scan reference modes
//! for differential testing.
//!
//! ## Policy specs
//!
//! CLIs and experiment harnesses name policies with a **spec string**,
//! parsed by [`PolicySpec`] (or the [`parse_policy`] shortcut):
//!
//! ```text
//! fifo | maxedf | minedf | maxedf-p | minedf-p | fair
//! capacity                       # two_tier() default queues
//! capacity:prod=3,adhoc=1        # ordered weighted queues
//! hier                           # two_tier() as a one-level tree
//! hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc[w=1]
//! ```
//!
//! The `hier` grammar (weights, per-kind min/max shares, preemption
//! timeouts in seconds, nested `{}` children) is documented in
//! [`pool`]; larger trees can be loaded from JSON with
//! [`pool::pools_from_json`] (the CLI's `--pools FILE`).
//!
//! Parsing returns a [`PolicyParseError`] that names the valid policies.
//! (The old `Option`-returning `policy_by_name` shim, deprecated since
//! the spec grammar landed, is gone — call [`parse_policy`] instead.)

pub mod capacity;
pub mod edf;
pub mod edf_index;
pub mod fair;
pub mod fifo;
pub mod hier;
pub mod pool;

pub use capacity::{CapacityPolicy, QueueConfig};
pub use edf::{MaxEdfPolicy, MinEdfPolicy};
pub use edf_index::{DeadlineIndex, EdfHeap, EdfKey};
pub use fair::FairSharePolicy;
pub use fifo::FifoPolicy;
pub use hier::HierPolicy;
pub use pool::{parse_pool_spec, pools_from_json, PoolSpec};

use simmr_core::SchedulerPolicy;
use std::fmt;
use std::str::FromStr;

/// The valid policy names, in the order error messages list them.
pub const POLICY_NAMES: &[&str] =
    &["fifo", "maxedf", "minedf", "maxedf-p", "minedf-p", "fair", "capacity", "hier"];

/// A parsed policy spec: which built-in policy to run, with parameters.
///
/// Parse one with [`str::parse`] / [`FromStr`] and instantiate it with
/// [`PolicySpec::build`]; [`parse_policy`] does both in one call. The
/// grammar is `name` or `name:params`, where only `capacity` currently
/// takes params (an ordered `queue=weight` list).
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Hadoop's default FIFO.
    Fifo,
    /// EDF with greedy allocation; `preemptive` arms map-slot preemption.
    MaxEdf {
        /// Kill latest-deadline maps for a more urgent waiting job.
        preemptive: bool,
    },
    /// EDF with ARIA minimal allocation; `preemptive` as above.
    MinEdf {
        /// Kill latest-deadline maps for a more urgent waiting job.
        preemptive: bool,
    },
    /// Fair share: smallest running share first.
    Fair,
    /// Weighted capacity queues, FIFO inside each queue, in listed order.
    /// Empty means [`CapacityPolicy::two_tier`].
    Capacity {
        /// Ordered `(queue name, weight)` pairs.
        queues: Vec<(String, f64)>,
    },
    /// Hierarchical pool tree with min/max shares and min-share
    /// preemption. Empty means [`HierPolicy::two_tier`].
    Hier {
        /// Top-level pools, in routing order.
        pools: Vec<PoolSpec>,
    },
}

/// Why a policy spec string failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyParseError {
    /// The name before the optional `:` is not a known policy.
    UnknownPolicy {
        /// The offending name, as given.
        given: String,
    },
    /// The part after `:` is invalid for the named policy.
    InvalidParams {
        /// The policy the params were for.
        policy: &'static str,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyParseError::UnknownPolicy { given } => {
                write!(f, "unknown policy {given:?}; valid policies: {}", POLICY_NAMES.join(", "))
            }
            PolicyParseError::InvalidParams { policy, reason } => {
                write!(f, "invalid parameters for policy {policy:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for PolicyParseError {}

impl FromStr for PolicySpec {
    type Err = PolicyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, params) = match s.split_once(':') {
            Some((name, params)) => (name, Some(params)),
            None => (s, None),
        };
        let spec = match name {
            "fifo" => PolicySpec::Fifo,
            "maxedf" => PolicySpec::MaxEdf { preemptive: false },
            "minedf" => PolicySpec::MinEdf { preemptive: false },
            "maxedf-p" => PolicySpec::MaxEdf { preemptive: true },
            "minedf-p" => PolicySpec::MinEdf { preemptive: true },
            "fair" => PolicySpec::Fair,
            "capacity" => {
                let queues = match params {
                    None => Vec::new(),
                    Some(p) => parse_capacity_queues(p)?,
                };
                return Ok(PolicySpec::Capacity { queues });
            }
            "hier" => {
                let pools = match params {
                    None => Vec::new(),
                    Some(p) => parse_pool_spec(p).map_err(|reason| {
                        PolicyParseError::InvalidParams { policy: "hier", reason }
                    })?,
                };
                return Ok(PolicySpec::Hier { pools });
            }
            _ => return Err(PolicyParseError::UnknownPolicy { given: name.to_string() }),
        };
        if let Some(p) = params {
            return Err(PolicyParseError::InvalidParams {
                policy: match spec {
                    PolicySpec::Fifo => "fifo",
                    PolicySpec::MaxEdf { preemptive: false } => "maxedf",
                    PolicySpec::MaxEdf { preemptive: true } => "maxedf-p",
                    PolicySpec::MinEdf { preemptive: false } => "minedf",
                    PolicySpec::MinEdf { preemptive: true } => "minedf-p",
                    _ => unreachable!(),
                },
                reason: format!("takes no parameters, got {p:?}"),
            });
        }
        Ok(spec)
    }
}

/// `prod=3,adhoc=1` → ordered `(name, weight)` pairs.
fn parse_capacity_queues(params: &str) -> Result<Vec<(String, f64)>, PolicyParseError> {
    let invalid = |reason: String| PolicyParseError::InvalidParams { policy: "capacity", reason };
    if params.is_empty() {
        return Err(invalid("empty parameter list (drop the ':' for default queues)".into()));
    }
    let mut queues = Vec::new();
    for part in params.split(',') {
        let Some((name, weight)) = part.split_once('=') else {
            return Err(invalid(format!("expected queue=weight, got {part:?}")));
        };
        let weight: f64 = weight.parse().map_err(|_| {
            invalid(format!("weight of queue {name:?} is not a number: {weight:?}"))
        })?;
        if !weight.is_finite() || weight <= 0.0 {
            return Err(invalid(format!("weight of queue {name:?} must be finite and > 0")));
        }
        if queues.iter().any(|(n, _)| n == name) {
            return Err(invalid(format!("queue {name:?} listed twice")));
        }
        queues.push((name.to_string(), weight));
    }
    Ok(queues)
}

impl PolicySpec {
    /// Instantiates the policy this spec describes.
    pub fn build(&self) -> Box<dyn SchedulerPolicy> {
        match self {
            PolicySpec::Fifo => Box::new(FifoPolicy::new()),
            PolicySpec::MaxEdf { preemptive: false } => Box::new(MaxEdfPolicy::new()),
            PolicySpec::MaxEdf { preemptive: true } => Box::new(MaxEdfPolicy::preemptive()),
            PolicySpec::MinEdf { preemptive: false } => Box::new(MinEdfPolicy::new()),
            PolicySpec::MinEdf { preemptive: true } => Box::new(MinEdfPolicy::preemptive()),
            PolicySpec::Fair => Box::new(FairSharePolicy::new()),
            PolicySpec::Capacity { queues } if queues.is_empty() => {
                Box::new(CapacityPolicy::two_tier())
            }
            PolicySpec::Capacity { queues } => Box::new(CapacityPolicy::new(
                queues
                    .iter()
                    .map(|(name, weight)| QueueConfig { name: name.clone(), weight: *weight })
                    .collect(),
            )),
            PolicySpec::Hier { pools } if pools.is_empty() => Box::new(HierPolicy::two_tier()),
            PolicySpec::Hier { pools } => Box::new(HierPolicy::new(pools.clone())),
        }
    }
}

/// Parses a policy spec string and builds the policy in one step.
///
/// ```
/// let p = simmr_sched::parse_policy("capacity:prod=3,adhoc=1").unwrap();
/// assert_eq!(p.name(), "capacity");
/// let err = simmr_sched::parse_policy("nope").err().unwrap();
/// assert!(err.to_string().contains("valid policies"));
/// ```
pub fn parse_policy(spec: &str) -> Result<Box<dyn SchedulerPolicy>, PolicyParseError> {
    Ok(spec.parse::<PolicySpec>()?.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_build_all_plain_names() {
        for name in ["fifo", "maxedf", "minedf", "fair", "capacity", "hier"] {
            let p = parse_policy(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(parse_policy("maxedf-p").is_ok());
        assert!(parse_policy("minedf-p").is_ok());
    }

    #[test]
    fn unknown_policy_lists_valid_names() {
        let err = parse_policy("nope").err().unwrap();
        let msg = err.to_string();
        for name in POLICY_NAMES {
            assert!(msg.contains(name), "{msg}");
        }
    }

    #[test]
    fn capacity_params_parse_in_order() {
        let spec: PolicySpec = "capacity:prod=3,adhoc=1.5".parse().unwrap();
        assert_eq!(
            spec,
            PolicySpec::Capacity { queues: vec![("prod".into(), 3.0), ("adhoc".into(), 1.5)] }
        );
        assert_eq!(spec.build().name(), "capacity");
        // bare name: the two_tier default
        assert_eq!(
            "capacity".parse::<PolicySpec>().unwrap(),
            PolicySpec::Capacity { queues: vec![] }
        );
    }

    #[test]
    fn capacity_param_errors() {
        for bad in [
            "capacity:",
            "capacity:prod",
            "capacity:prod=abc",
            "capacity:prod=0",
            "capacity:prod=-1",
            "capacity:prod=inf",
            "capacity:prod=1,prod=2",
        ] {
            let err = bad.parse::<PolicySpec>().unwrap_err();
            assert!(
                matches!(err, PolicyParseError::InvalidParams { policy: "capacity", .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn hier_params_parse_issue_example() {
        let spec: PolicySpec =
            "hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc[w=1]".parse().unwrap();
        let PolicySpec::Hier { pools } = &spec else { panic!("not hier: {spec:?}") };
        assert_eq!(pools.len(), 2);
        assert_eq!(pools[0].min_maps, Some(4));
        assert_eq!(pools[0].preemption_timeout, Some(30_000));
        assert_eq!(spec.build().name(), "hier");
        // bare name: the two_tier default tree
        assert_eq!("hier".parse::<PolicySpec>().unwrap(), PolicySpec::Hier { pools: vec![] });
    }

    #[test]
    fn hier_param_errors() {
        for bad in ["hier:", "hier:p[w=0]", "hier:p[oops=1]", "hier:p{q", "hier:p,p"] {
            let err = bad.parse::<PolicySpec>().unwrap_err();
            assert!(
                matches!(err, PolicyParseError::InvalidParams { policy: "hier", .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn params_on_parameterless_policy_rejected() {
        let err = "fifo:x=1".parse::<PolicySpec>().unwrap_err();
        assert!(matches!(err, PolicyParseError::InvalidParams { policy: "fifo", .. }), "{err}");
        let err = "maxedf-p:1".parse::<PolicySpec>().unwrap_err();
        assert!(err.to_string().contains("maxedf-p"), "{err}");
    }

    #[test]
    fn parse_policy_resolves_all_shim_era_names() {
        // the names the removed policy_by_name shim used to accept
        for name in ["fifo", "maxedf", "minedf", "maxedf-p", "minedf-p", "fair"] {
            assert!(parse_policy(name).is_ok(), "{name}");
        }
        assert!(parse_policy("nope").is_err());
    }
}
