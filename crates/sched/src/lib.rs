//! # simmr-sched
//!
//! Pluggable scheduling policies for the SimMR engine (§III-C and §V of the
//! paper):
//!
//! * [`FifoPolicy`] — Hadoop's default FIFO: earliest-arrived job first;
//! * [`MaxEdfPolicy`] — Earliest-Deadline-First ordering with FIFO-style
//!   greedy resource allocation (grab every free slot);
//! * [`MinEdfPolicy`] — EDF ordering with *minimal* resource allocation:
//!   on arrival, the ARIA bounds model computes the smallest `(S_M, S_R)`
//!   that meets the job's deadline, and the policy never runs more tasks
//!   than that, leaving spare slots to later arrivals;
//! * [`FairSharePolicy`] — an HFS-flavoured extension: the job with the
//!   smallest running-task share goes first;
//! * [`CapacityPolicy`] — a Capacity-Scheduler-flavoured extension:
//!   weighted queues with FIFO inside each queue;
//! * [`HierPolicy`] — hierarchical pool *trees* (Hadoop Fair/Capacity
//!   style, the paper's refs. 2–3): nested pools with weights, min/max
//!   shares per slot kind and min-share preemption timeouts, declared via
//!   [`pool::PoolSpec`].
//!
//! All policies implement [`simmr_core::SchedulerPolicy`] and are
//! deterministic: ties break on `(arrival, job id)`.
//!
//! The EDF policies schedule from an incremental lazy-deletion deadline
//! index ([`edf_index::DeadlineIndex`]) maintained from the engine's
//! queue-mutation hooks — amortized O(log n) per decision instead of a
//! full queue scan; the hierarchical policy keeps incremental share
//! aggregates the same way. Both retain their full-scan reference modes
//! for differential testing.
//!
//! ## Policy specs
//!
//! CLIs and experiment harnesses name policies with a **spec string**,
//! parsed by [`PolicySpec`] (or the [`parse_policy`] shortcut):
//!
//! ```text
//! fifo | maxedf | minedf | maxedf-p | minedf-p | fair
//! capacity                       # two_tier() default queues
//! capacity:prod=3,adhoc=1        # weighted queues (normalized to name order)
//! hier                           # two_tier() as a one-level tree
//! hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc[w=1]
//! ```
//!
//! Specs round-trip **canonically**: parsing normalizes parameter
//! ordering (`capacity:adhoc=1,prod=3` ≡ `capacity:prod=3,adhoc=1` —
//! queues are sorted by name; routing is longest-prefix, so the listed
//! order carries no semantics), and [`PolicySpec`] implements
//! [`Display`](fmt::Display) emitting the canonical string, so
//! `spec.to_string().parse()` is the identity. `hier` pool order *is*
//! routing order (first matching leaf wins) and is preserved verbatim.
//! The canonical string is also the serde representation
//! ([`serde::Serialize`]/[`serde::Deserialize`] as a JSON string), which
//! makes policy specs stable cache-key components that can travel in
//! JSON requests.
//!
//! The `hier` grammar (weights, per-kind min/max shares, preemption
//! timeouts in seconds, nested `{}` children) is documented in
//! [`pool`]; larger trees can be loaded from JSON with
//! [`pool::pools_from_json`] (the CLI's `--pools FILE`).
//!
//! Parsing returns a [`PolicyParseError`] that names the valid policies.
//! (The old `Option`-returning `policy_by_name` shim, deprecated since
//! the spec grammar landed, is gone — call [`parse_policy`] instead.)

pub mod capacity;
pub mod edf;
pub mod edf_index;
pub mod fair;
pub mod fifo;
pub mod hier;
pub mod pool;
mod snap;

pub use capacity::{CapacityPolicy, QueueConfig};
pub use edf::{MaxEdfPolicy, MinEdfPolicy};
pub use edf_index::{DeadlineIndex, EdfHeap, EdfKey};
pub use fair::FairSharePolicy;
pub use fifo::FifoPolicy;
pub use hier::HierPolicy;
pub use pool::{parse_pool_spec, pools_from_json, render_pool_specs, PoolSpec};

use simmr_core::SchedulerPolicy;
use std::fmt;
use std::str::FromStr;

/// The valid policy names, in the order error messages list them.
pub const POLICY_NAMES: &[&str] =
    &["fifo", "maxedf", "minedf", "maxedf-p", "minedf-p", "fair", "capacity", "hier"];

/// A parsed policy spec: which built-in policy to run, with parameters.
///
/// Parse one with [`str::parse`] / [`FromStr`] and instantiate it with
/// [`PolicySpec::build`]; [`parse_policy`] does both in one call. The
/// grammar is `name` or `name:params`, where only `capacity` currently
/// takes params (an ordered `queue=weight` list).
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Hadoop's default FIFO.
    Fifo,
    /// EDF with greedy allocation; `preemptive` arms map-slot preemption.
    MaxEdf {
        /// Kill latest-deadline maps for a more urgent waiting job.
        preemptive: bool,
    },
    /// EDF with ARIA minimal allocation; `preemptive` as above.
    MinEdf {
        /// Kill latest-deadline maps for a more urgent waiting job.
        preemptive: bool,
    },
    /// Fair share: smallest running share first.
    Fair,
    /// Weighted capacity queues, FIFO inside each queue, in listed order.
    /// Empty means [`CapacityPolicy::two_tier`].
    Capacity {
        /// Ordered `(queue name, weight)` pairs.
        queues: Vec<(String, f64)>,
    },
    /// Hierarchical pool tree with min/max shares and min-share
    /// preemption. Empty means [`HierPolicy::two_tier`].
    Hier {
        /// Top-level pools, in routing order.
        pools: Vec<PoolSpec>,
    },
}

/// Why a policy spec string failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyParseError {
    /// The name before the optional `:` is not a known policy.
    UnknownPolicy {
        /// The offending name, as given.
        given: String,
    },
    /// The part after `:` is invalid for the named policy.
    InvalidParams {
        /// The policy the params were for.
        policy: &'static str,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyParseError::UnknownPolicy { given } => {
                write!(
                    f,
                    "unknown policy {given:?}; valid policies: {}; the parameterized families \
                     also take specs, e.g. \"capacity:prod=3,adhoc=1\" or \
                     \"hier:prod[w=3,min=4,timeout=30]{{etl,serving}},adhoc\"",
                    POLICY_NAMES.join(", ")
                )
            }
            PolicyParseError::InvalidParams { policy, reason } => {
                write!(f, "invalid parameters for policy {policy:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for PolicyParseError {}

impl FromStr for PolicySpec {
    type Err = PolicyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, params) = match s.split_once(':') {
            Some((name, params)) => (name, Some(params)),
            None => (s, None),
        };
        let spec = match name {
            "fifo" => PolicySpec::Fifo,
            "maxedf" => PolicySpec::MaxEdf { preemptive: false },
            "minedf" => PolicySpec::MinEdf { preemptive: false },
            "maxedf-p" => PolicySpec::MaxEdf { preemptive: true },
            "minedf-p" => PolicySpec::MinEdf { preemptive: true },
            "fair" => PolicySpec::Fair,
            "capacity" => {
                let queues = match params {
                    None => Vec::new(),
                    Some(p) => {
                        let mut queues = parse_capacity_queues(p)?;
                        // canonical ordering: queue order carries no
                        // semantics (routing is longest-prefix), so two
                        // spellings of the same queue set parse equal
                        queues.sort_by(|a, b| a.0.cmp(&b.0));
                        queues
                    }
                };
                return Ok(PolicySpec::Capacity { queues });
            }
            "hier" => {
                let pools = match params {
                    None => Vec::new(),
                    Some(p) => parse_pool_spec(p).map_err(|reason| {
                        PolicyParseError::InvalidParams { policy: "hier", reason }
                    })?,
                };
                return Ok(PolicySpec::Hier { pools });
            }
            _ => return Err(PolicyParseError::UnknownPolicy { given: name.to_string() }),
        };
        if let Some(p) = params {
            return Err(PolicyParseError::InvalidParams {
                policy: match spec {
                    PolicySpec::Fifo => "fifo",
                    PolicySpec::MaxEdf { preemptive: false } => "maxedf",
                    PolicySpec::MaxEdf { preemptive: true } => "maxedf-p",
                    PolicySpec::MinEdf { preemptive: false } => "minedf",
                    PolicySpec::MinEdf { preemptive: true } => "minedf-p",
                    _ => unreachable!(),
                },
                reason: format!("takes no parameters, got {p:?}"),
            });
        }
        Ok(spec)
    }
}

impl fmt::Display for PolicySpec {
    /// Renders the canonical spec string: `spec.to_string().parse()` is
    /// the identity, and any two specs that parse equal render equal.
    /// Capacity queues appear in name order (the parse-time
    /// normalization); hier pools in routing order via
    /// [`pool::render_pool_specs`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpec::Fifo => f.write_str("fifo"),
            PolicySpec::MaxEdf { preemptive: false } => f.write_str("maxedf"),
            PolicySpec::MaxEdf { preemptive: true } => f.write_str("maxedf-p"),
            PolicySpec::MinEdf { preemptive: false } => f.write_str("minedf"),
            PolicySpec::MinEdf { preemptive: true } => f.write_str("minedf-p"),
            PolicySpec::Fair => f.write_str("fair"),
            PolicySpec::Capacity { queues } if queues.is_empty() => f.write_str("capacity"),
            PolicySpec::Capacity { queues } => {
                f.write_str("capacity:")?;
                for (i, (name, weight)) in queues.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{name}={weight}")?;
                }
                Ok(())
            }
            PolicySpec::Hier { pools } if pools.is_empty() => f.write_str("hier"),
            PolicySpec::Hier { pools } => {
                write!(f, "hier:{}", pool::render_pool_specs(pools))
            }
        }
    }
}

impl serde::Serialize for PolicySpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for PolicySpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => {
                s.parse().map_err(|e: PolicyParseError| serde::DeError::new(e.to_string()))
            }
            other => {
                Err(serde::DeError::new(format!("expected policy spec string, got {other:?}")))
            }
        }
    }
}

/// `prod=3,adhoc=1` → ordered `(name, weight)` pairs.
fn parse_capacity_queues(params: &str) -> Result<Vec<(String, f64)>, PolicyParseError> {
    let invalid = |reason: String| PolicyParseError::InvalidParams { policy: "capacity", reason };
    if params.is_empty() {
        return Err(invalid("empty parameter list (drop the ':' for default queues)".into()));
    }
    let mut queues = Vec::new();
    for part in params.split(',') {
        let Some((name, weight)) = part.split_once('=') else {
            return Err(invalid(format!("expected queue=weight, got {part:?}")));
        };
        let weight: f64 = weight.parse().map_err(|_| {
            invalid(format!("weight of queue {name:?} is not a number: {weight:?}"))
        })?;
        if !weight.is_finite() || weight <= 0.0 {
            return Err(invalid(format!("weight of queue {name:?} must be finite and > 0")));
        }
        if queues.iter().any(|(n, _)| n == name) {
            return Err(invalid(format!("queue {name:?} listed twice")));
        }
        queues.push((name.to_string(), weight));
    }
    Ok(queues)
}

impl PolicySpec {
    /// Instantiates the policy this spec describes.
    pub fn build(&self) -> Box<dyn SchedulerPolicy> {
        match self {
            PolicySpec::Fifo => Box::new(FifoPolicy::new()),
            PolicySpec::MaxEdf { preemptive: false } => Box::new(MaxEdfPolicy::new()),
            PolicySpec::MaxEdf { preemptive: true } => Box::new(MaxEdfPolicy::preemptive()),
            PolicySpec::MinEdf { preemptive: false } => Box::new(MinEdfPolicy::new()),
            PolicySpec::MinEdf { preemptive: true } => Box::new(MinEdfPolicy::preemptive()),
            PolicySpec::Fair => Box::new(FairSharePolicy::new()),
            PolicySpec::Capacity { queues } if queues.is_empty() => {
                Box::new(CapacityPolicy::two_tier())
            }
            PolicySpec::Capacity { queues } => Box::new(CapacityPolicy::new(
                queues
                    .iter()
                    .map(|(name, weight)| QueueConfig { name: name.clone(), weight: *weight })
                    .collect(),
            )),
            PolicySpec::Hier { pools } if pools.is_empty() => Box::new(HierPolicy::two_tier()),
            PolicySpec::Hier { pools } => Box::new(HierPolicy::new(pools.clone())),
        }
    }
}

/// Parses a policy spec string and builds the policy in one step.
///
/// ```
/// let p = simmr_sched::parse_policy("capacity:prod=3,adhoc=1").unwrap();
/// assert_eq!(p.name(), "capacity");
/// let err = simmr_sched::parse_policy("nope").err().unwrap();
/// assert!(err.to_string().contains("valid policies"));
/// ```
pub fn parse_policy(spec: &str) -> Result<Box<dyn SchedulerPolicy>, PolicyParseError> {
    Ok(spec.parse::<PolicySpec>()?.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_build_all_plain_names() {
        for name in ["fifo", "maxedf", "minedf", "fair", "capacity", "hier"] {
            let p = parse_policy(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(parse_policy("maxedf-p").is_ok());
        assert!(parse_policy("minedf-p").is_ok());
    }

    #[test]
    fn unknown_policy_lists_valid_names() {
        let err = parse_policy("nope").err().unwrap();
        let msg = err.to_string();
        for name in POLICY_NAMES {
            assert!(msg.contains(name), "{msg}");
        }
        // one worked example per parameterized family, and both examples
        // must actually parse
        for example in
            ["capacity:prod=3,adhoc=1", "hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc"]
        {
            assert!(msg.contains(example), "{msg}");
            assert!(parse_policy(example).is_ok(), "error message suggests a broken spec");
        }
    }

    #[test]
    fn capacity_params_normalize_to_name_order() {
        let spec: PolicySpec = "capacity:prod=3,adhoc=1.5".parse().unwrap();
        assert_eq!(
            spec,
            PolicySpec::Capacity { queues: vec![("adhoc".into(), 1.5), ("prod".into(), 3.0)] }
        );
        assert_eq!(spec.build().name(), "capacity");
        // the two orderings of the issue's example parse equal and render
        // one canonical string
        let a: PolicySpec = "capacity:adhoc=1,prod=3".parse().unwrap();
        let b: PolicySpec = "capacity:prod=3,adhoc=1".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "capacity:adhoc=1,prod=3");
        assert_eq!(b.to_string(), "capacity:adhoc=1,prod=3");
        // bare name: the two_tier default
        assert_eq!(
            "capacity".parse::<PolicySpec>().unwrap(),
            PolicySpec::Capacity { queues: vec![] }
        );
    }

    #[test]
    fn display_round_trips_canonically() {
        for spec in [
            "fifo",
            "maxedf",
            "minedf",
            "maxedf-p",
            "minedf-p",
            "fair",
            "capacity",
            "capacity:adhoc=1.5,prod=3",
            "hier",
            "hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc",
            "hier:a[w=2,min=1,max=8,rmin=2,rmax=4,timeout=1.5]{b,c[w=0.5]},d",
        ] {
            let parsed: PolicySpec = spec.parse().unwrap();
            assert_eq!(parsed.to_string(), spec, "canonical form should be stable");
            let reparsed: PolicySpec = parsed.to_string().parse().unwrap();
            assert_eq!(reparsed, parsed, "{spec}: display must invert parse");
        }
        // non-canonical inputs render the canonical spelling
        let p: PolicySpec = "hier:adhoc[w=1],prod[w=1]".parse().unwrap();
        assert_eq!(p.to_string(), "hier:adhoc,prod");
    }

    #[test]
    fn policy_spec_serde_is_the_canonical_string() {
        let spec: PolicySpec = "capacity:prod=3,adhoc=1".parse().unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(json, "\"capacity:adhoc=1,prod=3\"");
        let back: PolicySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert!(serde_json::from_str::<PolicySpec>("\"nope\"").is_err());
        assert!(serde_json::from_str::<PolicySpec>("7").is_err());
    }

    #[test]
    fn capacity_param_errors() {
        for bad in [
            "capacity:",
            "capacity:prod",
            "capacity:prod=abc",
            "capacity:prod=0",
            "capacity:prod=-1",
            "capacity:prod=inf",
            "capacity:prod=1,prod=2",
        ] {
            let err = bad.parse::<PolicySpec>().unwrap_err();
            assert!(
                matches!(err, PolicyParseError::InvalidParams { policy: "capacity", .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn hier_params_parse_issue_example() {
        let spec: PolicySpec =
            "hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc[w=1]".parse().unwrap();
        let PolicySpec::Hier { pools } = &spec else { panic!("not hier: {spec:?}") };
        assert_eq!(pools.len(), 2);
        assert_eq!(pools[0].min_maps, Some(4));
        assert_eq!(pools[0].preemption_timeout, Some(30_000));
        assert_eq!(spec.build().name(), "hier");
        // bare name: the two_tier default tree
        assert_eq!("hier".parse::<PolicySpec>().unwrap(), PolicySpec::Hier { pools: vec![] });
    }

    #[test]
    fn hier_param_errors() {
        for bad in ["hier:", "hier:p[w=0]", "hier:p[oops=1]", "hier:p{q", "hier:p,p"] {
            let err = bad.parse::<PolicySpec>().unwrap_err();
            assert!(
                matches!(err, PolicyParseError::InvalidParams { policy: "hier", .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn params_on_parameterless_policy_rejected() {
        let err = "fifo:x=1".parse::<PolicySpec>().unwrap_err();
        assert!(matches!(err, PolicyParseError::InvalidParams { policy: "fifo", .. }), "{err}");
        let err = "maxedf-p:1".parse::<PolicySpec>().unwrap_err();
        assert!(err.to_string().contains("maxedf-p"), "{err}");
    }

    #[test]
    fn parse_policy_resolves_all_shim_era_names() {
        // the names the removed policy_by_name shim used to accept
        for name in ["fifo", "maxedf", "minedf", "maxedf-p", "minedf-p", "fair"] {
            assert!(parse_policy(name).is_ok(), "{name}");
        }
        assert!(parse_policy("nope").is_err());
    }
}
