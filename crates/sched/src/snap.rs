//! Little-endian byte helpers shared by the policy `snapshot`/`restore`
//! implementations (see [`simmr_core::SchedulerPolicy::snapshot`]).
//!
//! Policy blobs are tiny and embedded inside an `EngineCheckpoint`, which
//! already carries the magic/version/CRC framing — these helpers only
//! provide bounds-checked field access with `String` errors, matching the
//! `restore` hook's error type.

/// Appends a `u32` in little-endian order.
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an optional `u64` as a tag byte plus the value.
pub(crate) fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

/// Bounds-checked reader over a policy blob.
pub(crate) struct Reader<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    pub(crate) fn new(buf: &'b [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(format!(
                "policy snapshot blob is truncated ({} bytes, wanted {} more at offset {})",
                self.buf.len(),
                n,
                self.pos
            ));
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(format!("policy snapshot blob has an invalid option tag {t}")),
        }
    }

    /// Asserts the blob was consumed exactly.
    pub(crate) fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("policy snapshot blob has {} trailing bytes", self.buf.len() - self.pos))
        }
    }
}
