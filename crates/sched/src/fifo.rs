//! The default FIFO policy.

use simmr_core::{JobQueue, SchedulerPolicy};
use simmr_types::JobId;

/// Hadoop's default FIFO scheduler: *"finds the earliest arriving job that
/// needs a map (or reduce) task to be executed next"* (§III-C).
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoPolicy;

impl FifoPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FifoPolicy
    }
}

impl SchedulerPolicy for FifoPolicy {
    fn name(&self) -> &str {
        "fifo"
    }

    // `JobQueue::entries` guarantees (arrival, id) order, so the first
    // schedulable entry IS the FIFO choice; the queue's cursor-backed
    // accessors find it in amortized O(1) instead of re-scanning the
    // backlog on every free slot, which is what keeps per-event cost flat
    // on saturated 10k-job traces.
    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        jobq.first_schedulable_map().map(|e| e.id)
    }

    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        jobq.first_schedulable_reduce().map(|e| e.id)
    }

    /// FIFO is completely stateless — every choice is a pure function of
    /// the live queue — so its checkpoint blob is empty.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    fn restore(&mut self, blob: &[u8]) -> Result<(), String> {
        if blob.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "fifo keeps no snapshot state but the checkpoint carries {} bytes",
                blob.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_core::{EngineConfig, SimulatorEngine};
    use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

    fn job(maps: usize, map_ms: u64, arrival_ms: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new("j", vec![map_ms; maps], vec![], vec![], vec![]).unwrap(),
            SimTime::from_millis(arrival_ms),
        )
    }

    #[test]
    fn earliest_arrival_runs_first() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(job(2, 100, 50)); // job 0 arrives later
        trace.push(job(2, 100, 0)); // job 1 arrives first
        let report =
            SimulatorEngine::new(EngineConfig::new(2, 2), &trace, Box::new(FifoPolicy::new()))
                .run();
        // job 1 occupies both slots at t=0 and finishes at 100;
        // job 0 runs 100..200
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(100));
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(200));
    }

    #[test]
    fn ties_break_by_job_id() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(job(1, 100, 0));
        trace.push(job(1, 100, 0));
        let report =
            SimulatorEngine::new(EngineConfig::new(1, 1), &trace, Box::new(FifoPolicy::new()))
                .run();
        assert!(report.jobs[0].completion < report.jobs[1].completion);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut p = FifoPolicy::new();
        let q = JobQueue::new(vec![], SimTime::ZERO);
        assert_eq!(p.choose_next_map_task(&q), None);
        assert_eq!(p.choose_next_reduce_task(&q), None);
    }
}
