//! The deadline-driven schedulers: MaxEDF and MinEDF (§V-A).
//!
//! Both order jobs by Earliest Deadline First. They differ in *how many*
//! slots they hand a job:
//!
//! * **MaxEDF** allocates the maximum available slots (FIFO-style greed,
//!   EDF order). Jobs often finish well before their deadline, but an
//!   urgent later arrival may find all slots taken — and tasks are never
//!   preempted.
//! * **MinEDF** computes, at arrival, the **minimal** `(S_M, S_R)` that the
//!   ARIA bounds model predicts will meet the job's deadline, and caps the
//!   job's concurrently running tasks at that amount, leaving spare slots
//!   for later arrivals.
//!
//! # Incremental deadline index
//!
//! Every pick and preemption check used to scan the whole queue with
//! `min_by_key(edf_key)` — the last O(n)-per-decision policy family.
//! Both policies now schedule from a [`DeadlineIndex`]: keyed
//! lazy-deletion heaps (see [`crate::edf_index`]) maintained O(log n)
//! per queue mutation from the `on_job_queued` / `on_entry_mutated` /
//! `on_job_dequeued` hooks. MinEDF layers its under-`wanted`-cap filter
//! into the predicates it indexes and validates with, so its views hold
//! exactly the jobs it may launch. The pre-index full-scan paths are
//! retained behind [`MaxEdfPolicy::with_full_scan`] /
//! [`MinEdfPolicy::with_full_scan`] as a differential reference (the
//! index is still maintained there, so `verify_invariants` cross-checks
//! it in both modes), and the
//! `edf_incremental_matches_full_scan_reference` proptest in `tests/`
//! pins both modes to byte-identical schedules under faults,
//! speculation and preemption.

use crate::edf_index::{DeadlineIndex, EdfKey};
use simmr_core::{JobEntry, JobQueue, SchedulerPolicy};
use simmr_model::{min_slots_for_deadline, JobProfileSummary, SlotAllocation};
use simmr_types::{DurationMs, JobId, JobTemplate};
use std::collections::HashMap;

/// Shared EDF preemption rule, full-scan reference path: kill one map of
/// the latest-deadline running job, provided it sorts strictly after the
/// given urgent (waiting) job. The urgent choice is policy-specific —
/// MaxEDF passes its global EDF minimum, MinEDF its under-cap minimum —
/// so the freed slot always lands on the job named here.
fn full_scan_victim(jobq: &JobQueue, urgent: EdfKey) -> Option<JobId> {
    jobq.entries()
        .iter()
        .filter(|e| e.running_maps > 0 && e.edf_key() > urgent)
        .max_by_key(|e| e.edf_key())
        .map(|e| e.id)
}

/// EDF ordering with maximum resource allocation.
#[derive(Debug, Default, Clone)]
pub struct MaxEdfPolicy {
    preemptive: bool,
    /// Use the pre-index full-scan selection paths (differential
    /// reference mode); the index is still maintained.
    full_scan: bool,
    index: DeadlineIndex,
}

impl MaxEdfPolicy {
    /// Creates the (non-preemptive) policy, as evaluated in the paper.
    pub fn new() -> Self {
        MaxEdfPolicy::default()
    }

    /// Creates a **preemptive** variant: when a job with an earlier
    /// deadline has pending maps and no slot is free, the running job with
    /// the latest deadline loses its most recent map task (killed and
    /// requeued). The paper attributes the "bump" near 100 s inter-arrival
    /// in Figure 7(a) to the lack of exactly this; the
    /// `ablation_preemption` binary quantifies it.
    pub fn preemptive() -> Self {
        MaxEdfPolicy { preemptive: true, ..MaxEdfPolicy::default() }
    }

    /// Switches to the retained full-scan reference mode: every pick and
    /// preemption check scans `jobq.entries()` exactly as before the
    /// deadline index. Schedules are identical by construction — the
    /// differential proptest in `tests/` holds both modes to that.
    pub fn with_full_scan(mut self) -> Self {
        self.full_scan = true;
        self
    }
}

impl SchedulerPolicy for MaxEdfPolicy {
    fn name(&self) -> &str {
        "maxedf"
    }

    fn on_job_queued(&mut self, entry: &JobEntry) {
        self.index.apply(
            entry.edf_key(),
            (false, entry.has_schedulable_map()),
            (false, entry.has_schedulable_reduce()),
            (false, entry.running_maps > 0),
        );
    }

    fn on_entry_mutated(&mut self, before: &JobEntry, after: &JobEntry) {
        self.index.apply(
            after.edf_key(),
            (before.has_schedulable_map(), after.has_schedulable_map()),
            (before.has_schedulable_reduce(), after.has_schedulable_reduce()),
            (before.running_maps > 0, after.running_maps > 0),
        );
    }

    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        if self.full_scan {
            return jobq
                .entries()
                .iter()
                .filter(|e| e.has_schedulable_map())
                .min_by_key(|e| e.edf_key())
                .map(|e| e.id);
        }
        self.index
            .maps
            .peek_valid(|id| jobq.get(id).is_some_and(|e| e.has_schedulable_map()))
            .map(|key| key.2)
    }

    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        if self.full_scan {
            return jobq
                .entries()
                .iter()
                .filter(|e| e.has_schedulable_reduce())
                .min_by_key(|e| e.edf_key())
                .map(|e| e.id);
        }
        self.index
            .reduces
            .peek_valid(|id| jobq.get(id).is_some_and(|e| e.has_schedulable_reduce()))
            .map(|key| key.2)
    }

    fn map_preemptions(&mut self, jobq: &JobQueue, victims: &mut Vec<JobId>) {
        if !self.preemptive {
            return;
        }
        // the urgent job is exactly the one choose_next_map_task would
        // launch once the kill frees a slot
        let Some(urgent) = self
            .choose_next_map_task(jobq)
            .map(|id| jobq.get(id).expect("urgent job is in the queue").edf_key())
        else {
            return;
        };
        let victim = if self.full_scan {
            full_scan_victim(jobq, urgent)
        } else {
            self.index
                .preemption_victim(urgent, |id| jobq.get(id).is_some_and(|e| e.running_maps > 0))
        };
        if let Some(id) = victim {
            victims.push(id);
        }
    }

    fn verify_invariants(&self, jobq: &JobQueue) {
        self.index.verify_against(
            jobq.entries().iter().map(|e| (e, e.has_schedulable_map(), e.has_schedulable_reduce())),
            "maxedf",
        );
    }

    /// The deadline index is rebuilt by the hook replay (a rebuilt index
    /// has no lazy-deletion debt, which is behaviorally invisible), so
    /// only the construction flags need cross-checking.
    fn snapshot(&self) -> Vec<u8> {
        vec![self.preemptive as u8, self.full_scan as u8]
    }

    fn restore(&mut self, blob: &[u8]) -> Result<(), String> {
        let mut r = crate::snap::Reader::new(blob);
        let (preemptive, full_scan) = (r.u8()? != 0, r.u8()? != 0);
        r.done()?;
        if preemptive != self.preemptive || full_scan != self.full_scan {
            return Err(format!(
                "maxedf variant mismatch: checkpoint taken with preemptive={preemptive}, \
                 full_scan={full_scan}; resuming policy has preemptive={}, full_scan={}",
                self.preemptive, self.full_scan
            ));
        }
        Ok(())
    }
}

/// EDF ordering with model-derived minimal resource allocation.
#[derive(Debug, Default)]
pub struct MinEdfPolicy {
    /// Per-job wanted slot counts, computed on arrival. Dense, indexed
    /// by job id — the hot paths (per-pick cap filters, per-mutation
    /// index edges) do O(1) slot reads instead of hashing.
    wanted: Vec<Option<SlotAllocation>>,
    /// Allocations supplied up front (e.g. from a shared ARIA profile
    /// database) that take precedence over the model computation.
    /// Consulted once per arrival, so a map is fine here.
    presets: HashMap<JobId, SlotAllocation>,
    preemptive: bool,
    /// Use the pre-index full-scan selection paths (differential
    /// reference mode); the index is still maintained.
    full_scan: bool,
    /// Deadline views over the *under-cap* schedulable predicates.
    index: DeadlineIndex,
}

impl MinEdfPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        MinEdfPolicy::default()
    }

    /// Creates the policy with preset per-job allocations. In the paper
    /// both the real cluster's MinEDF and the simulated one consult the
    /// same profile database; presets let a harness reproduce that setup
    /// (any job without a preset falls back to the bounds model).
    pub fn with_presets(presets: HashMap<JobId, SlotAllocation>) -> Self {
        MinEdfPolicy { presets, ..MinEdfPolicy::default() }
    }

    /// Creates a preemptive variant (see [`MaxEdfPolicy::preemptive`]).
    pub fn preemptive() -> Self {
        MinEdfPolicy { preemptive: true, ..MinEdfPolicy::default() }
    }

    /// Switches to the retained full-scan reference mode (see
    /// [`MaxEdfPolicy::with_full_scan`]).
    pub fn with_full_scan(mut self) -> Self {
        self.full_scan = true;
        self
    }

    /// The wanted allocation for a job (visible for tests/diagnostics).
    pub fn wanted(&self, id: JobId) -> Option<SlotAllocation> {
        self.wanted.get(id.index()).copied().flatten()
    }

    /// A map launch for this job stays within its wanted cap (jobs
    /// without a computed allocation are uncapped, like MaxEDF).
    fn under_map_cap(&self, e: &JobEntry) -> bool {
        e.has_schedulable_map() && self.wanted(e.id).is_none_or(|w| e.running_maps < w.maps)
    }

    /// A reduce launch for this job stays within its wanted cap.
    fn under_reduce_cap(&self, e: &JobEntry) -> bool {
        e.has_schedulable_reduce()
            && self.wanted(e.id).is_none_or(|w| e.running_reduces < w.reduces)
    }
}

impl SchedulerPolicy for MinEdfPolicy {
    fn name(&self) -> &str {
        "minedf"
    }

    fn on_job_arrival(
        &mut self,
        id: JobId,
        template: &JobTemplate,
        relative_deadline: Option<DurationMs>,
        cluster: simmr_types::ClusterSpec,
    ) {
        let (max_maps, max_reduces) = (cluster.map_slots, cluster.reduce_slots);
        let alloc = if let Some(&preset) = self.presets.get(&id) {
            preset
        } else {
            match relative_deadline {
                Some(deadline) => {
                    let profile = JobProfileSummary::from_template(template);
                    min_slots_for_deadline(&profile, deadline, max_maps, max_reduces)
                }
                // no deadline: behave like MaxEDF for this job
                None => SlotAllocation {
                    maps: max_maps.min(template.num_maps),
                    reduces: max_reduces.min(template.num_reduces),
                },
            }
        };
        if id.index() >= self.wanted.len() {
            self.wanted.resize(id.index() + 1, None);
        }
        self.wanted[id.index()] = Some(alloc);
    }

    fn on_job_departure(&mut self, id: JobId) {
        if let Some(slot) = self.wanted.get_mut(id.index()) {
            *slot = None;
        }
    }

    fn on_job_queued(&mut self, entry: &JobEntry) {
        // on_job_arrival has already run: the cap exists before the
        // entry's first predicate edge is recorded
        self.index.apply(
            entry.edf_key(),
            (false, self.under_map_cap(entry)),
            (false, self.under_reduce_cap(entry)),
            (false, entry.running_maps > 0),
        );
    }

    fn on_entry_mutated(&mut self, before: &JobEntry, after: &JobEntry) {
        self.index.apply(
            after.edf_key(),
            (self.under_map_cap(before), self.under_map_cap(after)),
            (self.under_reduce_cap(before), self.under_reduce_cap(after)),
            (before.running_maps > 0, after.running_maps > 0),
        );
    }

    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        if self.full_scan {
            return jobq
                .entries()
                .iter()
                .filter(|e| self.under_map_cap(e))
                .min_by_key(|e| e.edf_key())
                .map(|e| e.id);
        }
        // the closure re-checks the cap against the live entry, so a job
        // that filled its cap since being offered is evicted, not picked
        let wanted = &self.wanted;
        self.index
            .maps
            .peek_valid(|id| {
                jobq.get(id).is_some_and(|e| {
                    e.has_schedulable_map()
                        && wanted
                            .get(id.index())
                            .copied()
                            .flatten()
                            .is_none_or(|w| e.running_maps < w.maps)
                })
            })
            .map(|key| key.2)
    }

    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        if self.full_scan {
            return jobq
                .entries()
                .iter()
                .filter(|e| self.under_reduce_cap(e))
                .min_by_key(|e| e.edf_key())
                .map(|e| e.id);
        }
        let wanted = &self.wanted;
        self.index
            .reduces
            .peek_valid(|id| {
                jobq.get(id).is_some_and(|e| {
                    e.has_schedulable_reduce()
                        && wanted
                            .get(id.index())
                            .copied()
                            .flatten()
                            .is_none_or(|w| e.running_reduces < w.reduces)
                })
            })
            .map(|key| key.2)
    }

    fn map_preemptions(&mut self, jobq: &JobQueue, victims: &mut Vec<JobId>) {
        if !self.preemptive {
            return;
        }
        // The urgent job is the one choose_next_map_task would launch
        // once the kill frees a slot — the under-cap EDF minimum. Using
        // the *global* EDF minimum here (as an earlier version did)
        // could name an at-cap job as urgent and kill a victim with an
        // earlier deadline than the job the slot actually goes to; see
        // `minedf_preemption_gate_respects_wanted_caps`.
        let Some(urgent) = self
            .choose_next_map_task(jobq)
            .map(|id| jobq.get(id).expect("urgent job is in the queue").edf_key())
        else {
            return;
        };
        let victim = if self.full_scan {
            full_scan_victim(jobq, urgent)
        } else {
            self.index
                .preemption_victim(urgent, |id| jobq.get(id).is_some_and(|e| e.running_maps > 0))
        };
        if let Some(id) = victim {
            victims.push(id);
        }
    }

    fn verify_invariants(&self, jobq: &JobQueue) {
        for e in jobq.entries() {
            if self.wanted(e.id).is_none() {
                panic!(
                    "engine invariant violated [minedf-wanted]: active job {} has no wanted \
                     allocation",
                    e.id
                );
            }
        }
        self.index.verify_against(
            jobq.entries().iter().map(|e| (e, self.under_map_cap(e), self.under_reduce_cap(e))),
            "minedf",
        );
    }

    /// Variant flags plus the live wanted allocations, sorted by job id.
    /// The allocations are derivable (the arrival replay recomputes them
    /// from the bounds model), so the blob is a cross-check: a resume
    /// with different presets routes every job through the same replay
    /// but lands on different caps, and this is what catches it.
    fn snapshot(&self) -> Vec<u8> {
        let mut out = vec![self.preemptive as u8, self.full_scan as u8];
        let live: Vec<(u32, SlotAllocation)> =
            self.wanted.iter().enumerate().filter_map(|(i, w)| w.map(|w| (i as u32, w))).collect();
        crate::snap::put_u32(&mut out, live.len() as u32);
        for (job, w) in live {
            crate::snap::put_u32(&mut out, job);
            crate::snap::put_u32(&mut out, w.maps as u32);
            crate::snap::put_u32(&mut out, w.reduces as u32);
        }
        out
    }

    fn restore(&mut self, blob: &[u8]) -> Result<(), String> {
        let mut r = crate::snap::Reader::new(blob);
        let (preemptive, full_scan) = (r.u8()? != 0, r.u8()? != 0);
        if preemptive != self.preemptive || full_scan != self.full_scan {
            return Err(format!(
                "minedf variant mismatch: checkpoint taken with preemptive={preemptive}, \
                 full_scan={full_scan}; resuming policy has preemptive={}, full_scan={}",
                self.preemptive, self.full_scan
            ));
        }
        let n = r.u32()? as usize;
        let mut captured = Vec::with_capacity(n);
        for _ in 0..n {
            let job = r.u32()?;
            let maps = r.u32()? as usize;
            let reduces = r.u32()? as usize;
            captured.push((job, SlotAllocation { maps, reduces }));
        }
        r.done()?;
        let rebuilt: Vec<(u32, SlotAllocation)> =
            self.wanted.iter().enumerate().filter_map(|(i, w)| w.map(|w| (i as u32, w))).collect();
        if rebuilt != captured {
            return Err(format!(
                "minedf wanted allocations diverged from the checkpoint (rebuilt {}, captured \
                 {n}) — was the policy built with the same presets?",
                rebuilt.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_core::{EngineConfig, SimulatorEngine};
    use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

    fn map_job(maps: usize, map_ms: u64, arrival_ms: u64, deadline_ms: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new("j", vec![map_ms; maps], vec![], vec![], vec![]).unwrap(),
            SimTime::from_millis(arrival_ms),
        )
        .with_deadline(SimTime::from_millis(deadline_ms))
    }

    #[test]
    fn maxedf_prefers_urgent_job() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(2, 100, 0, 10_000)); // relaxed deadline
        trace.push(map_job(2, 100, 0, 500)); // urgent
        let report =
            SimulatorEngine::new(EngineConfig::new(2, 2), &trace, Box::new(MaxEdfPolicy::new()))
                .run();
        // urgent job 1 grabs both slots first
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(100));
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(200));
    }

    #[test]
    fn maxedf_no_deadline_sorts_last() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(JobSpec::new(
            JobTemplate::new("nodl", vec![100; 2], vec![], vec![], vec![]).unwrap(),
            SimTime::ZERO,
        ));
        trace.push(map_job(2, 100, 0, 50_000));
        let report =
            SimulatorEngine::new(EngineConfig::new(2, 2), &trace, Box::new(MaxEdfPolicy::new()))
                .run();
        assert!(report.jobs[1].completion < report.jobs[0].completion);
    }

    #[test]
    fn minedf_computes_wanted_on_arrival() {
        let mut p = MinEdfPolicy::new();
        let t = JobTemplate::new("j", vec![1000; 16], vec![10], vec![10; 8], vec![10; 8]).unwrap();
        // very relaxed deadline: minimal slots
        p.on_job_arrival(JobId(0), &t, Some(1_000_000), simmr_types::ClusterSpec::new(64, 64));
        let w = p.wanted(JobId(0)).unwrap();
        assert!(w.maps <= 2, "{w:?}");
        // tight deadline: lots of slots
        p.on_job_arrival(JobId(1), &t, Some(2_000), simmr_types::ClusterSpec::new(64, 64));
        let w_tight = p.wanted(JobId(1)).unwrap();
        assert!(w_tight.maps > w.maps);
        // no deadline: max
        p.on_job_arrival(JobId(2), &t, None, simmr_types::ClusterSpec::new(64, 64));
        assert_eq!(p.wanted(JobId(2)).unwrap().maps, 16);
        p.on_job_departure(JobId(0));
        assert!(p.wanted(JobId(0)).is_none());
    }

    #[test]
    fn minedf_leaves_spare_slots_for_late_urgent_job() {
        // Job 0: 8 maps x 1s, relaxed deadline (8s for 1 slot's worth of
        // work on an 8-slot cluster => MinEDF gives it ~2 slots).
        // Job 1 arrives at t=100ms: 2 maps x 1s, tight deadline.
        // Under MinEDF job 1 finds free slots instantly; under MaxEDF it
        // waits for job 0's first wave to drain (non-preemption).
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(8, 1000, 0, 9_000));
        trace.push(map_job(2, 1000, 100, 1_200));

        let min_report =
            SimulatorEngine::new(EngineConfig::new(8, 8), &trace, Box::new(MinEdfPolicy::new()))
                .run();
        let max_report =
            SimulatorEngine::new(EngineConfig::new(8, 8), &trace, Box::new(MaxEdfPolicy::new()))
                .run();

        // MaxEDF: job 1 waits until t=1000, finishes 2000 (missed).
        assert_eq!(max_report.jobs[1].completion, SimTime::from_millis(2000));
        // MinEDF: job 1 starts at arrival, finishes 1100 (met).
        assert_eq!(min_report.jobs[1].completion, SimTime::from_millis(1100));
        assert!(min_report.jobs[1].met_deadline());
        assert!(!max_report.jobs[1].met_deadline());
        // and job 0 still meets its own deadline under MinEDF
        assert!(min_report.jobs[0].met_deadline());
        assert!(
            min_report.total_relative_deadline_exceeded()
                < max_report.total_relative_deadline_exceeded()
        );
    }

    #[test]
    fn minedf_caps_running_tasks() {
        // one job, wanted == 2 map slots on an 8-slot cluster: completion
        // should reflect 2-at-a-time waves, not 8.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(8, 1000, 0, 9_000)); // deadline allows ~1 slot
        let report =
            SimulatorEngine::new(EngineConfig::new(8, 8), &trace, Box::new(MinEdfPolicy::new()))
                .run();
        // with k slots the job takes ceil(8/k) seconds; wanted k is small,
        // so completion must be well beyond the 1s that MaxEDF would give
        assert!(
            report.jobs[0].completion >= SimTime::from_millis(4000),
            "completion {} suggests the cap was ignored",
            report.jobs[0].completion
        );
        assert!(report.jobs[0].met_deadline());
    }

    #[test]
    fn preemptive_maxedf_kills_for_urgent_arrival() {
        // Job 0 (relaxed deadline) occupies both slots with long maps; job 1
        // (urgent) arrives mid-flight. Non-preemptive MaxEDF makes it wait a
        // full map duration; the preemptive variant kills one of job 0's
        // maps immediately.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(4, 10_000, 0, 60_000));
        trace.push(map_job(1, 1_000, 2_000, 4_000));

        let plain =
            SimulatorEngine::new(EngineConfig::new(2, 2), &trace, Box::new(MaxEdfPolicy::new()))
                .run();
        let preempt = SimulatorEngine::new(
            EngineConfig::new(2, 2),
            &trace,
            Box::new(MaxEdfPolicy::preemptive()),
        )
        .run();
        // plain: job 1 waits until t=10s, done 11s (missed)
        assert_eq!(plain.jobs[1].completion, SimTime::from_millis(11_000));
        // preemptive: job 1 starts at arrival, done 3s (met)
        assert_eq!(preempt.jobs[1].completion, SimTime::from_millis(3_000));
        assert!(preempt.jobs[1].met_deadline());
        // the preempted map restarts from scratch, so job 0 finishes later
        assert!(preempt.jobs[0].completion > plain.jobs[0].completion);
        // ...but every task still completes exactly once
        assert_eq!(preempt.jobs[0].num_maps, 4);
    }

    #[test]
    fn preemption_is_deterministic_and_conserves_tasks() {
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..12u64 {
            trace.push(map_job(
                3 + (i % 4) as usize,
                500 + i * 97,
                i * 800,
                i * 800 + 4_000 + i * 321,
            ));
        }
        let run = |_: u32| {
            SimulatorEngine::new(
                EngineConfig::new(3, 3),
                &trace,
                Box::new(MaxEdfPolicy::preemptive()),
            )
            .run()
        };
        let a = run(0);
        assert_eq!(a, run(1));
        for (result, spec) in a.jobs.iter().zip(&trace.jobs) {
            assert_eq!(result.num_maps, spec.template.num_maps);
            assert!(result.completion >= result.arrival);
        }
    }

    #[test]
    fn equal_deadline_factor_one_degenerates_to_maxedf() {
        // df=1 deadlines equal the all-slots runtime: MinEDF's model must
        // request (nearly) everything, so both policies coincide (§V-B).
        let mut trace = WorkloadTrace::new("t", "test");
        // 8 maps of 1s on 4 slots => 2 waves => 2s standalone
        trace.push(map_job(8, 1000, 0, 2_000));
        let min_r =
            SimulatorEngine::new(EngineConfig::new(4, 4), &trace, Box::new(MinEdfPolicy::new()))
                .run();
        let max_r =
            SimulatorEngine::new(EngineConfig::new(4, 4), &trace, Box::new(MaxEdfPolicy::new()))
                .run();
        assert_eq!(min_r.jobs[0].completion, max_r.jobs[0].completion);
    }

    /// Regression test for the preemption gate mismatch: the earliest-
    /// deadline job is *at its wanted cap*, a mid-deadline job is running
    /// with nothing pending, and a late-deadline under-cap job is
    /// waiting. The old gate named the capped job as urgent and killed
    /// the mid-deadline job's map — freeing a slot the capped job could
    /// not use, which then went to the *later*-deadline waiter: a
    /// deadline inversion. The fixed gate takes the under-cap EDF
    /// minimum as urgent, finds no running job with a strictly later
    /// deadline, and kills nothing.
    #[test]
    fn minedf_preemption_gate_respects_wanted_caps() {
        let mut presets = HashMap::new();
        presets.insert(JobId(0), SlotAllocation { maps: 1, reduces: 1 });
        let mut trace = WorkloadTrace::new("t", "test");
        // job 0: earliest deadline, 2 maps, capped at 1 running => at cap
        // with one pending map from t=0
        trace.push(map_job(2, 10_000, 0, 20_000));
        // job 1: mid deadline, occupies the second slot, nothing pending
        trace.push(map_job(1, 10_000, 0, 30_000));
        // job 2: latest deadline, arrives once all slots are busy
        trace.push(map_job(1, 1_000, 500, 60_000));
        let run = |policy: Box<dyn SchedulerPolicy>| {
            SimulatorEngine::new(EngineConfig::new(2, 2).with_timeline(), &trace, policy).run()
        };
        let preemptive = run(Box::new(MinEdfPolicy {
            preemptive: true,
            ..MinEdfPolicy::with_presets(presets.clone())
        }));
        let plain = run(Box::new(MinEdfPolicy::with_presets(presets)));
        // no kill on behalf of a job that cannot use the slot: the
        // preemptive run matches the non-preemptive one task for task
        assert_eq!(preemptive, plain);
        // and job 1's map ran exactly once, uninterrupted
        assert_eq!(preemptive.jobs[1].completion, SimTime::from_millis(10_000));
    }

    /// The fixed gate still preempts when the under-cap urgent job has
    /// the earlier deadline: the latest-deadline running job loses a map.
    #[test]
    fn minedf_preemption_still_fires_for_under_cap_urgent() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(4, 10_000, 0, 60_000));
        trace.push(map_job(1, 1_000, 2_000, 4_000)); // urgent, under cap
        let report = SimulatorEngine::new(
            EngineConfig::new(2, 2),
            &trace,
            Box::new(MinEdfPolicy::preemptive()),
        )
        .run();
        // job 1 preempts at arrival and meets its deadline
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(3_000));
        assert!(report.jobs[1].met_deadline());
    }
}
