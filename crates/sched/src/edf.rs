//! The deadline-driven schedulers: MaxEDF and MinEDF (§V-A).
//!
//! Both order jobs by Earliest Deadline First. They differ in *how many*
//! slots they hand a job:
//!
//! * **MaxEDF** allocates the maximum available slots (FIFO-style greed,
//!   EDF order). Jobs often finish well before their deadline, but an
//!   urgent later arrival may find all slots taken — and tasks are never
//!   preempted.
//! * **MinEDF** computes, at arrival, the **minimal** `(S_M, S_R)` that the
//!   ARIA bounds model predicts will meet the job's deadline, and caps the
//!   job's concurrently running tasks at that amount, leaving spare slots
//!   for later arrivals.

use simmr_core::{JobQueue, SchedulerPolicy};
use simmr_model::{min_slots_for_deadline, JobProfileSummary, SlotAllocation};
use simmr_types::{DurationMs, JobId, JobTemplate};
use std::collections::HashMap;

/// EDF ordering with maximum resource allocation.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxEdfPolicy {
    preemptive: bool,
}

impl MaxEdfPolicy {
    /// Creates the (non-preemptive) policy, as evaluated in the paper.
    pub fn new() -> Self {
        MaxEdfPolicy { preemptive: false }
    }

    /// Creates a **preemptive** variant: when a job with an earlier
    /// deadline has pending maps and no slot is free, the running job with
    /// the latest deadline loses its most recent map task (killed and
    /// requeued). The paper attributes the "bump" near 100 s inter-arrival
    /// in Figure 7(a) to the lack of exactly this; the
    /// `ablation_preemption` binary quantifies it.
    pub fn preemptive() -> Self {
        MaxEdfPolicy { preemptive: true }
    }
}

/// Shared EDF preemption rule: kill one map of the latest-deadline running
/// job, provided a strictly more urgent job is waiting for a map slot.
fn edf_map_preemptions(jobq: &JobQueue, victims: &mut Vec<JobId>) {
    let Some(urgent) =
        jobq.entries().iter().filter(|e| e.has_schedulable_map()).min_by_key(|e| e.edf_key())
    else {
        return;
    };
    if let Some(victim) = jobq
        .entries()
        .iter()
        .filter(|e| e.id != urgent.id && e.running_maps > 0 && e.edf_key() > urgent.edf_key())
        .max_by_key(|e| e.edf_key())
    {
        victims.push(victim.id);
    }
}

impl SchedulerPolicy for MaxEdfPolicy {
    fn name(&self) -> &str {
        "maxedf"
    }

    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        jobq.entries()
            .iter()
            .filter(|e| e.has_schedulable_map())
            .min_by_key(|e| e.edf_key())
            .map(|e| e.id)
    }

    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        jobq.entries()
            .iter()
            .filter(|e| e.has_schedulable_reduce())
            .min_by_key(|e| e.edf_key())
            .map(|e| e.id)
    }

    fn map_preemptions(&mut self, jobq: &JobQueue, victims: &mut Vec<JobId>) {
        if self.preemptive {
            edf_map_preemptions(jobq, victims);
        }
    }
}

/// EDF ordering with model-derived minimal resource allocation.
#[derive(Debug, Default)]
pub struct MinEdfPolicy {
    /// Per-job wanted slot counts, computed on arrival.
    wanted: HashMap<JobId, SlotAllocation>,
    /// Allocations supplied up front (e.g. from a shared ARIA profile
    /// database) that take precedence over the model computation.
    presets: HashMap<JobId, SlotAllocation>,
    preemptive: bool,
}

impl MinEdfPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        MinEdfPolicy::default()
    }

    /// Creates the policy with preset per-job allocations. In the paper
    /// both the real cluster's MinEDF and the simulated one consult the
    /// same profile database; presets let a harness reproduce that setup
    /// (any job without a preset falls back to the bounds model).
    pub fn with_presets(presets: HashMap<JobId, SlotAllocation>) -> Self {
        MinEdfPolicy { presets, ..MinEdfPolicy::default() }
    }

    /// Creates a preemptive variant (see [`MaxEdfPolicy::preemptive`]).
    pub fn preemptive() -> Self {
        MinEdfPolicy { preemptive: true, ..MinEdfPolicy::default() }
    }

    /// The wanted allocation for a job (visible for tests/diagnostics).
    pub fn wanted(&self, id: JobId) -> Option<SlotAllocation> {
        self.wanted.get(&id).copied()
    }
}

impl SchedulerPolicy for MinEdfPolicy {
    fn name(&self) -> &str {
        "minedf"
    }

    fn on_job_arrival(
        &mut self,
        id: JobId,
        template: &JobTemplate,
        relative_deadline: Option<DurationMs>,
        cluster: simmr_types::ClusterSpec,
    ) {
        let (max_maps, max_reduces) = (cluster.map_slots, cluster.reduce_slots);
        if let Some(&preset) = self.presets.get(&id) {
            self.wanted.insert(id, preset);
            return;
        }
        let alloc = match relative_deadline {
            Some(deadline) => {
                let profile = JobProfileSummary::from_template(template);
                min_slots_for_deadline(&profile, deadline, max_maps, max_reduces)
            }
            // no deadline: behave like MaxEDF for this job
            None => SlotAllocation {
                maps: max_maps.min(template.num_maps),
                reduces: max_reduces.min(template.num_reduces),
            },
        };
        self.wanted.insert(id, alloc);
    }

    fn on_job_departure(&mut self, id: JobId) {
        self.wanted.remove(&id);
    }

    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        jobq.entries()
            .iter()
            .filter(|e| {
                e.has_schedulable_map()
                    && self.wanted.get(&e.id).is_none_or(|w| e.running_maps < w.maps)
            })
            .min_by_key(|e| e.edf_key())
            .map(|e| e.id)
    }

    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        jobq.entries()
            .iter()
            .filter(|e| {
                e.has_schedulable_reduce()
                    && self.wanted.get(&e.id).is_none_or(|w| e.running_reduces < w.reduces)
            })
            .min_by_key(|e| e.edf_key())
            .map(|e| e.id)
    }

    fn map_preemptions(&mut self, jobq: &JobQueue, victims: &mut Vec<JobId>) {
        if !self.preemptive {
            return;
        }
        // only preempt on behalf of a job still under its wanted cap
        let urgent_exists = jobq.entries().iter().any(|e| {
            e.has_schedulable_map()
                && self.wanted.get(&e.id).is_none_or(|w| e.running_maps < w.maps)
        });
        if urgent_exists {
            edf_map_preemptions(jobq, victims);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_core::{EngineConfig, SimulatorEngine};
    use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

    fn map_job(maps: usize, map_ms: u64, arrival_ms: u64, deadline_ms: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new("j", vec![map_ms; maps], vec![], vec![], vec![]).unwrap(),
            SimTime::from_millis(arrival_ms),
        )
        .with_deadline(SimTime::from_millis(deadline_ms))
    }

    #[test]
    fn maxedf_prefers_urgent_job() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(2, 100, 0, 10_000)); // relaxed deadline
        trace.push(map_job(2, 100, 0, 500)); // urgent
        let report =
            SimulatorEngine::new(EngineConfig::new(2, 2), &trace, Box::new(MaxEdfPolicy::new()))
                .run();
        // urgent job 1 grabs both slots first
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(100));
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(200));
    }

    #[test]
    fn maxedf_no_deadline_sorts_last() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(JobSpec::new(
            JobTemplate::new("nodl", vec![100; 2], vec![], vec![], vec![]).unwrap(),
            SimTime::ZERO,
        ));
        trace.push(map_job(2, 100, 0, 50_000));
        let report =
            SimulatorEngine::new(EngineConfig::new(2, 2), &trace, Box::new(MaxEdfPolicy::new()))
                .run();
        assert!(report.jobs[1].completion < report.jobs[0].completion);
    }

    #[test]
    fn minedf_computes_wanted_on_arrival() {
        let mut p = MinEdfPolicy::new();
        let t = JobTemplate::new("j", vec![1000; 16], vec![10], vec![10; 8], vec![10; 8]).unwrap();
        // very relaxed deadline: minimal slots
        p.on_job_arrival(JobId(0), &t, Some(1_000_000), simmr_types::ClusterSpec::new(64, 64));
        let w = p.wanted(JobId(0)).unwrap();
        assert!(w.maps <= 2, "{w:?}");
        // tight deadline: lots of slots
        p.on_job_arrival(JobId(1), &t, Some(2_000), simmr_types::ClusterSpec::new(64, 64));
        let w_tight = p.wanted(JobId(1)).unwrap();
        assert!(w_tight.maps > w.maps);
        // no deadline: max
        p.on_job_arrival(JobId(2), &t, None, simmr_types::ClusterSpec::new(64, 64));
        assert_eq!(p.wanted(JobId(2)).unwrap().maps, 16);
        p.on_job_departure(JobId(0));
        assert!(p.wanted(JobId(0)).is_none());
    }

    #[test]
    fn minedf_leaves_spare_slots_for_late_urgent_job() {
        // Job 0: 8 maps x 1s, relaxed deadline (8s for 1 slot's worth of
        // work on an 8-slot cluster => MinEDF gives it ~2 slots).
        // Job 1 arrives at t=100ms: 2 maps x 1s, tight deadline.
        // Under MinEDF job 1 finds free slots instantly; under MaxEDF it
        // waits for job 0's first wave to drain (non-preemption).
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(8, 1000, 0, 9_000));
        trace.push(map_job(2, 1000, 100, 1_200));

        let min_report =
            SimulatorEngine::new(EngineConfig::new(8, 8), &trace, Box::new(MinEdfPolicy::new()))
                .run();
        let max_report =
            SimulatorEngine::new(EngineConfig::new(8, 8), &trace, Box::new(MaxEdfPolicy::new()))
                .run();

        // MaxEDF: job 1 waits until t=1000, finishes 2000 (missed).
        assert_eq!(max_report.jobs[1].completion, SimTime::from_millis(2000));
        // MinEDF: job 1 starts at arrival, finishes 1100 (met).
        assert_eq!(min_report.jobs[1].completion, SimTime::from_millis(1100));
        assert!(min_report.jobs[1].met_deadline());
        assert!(!max_report.jobs[1].met_deadline());
        // and job 0 still meets its own deadline under MinEDF
        assert!(min_report.jobs[0].met_deadline());
        assert!(
            min_report.total_relative_deadline_exceeded()
                < max_report.total_relative_deadline_exceeded()
        );
    }

    #[test]
    fn minedf_caps_running_tasks() {
        // one job, wanted == 2 map slots on an 8-slot cluster: completion
        // should reflect 2-at-a-time waves, not 8.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(8, 1000, 0, 9_000)); // deadline allows ~1 slot
        let report =
            SimulatorEngine::new(EngineConfig::new(8, 8), &trace, Box::new(MinEdfPolicy::new()))
                .run();
        // with k slots the job takes ceil(8/k) seconds; wanted k is small,
        // so completion must be well beyond the 1s that MaxEDF would give
        assert!(
            report.jobs[0].completion >= SimTime::from_millis(4000),
            "completion {} suggests the cap was ignored",
            report.jobs[0].completion
        );
        assert!(report.jobs[0].met_deadline());
    }

    #[test]
    fn preemptive_maxedf_kills_for_urgent_arrival() {
        // Job 0 (relaxed deadline) occupies both slots with long maps; job 1
        // (urgent) arrives mid-flight. Non-preemptive MaxEDF makes it wait a
        // full map duration; the preemptive variant kills one of job 0's
        // maps immediately.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(4, 10_000, 0, 60_000));
        trace.push(map_job(1, 1_000, 2_000, 4_000));

        let plain =
            SimulatorEngine::new(EngineConfig::new(2, 2), &trace, Box::new(MaxEdfPolicy::new()))
                .run();
        let preempt = SimulatorEngine::new(
            EngineConfig::new(2, 2),
            &trace,
            Box::new(MaxEdfPolicy::preemptive()),
        )
        .run();
        // plain: job 1 waits until t=10s, done 11s (missed)
        assert_eq!(plain.jobs[1].completion, SimTime::from_millis(11_000));
        // preemptive: job 1 starts at arrival, done 3s (met)
        assert_eq!(preempt.jobs[1].completion, SimTime::from_millis(3_000));
        assert!(preempt.jobs[1].met_deadline());
        // the preempted map restarts from scratch, so job 0 finishes later
        assert!(preempt.jobs[0].completion > plain.jobs[0].completion);
        // ...but every task still completes exactly once
        assert_eq!(preempt.jobs[0].num_maps, 4);
    }

    #[test]
    fn preemption_is_deterministic_and_conserves_tasks() {
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..12u64 {
            trace.push(map_job(
                3 + (i % 4) as usize,
                500 + i * 97,
                i * 800,
                i * 800 + 4_000 + i * 321,
            ));
        }
        let run = |_: u32| {
            SimulatorEngine::new(
                EngineConfig::new(3, 3),
                &trace,
                Box::new(MaxEdfPolicy::preemptive()),
            )
            .run()
        };
        let a = run(0);
        assert_eq!(a, run(1));
        for (result, spec) in a.jobs.iter().zip(&trace.jobs) {
            assert_eq!(result.num_maps, spec.template.num_maps);
            assert!(result.completion >= result.arrival);
        }
    }

    #[test]
    fn equal_deadline_factor_one_degenerates_to_maxedf() {
        // df=1 deadlines equal the all-slots runtime: MinEDF's model must
        // request (nearly) everything, so both policies coincide (§V-B).
        let mut trace = WorkloadTrace::new("t", "test");
        // 8 maps of 1s on 4 slots => 2 waves => 2s standalone
        trace.push(map_job(8, 1000, 0, 2_000));
        let min_r =
            SimulatorEngine::new(EngineConfig::new(4, 4), &trace, Box::new(MinEdfPolicy::new()))
                .run();
        let max_r =
            SimulatorEngine::new(EngineConfig::new(4, 4), &trace, Box::new(MaxEdfPolicy::new()))
                .run();
        assert_eq!(min_r.jobs[0].completion, max_r.jobs[0].completion);
    }
}
