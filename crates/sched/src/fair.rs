//! A fair-share policy (extension beyond the paper).
//!
//! Modeled after the Hadoop Fair Scheduler's core idea: every active job
//! should hold roughly the same number of slots. The policy always hands the
//! next slot to the job with the fewest *running* tasks of that kind
//! (deficit-first), breaking ties by arrival. Starvation-free and, with
//! equal-size jobs, converges to an equal split.

use simmr_core::{JobQueue, SchedulerPolicy};
use simmr_types::JobId;

/// Deficit-first fair sharing across active jobs.
#[derive(Debug, Default, Clone, Copy)]
pub struct FairSharePolicy;

impl FairSharePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FairSharePolicy
    }
}

impl SchedulerPolicy for FairSharePolicy {
    fn name(&self) -> &str {
        "fair"
    }

    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        jobq.entries()
            .iter()
            .filter(|e| e.has_schedulable_map())
            .min_by_key(|e| (e.running_maps, e.arrival, e.id))
            .map(|e| e.id)
    }

    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        jobq.entries()
            .iter()
            .filter(|e| e.has_schedulable_reduce())
            .min_by_key(|e| (e.running_reduces, e.arrival, e.id))
            .map(|e| e.id)
    }

    /// Fair share is completely stateless — the deficit comparison reads
    /// only the live queue — so its checkpoint blob is empty.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    fn restore(&mut self, blob: &[u8]) -> Result<(), String> {
        if blob.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "fair keeps no snapshot state but the checkpoint carries {} bytes",
                blob.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_core::{EngineConfig, SimulatorEngine};
    use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

    fn map_job(maps: usize, map_ms: u64, arrival_ms: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new("j", vec![map_ms; maps], vec![], vec![], vec![]).unwrap(),
            SimTime::from_millis(arrival_ms),
        )
    }

    #[test]
    fn concurrent_jobs_share_evenly() {
        // two identical jobs, 4 slots: each should get 2 slots and finish
        // at the same time — unlike FIFO where job 0 hogs all 4.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(4, 1000, 0));
        trace.push(map_job(4, 1000, 0));
        let report =
            SimulatorEngine::new(EngineConfig::new(4, 4), &trace, Box::new(FairSharePolicy::new()))
                .run();
        assert_eq!(report.jobs[0].completion, report.jobs[1].completion);
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(2000));
    }

    #[test]
    fn single_job_gets_everything() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(4, 1000, 0));
        let report =
            SimulatorEngine::new(EngineConfig::new(4, 4), &trace, Box::new(FairSharePolicy::new()))
                .run();
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(1000));
    }

    #[test]
    fn late_arrival_catches_up() {
        // job 0 holds all 2 slots; when job 1 arrives its deficit (0 running)
        // wins every slot that frees until parity.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(map_job(6, 1000, 0));
        trace.push(map_job(2, 1000, 500));
        let report =
            SimulatorEngine::new(EngineConfig::new(2, 2), &trace, Box::new(FairSharePolicy::new()))
                .run();
        // job 1's two tasks run at t=1000 and t=2000 at the latest
        assert!(report.jobs[1].completion <= SimTime::from_millis(3000));
        // job 0 still finishes (no starvation)
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(4000));
    }
}
