//! Pool-tree specifications for the hierarchical scheduler.
//!
//! Hadoop's Fair and Capacity schedulers (the paper's refs. 2–3) arrange
//! tenants in a *tree* of pools: each node carries a weight, optional
//! min/max shares per slot kind, and a min-share preemption timeout;
//! leaves receive jobs by name-prefix routing. This module holds the
//! declarative side of that model — [`PoolSpec`], the `hier:` spec-string
//! parser and the `--pools FILE` JSON loader — while
//! [`hier`](crate::hier) implements the scheduling walk itself.
//!
//! ## Spec-string grammar
//!
//! ```text
//! pools    := pool (',' pool)*
//! pool     := name attrs? children?
//! attrs    := '[' key '=' value (',' key '=' value)* ']'
//! children := '{' pools '}'
//! ```
//!
//! Attribute keys: `w` (weight, default 1), `min` / `max` (map-slot
//! shares), `rmin` / `rmax` (reduce-slot shares), `timeout` (min-share
//! preemption timeout in **seconds**; may be fractional). Example:
//!
//! ```text
//! hier:prod[w=3,min=4,timeout=30]{etl,serving},adhoc[w=1]
//! ```
//!
//! A leaf's routing prefix is its path of non-empty names joined with
//! `-`: `prod{etl,serving}` yields leaves `prod-etl` and `prod-serving`.
//! Jobs route to the first leaf (depth-first order) whose prefix is a
//! prefix of the job name, falling back to the **last** leaf — identical
//! to [`CapacityPolicy`](crate::CapacityPolicy) routing, so list a
//! catch-all pool last.
//!
//! ## JSON config (`--pools FILE`)
//!
//! Either a top-level array of pools or `{"pools": [...]}`. Each pool is
//! an object with `"name"` (required) and optional `"weight"`,
//! `"min_maps"`, `"max_maps"`, `"min_reduces"`, `"max_reduces"`,
//! `"preemption_timeout_s"`, `"children"`:
//!
//! ```json
//! {"pools": [
//!   {"name": "prod", "weight": 3, "min_maps": 4, "preemption_timeout_s": 30,
//!    "children": [{"name": "etl"}, {"name": "serving"}]},
//!   {"name": "adhoc", "weight": 1}
//! ]}
//! ```

use simmr_types::DurationMs;

/// One node of a pool tree: a tenant (leaf) or a grouping of tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSpec {
    /// Path component of the routing prefix; may be empty (catch-all).
    pub name: String,
    /// Relative share weight among siblings (> 0, default 1).
    pub weight: f64,
    /// Guaranteed map slots; below it the pool is *starved*.
    pub min_maps: Option<usize>,
    /// Guaranteed reduce slots (shapes selection; reduces never preempt).
    pub min_reduces: Option<usize>,
    /// Map-slot ceiling for the subtree.
    pub max_maps: Option<usize>,
    /// Reduce-slot ceiling for the subtree.
    pub max_reduces: Option<usize>,
    /// How long the pool may sit below `min_maps` with pending work
    /// before the scheduler preempts over-share pools. `None` disables
    /// preemption on behalf of this pool; `Some(0)` preempts immediately.
    pub preemption_timeout: Option<DurationMs>,
    /// Child pools; empty means this node is a leaf.
    pub children: Vec<PoolSpec>,
}

impl PoolSpec {
    /// A leaf pool with the given name, weight 1 and no shares.
    pub fn leaf(name: &str) -> Self {
        PoolSpec {
            name: name.to_string(),
            weight: 1.0,
            min_maps: None,
            min_reduces: None,
            max_maps: None,
            max_reduces: None,
            preemption_timeout: None,
            children: Vec::new(),
        }
    }

    /// Sets the weight (builder style).
    pub fn weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }

    /// Sets the map-slot min share (builder style).
    pub fn min_maps(mut self, n: usize) -> Self {
        self.min_maps = Some(n);
        self
    }

    /// Sets the map-slot max share (builder style).
    pub fn max_maps(mut self, n: usize) -> Self {
        self.max_maps = Some(n);
        self
    }

    /// Sets the min-share preemption timeout (builder style).
    pub fn preemption_timeout(mut self, ms: DurationMs) -> Self {
        self.preemption_timeout = Some(ms);
        self
    }

    /// Attaches child pools (builder style).
    pub fn children(mut self, children: Vec<PoolSpec>) -> Self {
        self.children = children;
        self
    }
}

/// Parses the `hier:` spec-string pool list (the part after the colon).
pub fn parse_pool_spec(s: &str) -> Result<Vec<PoolSpec>, String> {
    if s.is_empty() {
        return Err("pool tree has no pools".into());
    }
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let pools = parse_pool_list(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!("unexpected {:?} at byte {pos}", s[pos..].chars().next().unwrap()));
    }
    validate_pools(&pools)?;
    Ok(pools)
}

fn parse_pool_list(bytes: &[u8], pos: &mut usize) -> Result<Vec<PoolSpec>, String> {
    let mut pools = Vec::new();
    loop {
        pools.push(parse_pool(bytes, pos)?);
        if *pos < bytes.len() && bytes[*pos] == b',' {
            *pos += 1;
            continue;
        }
        break;
    }
    Ok(pools)
}

fn parse_pool(bytes: &[u8], pos: &mut usize) -> Result<PoolSpec, String> {
    let start = *pos;
    while *pos < bytes.len() && !b",[]{}=".contains(&bytes[*pos]) {
        *pos += 1;
    }
    let name = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-UTF8 pool name")?;
    let mut pool = PoolSpec::leaf(name);
    if *pos < bytes.len() && bytes[*pos] == b'[' {
        *pos += 1;
        parse_attrs(bytes, pos, &mut pool)?;
    }
    if *pos < bytes.len() && bytes[*pos] == b'{' {
        *pos += 1;
        pool.children = parse_pool_list(bytes, pos)?;
        if *pos >= bytes.len() || bytes[*pos] != b'}' {
            return Err(format!("pool {:?}: missing closing '}}'", pool.name));
        }
        *pos += 1;
    }
    Ok(pool)
}

fn parse_attrs(bytes: &[u8], pos: &mut usize, pool: &mut PoolSpec) -> Result<(), String> {
    loop {
        let start = *pos;
        while *pos < bytes.len() && !b"=,]".contains(&bytes[*pos]) {
            *pos += 1;
        }
        let key = std::str::from_utf8(&bytes[start..*pos]).expect("sliced at ASCII boundaries");
        if *pos >= bytes.len() || bytes[*pos] != b'=' {
            return Err(format!("pool {:?}: expected '=' after attribute {key:?}", pool.name));
        }
        *pos += 1;
        let vstart = *pos;
        while *pos < bytes.len() && !b",]".contains(&bytes[*pos]) {
            *pos += 1;
        }
        let value = std::str::from_utf8(&bytes[vstart..*pos]).map_err(|_| "non-UTF8 value")?;
        apply_attr(pool, key, value)?;
        if *pos < bytes.len() && bytes[*pos] == b',' {
            *pos += 1;
            continue;
        }
        if *pos < bytes.len() && bytes[*pos] == b']' {
            *pos += 1;
            return Ok(());
        }
        return Err(format!("pool {:?}: missing closing ']'", pool.name));
    }
}

fn apply_attr(pool: &mut PoolSpec, key: &str, value: &str) -> Result<(), String> {
    let ctx = |what: &str| format!("pool {:?}: {what} {value:?}", pool.name);
    let as_usize = |what: &str| value.parse::<usize>().map_err(|_| ctx(what));
    match key {
        "w" => {
            pool.weight = value.parse().map_err(|_| ctx("weight is not a number:"))?;
        }
        "min" => pool.min_maps = Some(as_usize("min is not a slot count:")?),
        "rmin" => pool.min_reduces = Some(as_usize("rmin is not a slot count:")?),
        "max" => pool.max_maps = Some(as_usize("max is not a slot count:")?),
        "rmax" => pool.max_reduces = Some(as_usize("rmax is not a slot count:")?),
        "timeout" => {
            let secs: f64 = value.parse().map_err(|_| ctx("timeout is not a number:"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(ctx("timeout must be finite and >= 0:"));
            }
            pool.preemption_timeout = Some((secs * 1000.0).round() as DurationMs);
        }
        _ => {
            return Err(format!(
                "pool {:?}: unknown attribute {key:?} (valid: w, min, rmin, max, rmax, timeout)",
                pool.name
            ));
        }
    }
    Ok(())
}

/// Renders a pool list back into the spec-string grammar, inverting
/// [`parse_pool_spec`]: `parse_pool_spec(&render_pool_specs(&pools))`
/// yields `pools` again. Attributes appear in the fixed order `w, min,
/// max, rmin, rmax, timeout` (weight omitted at its default of 1), so
/// the rendering is canonical: equal pool trees render equal strings.
/// Pool order is preserved — for `hier` it is routing order and carries
/// semantics.
pub fn render_pool_specs(pools: &[PoolSpec]) -> String {
    let mut out = String::new();
    for (i, pool) in pools.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_pool(pool, &mut out);
    }
    out
}

fn render_pool(pool: &PoolSpec, out: &mut String) {
    use std::fmt::Write;
    out.push_str(&pool.name);
    let mut attrs = String::new();
    if pool.weight != 1.0 {
        let _ = write!(attrs, "w={}", pool.weight);
    }
    for (key, value) in [
        ("min", pool.min_maps),
        ("max", pool.max_maps),
        ("rmin", pool.min_reduces),
        ("rmax", pool.max_reduces),
    ] {
        if let Some(n) = value {
            if !attrs.is_empty() {
                attrs.push(',');
            }
            let _ = write!(attrs, "{key}={n}");
        }
    }
    if let Some(ms) = pool.preemption_timeout {
        if !attrs.is_empty() {
            attrs.push(',');
        }
        // the grammar takes (possibly fractional) seconds
        let _ = write!(attrs, "timeout={}", ms as f64 / 1000.0);
    }
    if !attrs.is_empty() {
        out.push('[');
        out.push_str(&attrs);
        out.push(']');
    }
    if !pool.children.is_empty() {
        out.push('{');
        for (i, child) in pool.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_pool(child, out);
        }
        out.push('}');
    }
}

/// Structural validation shared by the spec-string and JSON loaders.
pub fn validate_pools(pools: &[PoolSpec]) -> Result<(), String> {
    if pools.is_empty() {
        return Err("pool tree has no pools".into());
    }
    let mut prefixes = Vec::new();
    for pool in pools {
        validate_node(pool, "")?;
        collect_leaf_prefixes(pool, "", &mut prefixes);
    }
    for (i, p) in prefixes.iter().enumerate() {
        if prefixes[..i].contains(p) {
            return Err(format!("duplicate leaf pool prefix {p:?}"));
        }
    }
    Ok(())
}

fn validate_node(pool: &PoolSpec, parent_prefix: &str) -> Result<(), String> {
    let prefix = join_prefix(parent_prefix, &pool.name);
    if !pool.weight.is_finite() || pool.weight <= 0.0 {
        return Err(format!("pool {prefix:?}: weight must be finite and > 0"));
    }
    for (min, max, what) in
        [(pool.min_maps, pool.max_maps, "map"), (pool.min_reduces, pool.max_reduces, "reduce")]
    {
        if let (Some(min), Some(max)) = (min, max) {
            if min > max {
                return Err(format!("pool {prefix:?}: {what} min share {min} exceeds max {max}"));
            }
        }
    }
    if pool.preemption_timeout.is_some() && pool.min_maps.is_none() {
        return Err(format!("pool {prefix:?}: preemption timeout without a map min share"));
    }
    for child in &pool.children {
        validate_node(child, &prefix)?;
    }
    Ok(())
}

/// Routing prefix of a child pool: non-empty path components joined
/// with `-` (matching the tenant tagging of the multi-tenant workload).
pub(crate) fn join_prefix(parent: &str, name: &str) -> String {
    match (parent.is_empty(), name.is_empty()) {
        (true, _) => name.to_string(),
        (_, true) => parent.to_string(),
        _ => format!("{parent}-{name}"),
    }
}

fn collect_leaf_prefixes(pool: &PoolSpec, parent: &str, out: &mut Vec<String>) {
    let prefix = join_prefix(parent, &pool.name);
    if pool.children.is_empty() {
        out.push(prefix);
    } else {
        for child in &pool.children {
            collect_leaf_prefixes(child, &prefix, out);
        }
    }
}

/// Loads a pool tree from the `--pools FILE` JSON document.
pub fn pools_from_json(text: &str) -> Result<Vec<PoolSpec>, String> {
    let doc = serde_json::from_str(text).map_err(|e| format!("pool config is not JSON: {e}"))?;
    let list = match &doc {
        serde_json::Value::Array(pools) => pools.as_slice(),
        serde_json::Value::Object(_) => match doc.get("pools") {
            Some(serde_json::Value::Array(pools)) => pools.as_slice(),
            _ => return Err("pool config object needs a \"pools\" array".into()),
        },
        _ => return Err("pool config must be an array or an object with \"pools\"".into()),
    };
    let pools = list.iter().map(pool_from_json).collect::<Result<Vec<_>, _>>()?;
    validate_pools(&pools)?;
    Ok(pools)
}

fn pool_from_json(value: &serde_json::Value) -> Result<PoolSpec, String> {
    let serde_json::Value::Object(fields) = value else {
        return Err("each pool must be a JSON object".into());
    };
    let known = [
        "name",
        "weight",
        "min_maps",
        "min_reduces",
        "max_maps",
        "max_reduces",
        "preemption_timeout_s",
        "children",
    ];
    if let Some((key, _)) = fields.iter().find(|(k, _)| !known.contains(&k.as_str())) {
        return Err(format!("unknown pool field {key:?} (valid: {})", known.join(", ")));
    }
    let Some(serde_json::Value::Str(name)) = value.get("name") else {
        return Err("pool is missing a string \"name\"".into());
    };
    let mut pool = PoolSpec::leaf(name);
    if let Some(w) = value.get("weight") {
        pool.weight = json_number(w).ok_or_else(|| format!("pool {name:?}: bad weight"))?;
    }
    for (key, slot) in [
        ("min_maps", &mut pool.min_maps),
        ("min_reduces", &mut pool.min_reduces),
        ("max_maps", &mut pool.max_maps),
        ("max_reduces", &mut pool.max_reduces),
    ] {
        if let Some(v) = value.get(key) {
            match v {
                serde_json::Value::U64(n) => *slot = Some(*n as usize),
                _ => return Err(format!("pool {name:?}: {key} must be a non-negative integer")),
            }
        }
    }
    if let Some(v) = value.get("preemption_timeout_s") {
        let secs = json_number(v)
            .filter(|s| s.is_finite() && *s >= 0.0)
            .ok_or_else(|| format!("pool {name:?}: preemption_timeout_s must be >= 0"))?;
        pool.preemption_timeout = Some((secs * 1000.0).round() as DurationMs);
    }
    if let Some(v) = value.get("children") {
        let serde_json::Value::Array(children) = v else {
            return Err(format!("pool {name:?}: children must be an array"));
        };
        pool.children = children.iter().map(pool_from_json).collect::<Result<Vec<_>, _>>()?;
    }
    Ok(pool)
}

fn json_number(v: &serde_json::Value) -> Option<f64> {
    match v {
        serde_json::Value::U64(n) => Some(*n as f64),
        serde_json::Value::I64(n) => Some(*n as f64),
        serde_json::Value::F64(n) => Some(*n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_issue_example() {
        let pools = parse_pool_spec("prod[w=3,min=4]{etl,serving},adhoc[w=1]").unwrap();
        assert_eq!(pools.len(), 2);
        assert_eq!(pools[0].name, "prod");
        assert_eq!(pools[0].weight, 3.0);
        assert_eq!(pools[0].min_maps, Some(4));
        assert_eq!(pools[0].children.len(), 2);
        assert_eq!(pools[0].children[1].name, "serving");
        assert_eq!(pools[1].name, "adhoc");
        assert_eq!(pools[1].weight, 1.0);
        assert!(pools[1].children.is_empty());
    }

    #[test]
    fn timeout_attr_is_seconds() {
        let pools = parse_pool_spec("p[min=2,timeout=30],q[min=1,timeout=0.5]").unwrap();
        assert_eq!(pools[0].preemption_timeout, Some(30_000));
        assert_eq!(pools[1].preemption_timeout, Some(500));
    }

    #[test]
    fn nested_children_and_attrs() {
        let pools = parse_pool_spec("a[w=2]{b[min=1,timeout=0],c{d,e}},f").unwrap();
        assert_eq!(pools[0].children[1].children.len(), 2);
        assert_eq!(pools[0].children[0].preemption_timeout, Some(0));
        let mut prefixes = Vec::new();
        collect_leaf_prefixes(&pools[0], "", &mut prefixes);
        assert_eq!(prefixes, vec!["a-b", "a-c-d", "a-c-e"]);
    }

    #[test]
    fn empty_name_is_catch_all_prefix() {
        let pools = parse_pool_spec("prod,[w=1]").unwrap();
        let mut prefixes = Vec::new();
        for p in &pools {
            collect_leaf_prefixes(p, "", &mut prefixes);
        }
        assert_eq!(prefixes, vec!["prod", ""]);
    }

    #[test]
    fn spec_errors() {
        for (bad, needle) in [
            ("", "no pools"),
            ("p[w=0]", "finite and > 0"),
            ("p[w=x]", "not a number"),
            ("p[zzz=1]", "unknown attribute"),
            ("p[min=2,max=1]", "exceeds max"),
            ("p[timeout=30]", "without a map min share"),
            ("p[min=-1]", "not a slot count"),
            ("p{q", "missing closing '}'"),
            ("p[w=1", "missing closing ']'"),
            ("p}q", "unexpected"),
            ("p,p", "duplicate leaf"),
            ("a{x},a-x", "duplicate leaf"),
        ] {
            let err = parse_pool_spec(bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?}: {err}");
        }
    }

    #[test]
    fn json_round_trip_of_issue_example() {
        let pools = pools_from_json(
            r#"{"pools": [
                {"name": "prod", "weight": 3, "min_maps": 4,
                 "preemption_timeout_s": 30,
                 "children": [{"name": "etl"}, {"name": "serving"}]},
                {"name": "adhoc", "weight": 1}
            ]}"#,
        )
        .unwrap();
        assert_eq!(
            pools,
            parse_pool_spec("prod[w=3,min=4,timeout=30]{etl,serving},adhoc[w=1]").unwrap()
        );
    }

    #[test]
    fn json_top_level_array_and_errors() {
        assert_eq!(pools_from_json(r#"[{"name": "p"}]"#).unwrap().len(), 1);
        for (bad, needle) in [
            ("17", "array or an object"),
            ("{}", "\"pools\" array"),
            (r#"[{"weight": 1}]"#, "missing a string"),
            (r#"[{"name": "p", "min_maps": -1}]"#, "non-negative integer"),
            (r#"[{"name": "p", "typo": 1}]"#, "unknown pool field"),
            (r#"[{"name": "p", "children": 3}]"#, "must be an array"),
            (r#"[{"name": "p", "weight": 0}]"#, "finite and > 0"),
            ("[{\"name\": \"p\"", "not JSON"),
        ] {
            let err = pools_from_json(bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?}: {err}");
        }
    }
}
