//! A capacity-scheduler-style policy (extension beyond the paper).
//!
//! Mirrors the essentials of Hadoop's Capacity Scheduler (the paper's ref. 2): jobs are
//! routed to named queues; each queue carries a weight (its capacity
//! share); the next free slot goes to the most under-served queue (lowest
//! running-tasks/weight ratio) and, inside a queue, to the
//! earliest-arrived job.
//!
//! Queue routing uses the job's template name: a job is routed to the
//! queue with the **longest** name that is a prefix of the job name (e.g.
//! queue `prod` captures `prod-wordcount`; with both `prod` and
//! `prod-etl` configured, `prod-etl-daily` lands in `prod-etl`), falling
//! back to the last queue when no name matches. An empty-named queue is a
//! prefix of everything and therefore a catch-all. Longest-prefix routing
//! makes the listed queue *order* carry no routing semantics, which is
//! what lets `capacity:` spec strings normalize their parameter order
//! into a canonical cache-key form (see [`crate::PolicySpec`]).

use simmr_core::{JobQueue, SchedulerPolicy};
use simmr_types::{DurationMs, JobId, JobTemplate, TaskKind};
use std::collections::HashMap;

/// One capacity queue.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Queue name; also the job-name prefix that routes into it.
    pub name: String,
    /// Relative capacity weight (> 0).
    pub weight: f64,
}

/// Weighted-queue capacity scheduling.
#[derive(Debug)]
pub struct CapacityPolicy {
    queues: Vec<QueueConfig>,
    assignment: HashMap<JobId, usize>,
}

impl CapacityPolicy {
    /// Builds the policy from an ordered queue list.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is empty or any weight is not positive.
    pub fn new(queues: Vec<QueueConfig>) -> Self {
        assert!(!queues.is_empty(), "capacity policy needs at least one queue");
        assert!(queues.iter().all(|q| q.weight > 0.0), "queue weights must be positive");
        CapacityPolicy { queues, assignment: HashMap::new() }
    }

    /// Two equal queues, `prod` and a catch-all — a convenient default.
    pub fn two_tier() -> Self {
        CapacityPolicy::new(vec![
            QueueConfig { name: "prod".into(), weight: 2.0 },
            QueueConfig { name: String::new(), weight: 1.0 },
        ])
    }

    /// Queue index a job name routes to: longest matching prefix, ties
    /// (only possible between distinctly-named queues of equal length
    /// where at most one can match) broken toward the earlier queue.
    fn route(&self, job_name: &str) -> usize {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| job_name.starts_with(&q.name))
            .max_by_key(|(i, q)| (q.name.len(), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(self.queues.len() - 1)
    }

    /// The queue a job was assigned to (for tests/diagnostics).
    pub fn queue_of(&self, id: JobId) -> Option<&str> {
        self.assignment.get(&id).map(|&q| self.queues[q].name.as_str())
    }

    fn choose(&self, jobq: &JobQueue, kind: TaskKind) -> Option<JobId> {
        // per-queue running-task load
        let mut load = vec![0usize; self.queues.len()];
        for e in jobq.entries() {
            if let Some(&q) = self.assignment.get(&e.id) {
                load[q] += match kind {
                    TaskKind::Map => e.running_maps,
                    TaskKind::Reduce => e.running_reduces,
                };
            }
        }
        // candidate queues: those containing a schedulable job
        let mut best: Option<(f64, usize)> = None;
        for (qi, q) in self.queues.iter().enumerate() {
            let has_work = jobq.entries().iter().any(|e| {
                self.assignment.get(&e.id) == Some(&qi)
                    && match kind {
                        TaskKind::Map => e.has_schedulable_map(),
                        TaskKind::Reduce => e.has_schedulable_reduce(),
                    }
            });
            if !has_work {
                continue;
            }
            let ratio = load[qi] as f64 / q.weight;
            if best.is_none_or(|(b, _)| ratio < b) {
                best = Some((ratio, qi));
            }
        }
        let (_, qi) = best?;
        jobq.entries()
            .iter()
            .filter(|e| {
                self.assignment.get(&e.id) == Some(&qi)
                    && match kind {
                        TaskKind::Map => e.has_schedulable_map(),
                        TaskKind::Reduce => e.has_schedulable_reduce(),
                    }
            })
            .min_by_key(|e| (e.arrival, e.id))
            .map(|e| e.id)
    }
}

impl SchedulerPolicy for CapacityPolicy {
    fn name(&self) -> &str {
        "capacity"
    }

    fn on_job_arrival(
        &mut self,
        id: JobId,
        template: &JobTemplate,
        _relative_deadline: Option<DurationMs>,
        _cluster: simmr_types::ClusterSpec,
    ) {
        let q = self.route(&template.name);
        self.assignment.insert(id, q);
    }

    fn on_job_departure(&mut self, id: JobId) {
        self.assignment.remove(&id);
    }

    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        self.choose(jobq, TaskKind::Map)
    }

    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        self.choose(jobq, TaskKind::Reduce)
    }

    /// The whole assignment map is derivable (routing is a pure function
    /// of the job name), so the blob is a cross-check fingerprint, sorted
    /// by job id for deterministic bytes.
    fn snapshot(&self) -> Vec<u8> {
        let mut pairs: Vec<(JobId, usize)> =
            self.assignment.iter().map(|(&j, &q)| (j, q)).collect();
        pairs.sort_unstable();
        let mut out = Vec::with_capacity(4 + pairs.len() * 8);
        crate::snap::put_u32(&mut out, pairs.len() as u32);
        for (job, queue) in pairs {
            crate::snap::put_u32(&mut out, job.0);
            crate::snap::put_u32(&mut out, queue as u32);
        }
        out
    }

    /// Verifies the assignment rebuilt by the arrival-hook replay against
    /// the captured one — a resume under a different queue list parses
    /// fine but routes differently, and this is what catches it.
    fn restore(&mut self, blob: &[u8]) -> Result<(), String> {
        let mut r = crate::snap::Reader::new(blob);
        let n = r.u32()? as usize;
        let mut captured = Vec::with_capacity(n);
        for _ in 0..n {
            let job = JobId(r.u32()?);
            let queue = r.u32()? as usize;
            captured.push((job, queue));
        }
        r.done()?;
        let mut rebuilt: Vec<(JobId, usize)> =
            self.assignment.iter().map(|(&j, &q)| (j, q)).collect();
        rebuilt.sort_unstable();
        if rebuilt != captured {
            return Err(format!(
                "capacity queue assignments diverged from the checkpoint (rebuilt {} \
                 assignments, captured {n}) — was the policy built with the same queue list?",
                rebuilt.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_core::{EngineConfig, SimulatorEngine};
    use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

    fn named_job(name: &str, maps: usize, map_ms: u64, arrival_ms: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new(name, vec![map_ms; maps], vec![], vec![], vec![]).unwrap(),
            SimTime::from_millis(arrival_ms),
        )
    }

    #[test]
    fn routing_by_prefix() {
        let p = CapacityPolicy::two_tier();
        assert_eq!(p.route("prod-wordcount"), 0);
        assert_eq!(p.route("adhoc-sort"), 1);
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn rejects_empty_queues() {
        CapacityPolicy::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weight() {
        CapacityPolicy::new(vec![QueueConfig { name: "q".into(), weight: 0.0 }]);
    }

    #[test]
    fn weighted_split_between_queues() {
        // prod (weight 2) and adhoc (weight 1) each submit one long job on
        // 6 slots: prod should hold ~4 slots, adhoc ~2, so prod finishes
        // its 12 tasks around when adhoc finishes its 6.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("prod-big", 12, 1000, 0));
        trace.push(named_job("adhoc-big", 6, 1000, 0));
        let report = SimulatorEngine::new(
            EngineConfig::new(6, 6),
            &trace,
            Box::new(CapacityPolicy::two_tier()),
        )
        .run();
        // prod: 12 tasks / 4 slots = 3s; adhoc: 6 / 2 = 3s
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(3000));
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(3000));
    }

    #[test]
    fn idle_capacity_flows_to_busy_queue() {
        // only adhoc has work: it should get ALL slots despite weight 1.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-only", 4, 1000, 0));
        let report = SimulatorEngine::new(
            EngineConfig::new(4, 4),
            &trace,
            Box::new(CapacityPolicy::two_tier()),
        )
        .run();
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(1000));
    }

    #[test]
    fn fifo_within_queue() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-late", 1, 1000, 10));
        trace.push(named_job("adhoc-early", 1, 1000, 0));
        let report = SimulatorEngine::new(
            EngineConfig::new(1, 1),
            &trace,
            Box::new(CapacityPolicy::two_tier()),
        )
        .run();
        assert!(report.jobs[1].completion < report.jobs[0].completion);
    }
}
