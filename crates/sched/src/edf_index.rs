//! Deadline-ordered incremental index for the EDF policies.
//!
//! The original MaxEDF/MinEDF implementations scanned the whole
//! [`JobQueue`](simmr_core::JobQueue) with `min_by_key(edf_key)` on every
//! map/reduce pick and every preemption check — O(active jobs) per
//! decision, O(n²) per run, the last quadratic policy in the tree
//! (`maxedf` ran ~85× slower than `fifo` at 10k jobs). This module
//! replaces the scans with **keyed lazy-deletion heaps** maintained in
//! O(log n) per queue mutation from the three `SchedulerPolicy` hooks
//! (`on_job_queued` / `on_entry_mutated` / `on_job_dequeued`).
//!
//! # Design
//!
//! A job's EDF key `(deadline, arrival, id)` is **immutable** for the
//! job's whole lifetime, so the index never re-prioritizes an entry —
//! the only thing that changes is whether the job currently *qualifies*
//! for a view (has a schedulable map, has a schedulable reduce, has a
//! running map to lose). Each view is an [`EdfHeap`]:
//!
//! * a binary heap of keys (min-order for the "most urgent schedulable"
//!   views, max-order for the "latest-deadline running victim" view),
//! * plus one membership flag per job id.
//!
//! **Insertion is edge-triggered:** the owning policy offers a job's key
//! whenever its qualifying predicate transitions false → true (the hook
//! delivers the entry before and after every mutation, so the edge is
//! always observable). The membership flag suppresses duplicates — a
//! job has at most one entry per heap at any time.
//!
//! **Deletion is lazy:** nothing is removed when a predicate turns false
//! or a job departs. Instead, [`EdfHeap::peek_valid`] re-validates the
//! top against the live queue through a caller-supplied predicate and
//! pops stale entries (clearing their membership) until a valid top
//! surfaces. Every pop is paid for by an earlier edge-triggered push,
//! so the amortized cost per queue mutation stays O(log n); a peek that
//! finds the top already valid is O(1).
//!
//! The key embeds the job id, which makes the order total — no two
//! entries compare equal — so both heap orders are deterministic, and
//! the valid top of a min view is *exactly* the job a full
//! `min_by_key(edf_key)` scan over qualifying entries would return.
//! [`DeadlineIndex::verify_against`] checks that equivalence's one
//! precondition (every qualifying job is a member) against a full-scan
//! oracle; the `with_full_scan()` reference modes on the EDF policies
//! and the `edf_incremental_matches_full_scan_reference` differential
//! proptest in `tests/` hold the schedules themselves to it.

use simmr_core::JobEntry;
use simmr_types::{JobId, SimTime};
use std::collections::BinaryHeap;

/// The EDF ordering key: `(deadline, arrival, id)`, jobs without a
/// deadline last. Identical to [`JobEntry::edf_key`] and immutable for
/// a job's lifetime.
pub type EdfKey = (SimTime, SimTime, JobId);

/// Heap slot wrapper: `MAX = false` builds a min-heap over [`EdfKey`]
/// (most urgent first), `MAX = true` a max-heap (latest deadline first).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot<const MAX: bool>(EdfKey);

impl<const MAX: bool> Ord for Slot<MAX> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if MAX {
            self.0.cmp(&other.0)
        } else {
            other.0.cmp(&self.0)
        }
    }
}

impl<const MAX: bool> PartialOrd for Slot<MAX> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One view of the index: a keyed heap with lazy deletion.
///
/// Membership invariant (maintained by the owning policy): **every job
/// whose qualifying predicate currently holds is a member.** Members
/// whose predicate has since turned false are stale and are skipped (and
/// evicted) by [`Self::peek_valid`] on contact.
#[derive(Debug, Clone, Default)]
pub struct EdfHeap<const MAX: bool> {
    heap: BinaryHeap<Slot<MAX>>,
    /// `member[id] == true` ⇔ the heap holds exactly one entry for `id`.
    member: Vec<bool>,
}

impl<const MAX: bool> EdfHeap<MAX> {
    /// Inserts `key` unless its job is already a member — O(log n), and
    /// a no-op for already-present jobs, so offering on every predicate
    /// edge is safe.
    pub fn offer(&mut self, key: EdfKey) {
        let i = key.2.index();
        if i >= self.member.len() {
            self.member.resize(i + 1, false);
        }
        if !self.member[i] {
            self.member[i] = true;
            self.heap.push(Slot(key));
        }
    }

    /// True if the heap currently holds an entry for `id` (which may be
    /// stale until the next validated peek evicts it).
    pub fn contains(&self, id: JobId) -> bool {
        self.member.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of entries (valid + stale) currently in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when the heap holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The best key whose job still satisfies `valid`, evicting stale
    /// tops on the way. Does **not** remove the returned entry: the job
    /// keeps its heap slot until it actually stops qualifying.
    pub fn peek_valid(&mut self, mut valid: impl FnMut(JobId) -> bool) -> Option<EdfKey> {
        while let Some(top) = self.heap.peek() {
            let key = top.0;
            if valid(key.2) {
                return Some(key);
            }
            self.member[key.2.index()] = false;
            self.heap.pop();
        }
        None
    }

    /// Heap/membership consistency: exactly one heap entry per member
    /// flag. O(n); invariant-checker only.
    fn members_consistent(&self) -> bool {
        self.heap.len() == self.member.iter().filter(|&&m| m).count()
    }
}

/// The three views the EDF policies schedule from.
///
/// The map/reduce views order *schedulable* jobs most-urgent-first (what
/// `choose_next_map_task` / `choose_next_reduce_task` pop); the running
/// view orders jobs with running maps latest-deadline-first (the
/// preemption victim search). What "schedulable" means is the owning
/// policy's business — MinEDF layers its under-`wanted`-cap filter into
/// the predicate it offers edges for and validates peeks with; the index
/// itself only sees the resulting booleans.
#[derive(Debug, Clone, Default)]
pub struct DeadlineIndex {
    /// Min view over jobs with a schedulable map.
    pub maps: EdfHeap<false>,
    /// Min view over jobs with a schedulable reduce.
    pub reduces: EdfHeap<false>,
    /// Max view over jobs with at least one running map (victim pool).
    pub running: EdfHeap<true>,
}

impl DeadlineIndex {
    /// Records one job's predicate transitions: each view receives the
    /// key when its predicate goes false → true. Pass the pre-mutation
    /// state as all-false for a freshly queued job.
    pub fn apply(
        &mut self,
        key: EdfKey,
        map: (bool, bool),
        reduce: (bool, bool),
        running: (bool, bool),
    ) {
        if !map.0 && map.1 {
            self.maps.offer(key);
        }
        if !reduce.0 && reduce.1 {
            self.reduces.offer(key);
        }
        if !running.0 && running.1 {
            self.running.offer(key);
        }
    }

    /// The latest-deadline job with a running map to lose on behalf of
    /// `urgent` — a job with a strictly later key than the urgent job,
    /// per the shared EDF preemption rule. `has_running_map` validates
    /// candidates against the live queue. A plain peek suffices: keys
    /// are a total order, so if the running-view top *is* the urgent job
    /// (or sorts at or before it) no other running job can sort strictly
    /// after the urgent one either.
    pub fn preemption_victim(
        &mut self,
        urgent: EdfKey,
        has_running_map: impl FnMut(JobId) -> bool,
    ) -> Option<JobId> {
        let victim = self.running.peek_valid(has_running_map)?;
        (victim > urgent).then_some(victim.2)
    }

    /// Cross-checks the index against a full scan of the live queue:
    /// every entry for which `map_ok` / `reduce_ok` / running-maps holds
    /// must be a member of the corresponding view, and each view's heap
    /// must agree with its membership flags. Stale members are legal —
    /// that is the lazy-deletion debt — so this is a one-sided check;
    /// the differential proptest pins the schedules themselves.
    ///
    /// # Panics
    ///
    /// Panics in the invariant checker's format on any violation.
    pub fn verify_against<'a>(
        &self,
        entries: impl Iterator<Item = (&'a JobEntry, bool, bool)>,
        policy: &str,
    ) {
        for (e, map_ok, reduce_ok) in entries {
            let views: [(&str, bool, bool); 3] = [
                ("map", map_ok, self.maps.contains(e.id)),
                ("reduce", reduce_ok, self.reduces.contains(e.id)),
                ("running", e.running_maps > 0, self.running.contains(e.id)),
            ];
            for (view, qualifies, member) in views {
                if qualifies && !member {
                    panic!(
                        "engine invariant violated [edf-index]: {policy} job {} qualifies for \
                         the {view} view but is not indexed (entry {e:?})",
                        e.id
                    );
                }
            }
        }
        for (view, consistent) in [
            ("map", self.maps.members_consistent()),
            ("reduce", self.reduces.members_consistent()),
            ("running", self.running.members_consistent()),
        ] {
            if !consistent {
                panic!(
                    "engine invariant violated [edf-index]: {policy} {view} view heap and \
                     membership flags disagree"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(id: u32, deadline: u64) -> EdfKey {
        (SimTime::from_millis(deadline), SimTime::ZERO, JobId(id))
    }

    #[test]
    fn min_heap_orders_by_deadline() {
        let mut h: EdfHeap<false> = EdfHeap::default();
        h.offer(key(0, 500));
        h.offer(key(1, 100));
        h.offer(key(2, 300));
        assert_eq!(h.peek_valid(|_| true), Some(key(1, 100)));
        // peeking does not remove
        assert_eq!(h.len(), 3);
        assert_eq!(h.peek_valid(|_| true), Some(key(1, 100)));
    }

    #[test]
    fn max_heap_orders_latest_first() {
        let mut h: EdfHeap<true> = EdfHeap::default();
        h.offer(key(0, 500));
        h.offer(key(1, 100));
        assert_eq!(h.peek_valid(|_| true), Some(key(0, 500)));
    }

    #[test]
    fn offer_deduplicates_by_membership() {
        let mut h: EdfHeap<false> = EdfHeap::default();
        h.offer(key(3, 100));
        h.offer(key(3, 100));
        h.offer(key(3, 100));
        assert_eq!(h.len(), 1);
        assert!(h.contains(JobId(3)));
        assert!(!h.contains(JobId(4)));
    }

    #[test]
    fn stale_tops_are_evicted_and_can_rejoin() {
        let mut h: EdfHeap<false> = EdfHeap::default();
        h.offer(key(1, 100));
        h.offer(key(2, 200));
        // job 1 no longer qualifies: evicted on contact, membership drops
        assert_eq!(h.peek_valid(|id| id != JobId(1)), Some(key(2, 200)));
        assert_eq!(h.len(), 1);
        assert!(!h.contains(JobId(1)));
        // a later false → true edge re-offers it
        h.offer(key(1, 100));
        assert_eq!(h.peek_valid(|_| true), Some(key(1, 100)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn preemption_victim_requires_strictly_later_deadline() {
        let mut index = DeadlineIndex::default();
        index.running.offer(key(1, 500));
        index.running.offer(key(2, 900));
        // urgent at 100: job 2 (latest deadline) is the victim
        assert_eq!(index.preemption_victim(key(0, 100), |_| true), Some(JobId(2)));
        // the urgent job is itself the latest-deadline running job: no
        // other running job can sort strictly after it
        assert_eq!(index.preemption_victim(key(2, 900), |_| true), None);
        // no running job has a strictly later deadline than the urgent
        assert_eq!(index.preemption_victim(key(0, 1_000), |_| true), None);
        // equal deadline: the id tiebreak decides strictness both ways
        assert_eq!(index.preemption_victim(key(3, 900), |_| true), None);
        assert_eq!(index.preemption_victim(key(0, 900), |_| true), Some(JobId(2)));
        // victims must still be running; stale entries evict on contact
        assert_eq!(index.preemption_victim(key(0, 100), |id| id != JobId(2)), Some(JobId(1)));
        assert!(!index.running.contains(JobId(2)));
    }
}
