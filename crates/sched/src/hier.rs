//! Hierarchical pool-tree scheduling (extension beyond the paper).
//!
//! SimMR's §V case study replays a multi-user Facebook workload, but the
//! flat [`CapacityPolicy`](crate::CapacityPolicy) cannot express what
//! Hadoop's Fair/Capacity schedulers (the paper's refs. 2–3) actually
//! provide: *nested* pools with weights, min/max shares and min-share
//! preemption. [`HierPolicy`] implements that model on top of the
//! declarative [`PoolSpec`] tree from [`pool`](crate::pool):
//!
//! * **Routing** — jobs land in the first leaf (depth-first order) whose
//!   routing prefix is a prefix of the job name, falling back to the last
//!   leaf. A one-level tree therefore routes exactly like
//!   `CapacityPolicy`.
//! * **Slot assignment** — each free slot walks the tree from the root,
//!   picking at every level the most under-served *eligible* child:
//!   children below their min share come first (smallest `running/min`
//!   ratio), then smallest `running/weight`; ties break on listed order.
//!   A child is eligible when its subtree has schedulable work and every
//!   node on the path respects its max share. At the leaf, the
//!   earliest-arrived schedulable job wins — so a flat tree with no
//!   min/max shares reproduces `CapacityPolicy` schedules byte for byte.
//! * **Min-share preemption** — a pool sitting below its map min share
//!   with pending work for longer than its `preemption_timeout` triggers
//!   the engine's `map_preemptions` path: one task of the most over-share
//!   pool (largest `running − min` surplus) is killed per round — the
//!   youngest running task of that pool's youngest job, Hadoop kill
//!   semantics — until the deficit clears. Timeout 0 preempts in the same
//!   scheduling pass the pool starves in; the starvation clocks advance
//!   on simulated time via [`SchedulerPolicy::next_wakeup`], so a timeout
//!   expiring between queue events still fires on time.
//!
//! Determinism: choices are a pure function of queue contents plus the
//! assignment map; starvation clocks only read [`JobQueue::now`] inside
//! the sanctioned `map_preemptions` / `next_wakeup` hooks.

use crate::pool::{join_prefix, validate_pools, PoolSpec};
use simmr_core::{JobQueue, SchedulerPolicy};
use simmr_types::{DurationMs, JobId, JobTemplate, SimTime, TaskKind};
use std::collections::HashMap;

/// Map/reduce index into per-kind share arrays.
fn ki(kind: TaskKind) -> usize {
    match kind {
        TaskKind::Map => 0,
        TaskKind::Reduce => 1,
    }
}

/// One arena node of the instantiated pool tree.
#[derive(Debug)]
struct Node {
    /// Full routing prefix (leaves) / subtree prefix (internal nodes).
    prefix: String,
    weight: f64,
    /// Min share per slot kind; 0 means none.
    min: [usize; 2],
    /// Max share per slot kind.
    max: [Option<usize>; 2],
    /// Min-share preemption timeout; `None` never preempts for this pool.
    timeout: Option<DurationMs>,
    parent: usize,
    children: Vec<usize>,
}

/// Hierarchical pool-tree scheduling policy.
#[derive(Debug)]
pub struct HierPolicy {
    /// Arena in depth-first order; 0 is a synthetic root, and a parent
    /// always precedes its children (aggregation sweeps in reverse).
    nodes: Vec<Node>,
    /// Leaf node indices, depth-first — the routing order.
    leaves: Vec<usize>,
    /// Active job → leaf node index.
    assignment: HashMap<JobId, usize>,
    /// Per-leaf active-job counts, kept incrementally and cross-checked
    /// against a recount by the invariant hook.
    leaf_jobs: Vec<usize>,
    /// When each pool dropped below its map min share (with pending
    /// work), or `None` while satisfied.
    starved_since: Vec<Option<SimTime>>,
    /// Scratch: per-node running tasks / schedulable pending tasks of the
    /// current kind, subtree-aggregated.
    running: Vec<usize>,
    pending: Vec<usize>,
    /// Scratch: subtree has schedulable work and is under every max cap.
    eligible: Vec<bool>,
}

impl HierPolicy {
    /// Instantiates the policy from a validated pool forest.
    ///
    /// # Panics
    ///
    /// Panics if the tree fails [`validate_pools`] (empty, non-positive
    /// weight, min > max, ...).
    pub fn new(pools: Vec<PoolSpec>) -> Self {
        if let Err(e) = validate_pools(&pools) {
            panic!("invalid pool tree: {e}");
        }
        let mut policy = HierPolicy {
            nodes: vec![Node {
                prefix: String::new(),
                weight: 1.0,
                min: [0, 0],
                max: [None, None],
                timeout: None,
                parent: 0,
                children: Vec::new(),
            }],
            leaves: Vec::new(),
            assignment: HashMap::new(),
            leaf_jobs: Vec::new(),
            starved_since: Vec::new(),
            running: Vec::new(),
            pending: Vec::new(),
            eligible: Vec::new(),
        };
        for pool in &pools {
            policy.add_subtree(pool, 0, "");
        }
        let n = policy.nodes.len();
        policy.leaf_jobs = vec![0; n];
        policy.starved_since = vec![None; n];
        policy
    }

    /// The `CapacityPolicy::two_tier` shape as a one-level tree: `prod`
    /// (weight 2) and a catch-all (weight 1).
    pub fn two_tier() -> Self {
        HierPolicy::new(vec![PoolSpec::leaf("prod").weight(2.0), PoolSpec::leaf("").weight(1.0)])
    }

    fn add_subtree(&mut self, pool: &PoolSpec, parent: usize, parent_prefix: &str) {
        let prefix = join_prefix(parent_prefix, &pool.name);
        let idx = self.nodes.len();
        self.nodes.push(Node {
            prefix: prefix.clone(),
            weight: pool.weight,
            min: [pool.min_maps.unwrap_or(0), pool.min_reduces.unwrap_or(0)],
            max: [pool.max_maps, pool.max_reduces],
            timeout: pool.preemption_timeout,
            parent,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        if pool.children.is_empty() {
            self.leaves.push(idx);
        } else {
            for child in &pool.children {
                self.add_subtree(child, idx, &prefix);
            }
        }
    }

    /// Leaf a job name routes to: first leaf whose prefix matches, else
    /// the last leaf — the `CapacityPolicy` routing rule on the
    /// flattened leaf list.
    fn route(&self, job_name: &str) -> usize {
        self.leaves
            .iter()
            .copied()
            .find(|&l| job_name.starts_with(&self.nodes[l].prefix))
            .unwrap_or(self.leaves[self.leaves.len() - 1])
    }

    /// The pool prefix a job was assigned to (for tests/diagnostics).
    pub fn pool_of(&self, id: JobId) -> Option<&str> {
        self.assignment.get(&id).map(|&l| self.nodes[l].prefix.as_str())
    }

    /// Leaf routing prefixes in routing (depth-first) order.
    pub fn leaf_prefixes(&self) -> Vec<&str> {
        self.leaves.iter().map(|&l| self.nodes[l].prefix.as_str()).collect()
    }

    fn entry_counts(e: &simmr_core::JobEntry, kind: TaskKind) -> (usize, usize) {
        match kind {
            TaskKind::Map => {
                (e.running_maps, if e.has_schedulable_map() { e.pending_maps } else { 0 })
            }
            TaskKind::Reduce => {
                (e.running_reduces, if e.has_schedulable_reduce() { e.pending_reduces } else { 0 })
            }
        }
    }

    /// Per-node running/pending counts of `kind`, aggregated over
    /// subtrees (a parent always precedes its children in the arena, so
    /// one reverse sweep rolls leaves up to the root).
    fn aggregate_into(
        &self,
        jobq: &JobQueue,
        kind: TaskKind,
        running: &mut Vec<usize>,
        pending: &mut Vec<usize>,
    ) {
        let n = self.nodes.len();
        running.clear();
        running.resize(n, 0);
        pending.clear();
        pending.resize(n, 0);
        for e in jobq.entries() {
            let Some(&leaf) = self.assignment.get(&e.id) else { continue };
            let (r, p) = Self::entry_counts(e, kind);
            running[leaf] += r;
            pending[leaf] += p;
        }
        for i in (1..n).rev() {
            let parent = self.nodes[i].parent;
            running[parent] += running[i];
            pending[parent] += pending[i];
        }
    }

    fn aggregate(&mut self, jobq: &JobQueue, kind: TaskKind) {
        let mut running = std::mem::take(&mut self.running);
        let mut pending = std::mem::take(&mut self.pending);
        self.aggregate_into(jobq, kind, &mut running, &mut pending);
        self.running = running;
        self.pending = pending;
    }

    /// Marks each node whose subtree can accept a launch: schedulable
    /// work below it and `running < max` at every level. Children are
    /// computed before parents (reverse arena order).
    fn mark_eligible(&mut self, kind: TaskKind) {
        let k = ki(kind);
        let n = self.nodes.len();
        self.eligible.clear();
        self.eligible.resize(n, false);
        for i in (0..n).rev() {
            let node = &self.nodes[i];
            let has_work = if node.children.is_empty() {
                self.pending[i] > 0
            } else {
                node.children.iter().any(|&c| self.eligible[c])
            };
            self.eligible[i] = has_work && node.max[k].is_none_or(|m| self.running[i] < m);
        }
    }

    /// The tree walk: from the root, descend into the most under-served
    /// eligible child (min-share deficit group first, then
    /// running/weight), and pick FIFO within the final leaf.
    fn choose(&mut self, jobq: &JobQueue, kind: TaskKind) -> Option<JobId> {
        self.aggregate(jobq, kind);
        self.mark_eligible(kind);
        if !self.eligible[0] {
            return None;
        }
        let k = ki(kind);
        let mut node = 0;
        while !self.nodes[node].children.is_empty() {
            let mut best: Option<(f64, usize)> = None;
            // pass 1: children below their min share, by running/min
            for &c in &self.nodes[node].children {
                let min = self.nodes[c].min[k];
                if self.eligible[c] && min > 0 && self.running[c] < min {
                    let ratio = self.running[c] as f64 / min as f64;
                    if best.is_none_or(|(b, _)| ratio < b) {
                        best = Some((ratio, c));
                    }
                }
            }
            // pass 2: all eligible children, by running/weight
            if best.is_none() {
                for &c in &self.nodes[node].children {
                    if !self.eligible[c] {
                        continue;
                    }
                    let ratio = self.running[c] as f64 / self.nodes[c].weight;
                    if best.is_none_or(|(b, _)| ratio < b) {
                        best = Some((ratio, c));
                    }
                }
            }
            node = best?.1;
        }
        jobq.entries()
            .iter()
            .filter(|e| {
                self.assignment.get(&e.id) == Some(&node)
                    && match kind {
                        TaskKind::Map => e.has_schedulable_map(),
                        TaskKind::Reduce => e.has_schedulable_reduce(),
                    }
            })
            .min_by_key(|e| (e.arrival, e.id))
            .map(|e| e.id)
    }

    /// Updates the per-pool starvation clocks from the current queue
    /// state: a pool is starved while `running < min_maps` with pending
    /// map work in its subtree. Reads `jobq.now`, so it only runs from
    /// the time-sanctioned hooks. Leaves the map aggregates in scratch.
    fn refresh_starvation(&mut self, jobq: &JobQueue) {
        self.aggregate(jobq, TaskKind::Map);
        let now = jobq.now;
        for i in 0..self.nodes.len() {
            let min = self.nodes[i].min[0];
            if min > 0 && self.running[i] < min && self.pending[i] > 0 {
                self.starved_since[i].get_or_insert(now);
            } else {
                self.starved_since[i] = None;
            }
        }
    }

    /// True if `node` lies in the subtree rooted at `of`.
    fn in_subtree(&self, node: usize, of: usize) -> bool {
        let mut n = node;
        loop {
            if n == of {
                return true;
            }
            if n == 0 {
                return false;
            }
            n = self.nodes[n].parent;
        }
    }

    /// Over-share victim leaf for a preemption on behalf of
    /// `starved`: a leaf outside the starved subtree with a running map
    /// to spare, whose whole path (outside the starved pool's ancestor
    /// chain) stays strictly above its min share after losing one slot.
    /// Largest `running − min` surplus wins; ties break depth-first.
    fn victim_leaf(&self, starved: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        'leaves: for &leaf in &self.leaves {
            if self.in_subtree(leaf, starved) {
                continue;
            }
            let mut n = leaf;
            loop {
                if !self.in_subtree(starved, n) && self.running[n] <= self.nodes[n].min[0] {
                    continue 'leaves;
                }
                if n == 0 {
                    break;
                }
                n = self.nodes[n].parent;
            }
            let surplus = self.running[leaf] - self.nodes[leaf].min[0];
            if best.is_none_or(|(s, _)| surplus > s) {
                best = Some((surplus, leaf));
            }
        }
        best.map(|(_, leaf)| leaf)
    }
}

impl SchedulerPolicy for HierPolicy {
    fn name(&self) -> &str {
        "hier"
    }

    fn on_job_arrival(
        &mut self,
        id: JobId,
        template: &JobTemplate,
        _relative_deadline: Option<DurationMs>,
        _cluster: simmr_types::ClusterSpec,
    ) {
        let leaf = self.route(&template.name);
        self.assignment.insert(id, leaf);
        self.leaf_jobs[leaf] += 1;
    }

    fn on_job_departure(&mut self, id: JobId) {
        if let Some(leaf) = self.assignment.remove(&id) {
            self.leaf_jobs[leaf] -= 1;
        }
    }

    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        self.choose(jobq, TaskKind::Map)
    }

    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        self.choose(jobq, TaskKind::Reduce)
    }

    /// One victim per round: the engine re-consults after every kill +
    /// relaunch, so the deficit pool reclaims exactly as many slots as
    /// its pending work can fill and no kill is wasted.
    fn map_preemptions(&mut self, jobq: &JobQueue, victims: &mut Vec<JobId>) {
        self.refresh_starvation(jobq);
        let now = jobq.now;
        // most-starved pool whose timeout has expired
        let mut starved: Option<(f64, usize)> = None;
        for i in 0..self.nodes.len() {
            let (Some(since), Some(timeout)) = (self.starved_since[i], self.nodes[i].timeout)
            else {
                continue;
            };
            if now.since(since) < timeout {
                continue;
            }
            let ratio = self.running[i] as f64 / self.nodes[i].min[0] as f64;
            if starved.is_none_or(|(b, _)| ratio < b) {
                starved = Some((ratio, i));
            }
        }
        let Some((_, starved_node)) = starved else { return };
        let Some(leaf) = self.victim_leaf(starved_node) else { return };
        // youngest job of the victim pool: its most recently launched
        // running map is what the engine will kill
        let victim = jobq
            .entries()
            .iter()
            .filter(|e| self.assignment.get(&e.id) == Some(&leaf) && e.running_maps > 0)
            .max_by_key(|e| (e.arrival, e.id))
            .map(|e| e.id);
        if let Some(id) = victim {
            victims.push(id);
        }
    }

    fn next_wakeup(&mut self, jobq: &JobQueue) -> Option<SimTime> {
        self.refresh_starvation(jobq);
        let now = jobq.now;
        let mut due: Option<SimTime> = None;
        for i in 0..self.nodes.len() {
            let (Some(since), Some(timeout)) = (self.starved_since[i], self.nodes[i].timeout)
            else {
                continue;
            };
            let at = since + timeout;
            if at > now && due.is_none_or(|d| at < d) {
                due = Some(at);
            }
        }
        due
    }

    /// Per-pool share accounting, cross-checked by the engine's invariant
    /// checker after every settled event batch.
    fn verify_invariants(&self, jobq: &JobQueue) {
        // (1) routing table covers exactly the active jobs
        if self.assignment.len() != jobq.len() {
            panic!(
                "engine invariant violated [pool-routing]: {} pool assignments for {} active jobs",
                self.assignment.len(),
                jobq.len()
            );
        }
        let mut recount = vec![0usize; self.nodes.len()];
        for e in jobq.entries() {
            match self.assignment.get(&e.id) {
                Some(&leaf) if self.leaves.contains(&leaf) => recount[leaf] += 1,
                got => panic!(
                    "engine invariant violated [pool-routing]: job {} assigned to {:?}, \
                     not a leaf pool",
                    e.id, got
                ),
            }
        }
        // (2) incremental per-leaf job counts match a recount
        if recount != self.leaf_jobs {
            panic!(
                "engine invariant violated [pool-job-accounting]: leaf job counts {:?} != \
                 recount {:?}",
                self.leaf_jobs, recount
            );
        }
        // (3) starvation clocks agree with freshly derived share state
        let (mut running, mut pending) = (Vec::new(), Vec::new());
        self.aggregate_into(jobq, TaskKind::Map, &mut running, &mut pending);
        for (i, node) in self.nodes.iter().enumerate() {
            let starved = node.min[0] > 0 && running[i] < node.min[0] && pending[i] > 0;
            if starved != self.starved_since[i].is_some() {
                panic!(
                    "engine invariant violated [pool-starvation-clock]: pool {:?} derived \
                     starved={starved} (running {} / min {} / pending {}) but clock is {:?}",
                    node.prefix, running[i], node.min[0], pending[i], self.starved_since[i]
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parse_pool_spec;
    use crate::CapacityPolicy;
    use simmr_core::{EngineConfig, SimulatorEngine};
    use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

    fn named_job(name: &str, maps: usize, map_ms: u64, arrival_ms: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new(name, vec![map_ms; maps], vec![], vec![], vec![]).unwrap(),
            SimTime::from_millis(arrival_ms),
        )
    }

    fn hier(spec: &str) -> HierPolicy {
        HierPolicy::new(parse_pool_spec(spec).unwrap())
    }

    #[test]
    fn routing_matches_leaf_prefixes() {
        let p = hier("prod{etl,serving},adhoc");
        assert_eq!(p.leaf_prefixes(), vec!["prod-etl", "prod-serving", "adhoc"]);
        assert_eq!(p.route("prod-etl-0001"), p.leaves[0]);
        assert_eq!(p.route("prod-serving-x"), p.leaves[1]);
        assert_eq!(p.route("adhoc-sort"), p.leaves[2]);
        // no match falls back to the last leaf
        assert_eq!(p.route("mystery"), p.leaves[2]);
    }

    #[test]
    #[should_panic(expected = "invalid pool tree")]
    fn rejects_empty_tree() {
        HierPolicy::new(vec![]);
    }

    #[test]
    fn flat_tree_matches_capacity_schedule() {
        // identical queues, identical weights: the one-level tree must
        // reproduce CapacityPolicy task for task
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("prod-big", 12, 1000, 0));
        trace.push(named_job("adhoc-big", 6, 700, 50));
        trace.push(named_job("prod-late", 3, 400, 900));
        let run = |policy: Box<dyn SchedulerPolicy>| {
            SimulatorEngine::new(EngineConfig::new(6, 6).with_timeline(), &trace, policy).run()
        };
        let capacity = run(Box::new(CapacityPolicy::two_tier()));
        let tree = run(Box::new(HierPolicy::two_tier()));
        assert_eq!(capacity, tree);
    }

    #[test]
    fn weighted_split_between_pools() {
        // same scenario as the CapacityPolicy unit test: prod w=2 vs
        // adhoc w=1 on 6 slots → 4/2 split, both finish at 3 s
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("prod-big", 12, 1000, 0));
        trace.push(named_job("adhoc-big", 6, 1000, 0));
        let report = SimulatorEngine::new(
            EngineConfig::new(6, 6),
            &trace,
            Box::new(hier("prod[w=2],adhoc[w=1]")),
        )
        .run();
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(3000));
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(3000));
    }

    #[test]
    fn max_share_caps_a_subtree() {
        // adhoc capped at 2 of 6 slots: its 6 tasks take 3 rounds even
        // with prod idle after t=0 (no other work)
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-burst", 6, 1000, 0));
        let report = SimulatorEngine::new(
            EngineConfig::new(6, 6),
            &trace,
            Box::new(hier("prod,adhoc[max=2]")),
        )
        .run();
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(3000));
    }

    #[test]
    fn min_share_preemption_restores_deficit() {
        // adhoc grabs all 4 slots at t=0; prod arrives at t=100 with a
        // min share of 3 and a 200 ms timeout → at t=300 the scheduler
        // kills 3 adhoc maps (progress lost) and prod runs 3 tasks.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-hog", 4, 10_000, 0));
        trace.push(named_job("prod-urgent", 3, 500, 100));
        let report = SimulatorEngine::new(
            EngineConfig::new(4, 4).with_timeline().with_invariants(),
            &trace,
            Box::new(hier("prod[min=3,timeout=0.2],adhoc")),
        )
        .run();
        // prod gets its 3 slots at t=300 and finishes at t=800
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(800));
        // adhoc lost 3 tasks' progress at t=300: 1 survivor finishes at
        // 10 s, the 3 re-runs start at t=800 → done at 10.8 s
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(10_800));
    }

    #[test]
    fn timeout_zero_preempts_in_the_same_pass() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-hog", 2, 10_000, 0));
        trace.push(named_job("prod-now", 1, 100, 50));
        let report = SimulatorEngine::new(
            EngineConfig::new(2, 2).with_invariants(),
            &trace,
            Box::new(hier("prod[min=1,timeout=0],adhoc")),
        )
        .run();
        // preempted at arrival: prod finishes at 150 ms
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(150));
    }

    #[test]
    fn no_timeout_never_preempts() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-hog", 2, 1000, 0));
        trace.push(named_job("prod-now", 1, 100, 50));
        let report = SimulatorEngine::new(
            EngineConfig::new(2, 2).with_invariants(),
            &trace,
            Box::new(hier("prod[min=1],adhoc")),
        )
        .run();
        // min share shapes selection but without a timeout nothing is
        // killed: prod waits for a natural slot at t=1000
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(1100));
    }
}
