//! Hierarchical pool-tree scheduling (extension beyond the paper).
//!
//! SimMR's §V case study replays a multi-user Facebook workload, but the
//! flat [`CapacityPolicy`](crate::CapacityPolicy) cannot express what
//! Hadoop's Fair/Capacity schedulers (the paper's refs. 2–3) actually
//! provide: *nested* pools with weights, min/max shares and min-share
//! preemption. [`HierPolicy`] implements that model on top of the
//! declarative [`PoolSpec`] tree from [`pool`](crate::pool):
//!
//! * **Routing** — jobs land in the first leaf (depth-first order) whose
//!   routing prefix is a prefix of the job name, falling back to the last
//!   leaf. A one-level tree therefore routes exactly like
//!   `CapacityPolicy`.
//! * **Slot assignment** — each free slot walks the tree from the root,
//!   picking at every level the most under-served *eligible* child:
//!   children below their min share come first (smallest `running/min`
//!   ratio), then smallest `running/weight`; ties break on listed order.
//!   A child is eligible when its subtree has schedulable work and every
//!   node on the path respects its max share. At the leaf, the
//!   earliest-arrived schedulable job wins — so a flat tree with no
//!   min/max shares reproduces `CapacityPolicy` schedules byte for byte.
//! * **Min-share preemption** — a pool sitting below its map min share
//!   with pending work for longer than its `preemption_timeout` triggers
//!   the engine's `map_preemptions` path: one task of the most over-share
//!   pool (largest `running − min` surplus) is killed per round — the
//!   youngest running task of that pool's youngest job, Hadoop kill
//!   semantics — until the deficit clears. Timeout 0 preempts in the same
//!   scheduling pass the pool starves in; the starvation clocks advance
//!   on simulated time via [`SchedulerPolicy::next_wakeup`], so a timeout
//!   expiring between queue events still fires on time. A kill is only
//!   taken when the simulated relaunch of the freed slot lands inside
//!   the starved subtree — a kill whose slot would bounce to a third
//!   pool would repeat at every pass forever without ever clearing the
//!   deficit.
//!
//! # Incremental share view
//!
//! Per-pool running/pending counts are *maintained*, not recomputed: the
//! engine reports every entry mutation through the
//! [`SchedulerPolicy::on_job_queued`] / [`on_entry_mutated`] /
//! [`on_job_dequeued`] hooks, and each delta walks the leaf's ancestor
//! chain in O(depth), keeping subtree sums exact between any two
//! `choose` calls. The final-leaf pick reads a per-leaf FIFO index —
//! job ids in `(arrival, id)` order with an amortized-O(1) per-kind
//! cursor, mirroring the [`JobQueue`] hint design (the cursor rewinds
//! whenever a job's schedulable-pending count goes 0 → >0). A retained
//! full-reaggregation path ([`HierPolicy::with_full_reaggregation`])
//! reproduces the pre-incremental behaviour for differential testing,
//! and `verify_invariants` cross-checks the maintained counters against
//! that full re-aggregation oracle.
//!
//! [`on_entry_mutated`]: SchedulerPolicy::on_entry_mutated
//! [`on_job_dequeued`]: SchedulerPolicy::on_job_dequeued
//!
//! Determinism: choices are a pure function of queue contents plus the
//! assignment map; starvation clocks only read [`JobQueue::now`] inside
//! the sanctioned `map_preemptions` / `next_wakeup` hooks.

use crate::pool::{join_prefix, validate_pools, PoolSpec};
use simmr_core::{JobEntry, JobQueue, SchedulerPolicy};
use simmr_types::{DurationMs, JobId, JobTemplate, SimTime, TaskKind};
use std::collections::HashMap;

/// Map/reduce index into per-kind share arrays.
fn ki(kind: TaskKind) -> usize {
    match kind {
        TaskKind::Map => 0,
        TaskKind::Reduce => 1,
    }
}

/// One arena node of the instantiated pool tree.
#[derive(Debug)]
struct Node {
    /// Full routing prefix (leaves) / subtree prefix (internal nodes).
    prefix: String,
    weight: f64,
    /// Min share per slot kind; 0 means none.
    min: [usize; 2],
    /// Max share per slot kind.
    max: [Option<usize>; 2],
    /// Min-share preemption timeout; `None` never preempts for this pool.
    timeout: Option<DurationMs>,
    parent: usize,
    children: Vec<usize>,
}

/// Hierarchical pool-tree scheduling policy.
#[derive(Debug)]
pub struct HierPolicy {
    /// Arena in depth-first order; 0 is a synthetic root, and a parent
    /// always precedes its children (aggregation sweeps in reverse).
    nodes: Vec<Node>,
    /// Leaf node indices, depth-first — the routing order.
    leaves: Vec<usize>,
    /// Active job → leaf node index.
    assignment: HashMap<JobId, usize>,
    /// When each pool dropped below its map min share (with pending
    /// work), or `None` while satisfied.
    starved_since: Vec<Option<SimTime>>,
    /// Maintained per-node subtree sums, indexed `[ki(kind)][node]`:
    /// running tasks and *schedulable* pending tasks (reduce pending
    /// counts 0 until the job turns reduce-eligible). Updated O(depth)
    /// per entry mutation by the engine hooks; never rebuilt from the
    /// queue outside the reference mode and the invariant oracle.
    run: [Vec<usize>; 2],
    pend: [Vec<usize>; 2],
    /// Per-leaf active job ids in `(arrival, id)` order — the FIFO index
    /// the final-leaf pick scans instead of the whole queue.
    leaf_fifo: Vec<Vec<JobId>>,
    /// Per-leaf, per-kind cursor into `leaf_fifo`: no schedulable job of
    /// that kind sits strictly before it. Rewound to 0 whenever a job in
    /// the leaf goes schedulable-pending 0 → >0.
    leaf_hint: Vec<[usize; 2]>,
    /// Use the pre-incremental full-reaggregation paths (reference mode
    /// for differential tests); the maintained state is still updated.
    reference: bool,
    /// Scratch: per-node counts of the current kind rebuilt from the
    /// queue — reference mode and the invariant oracle only.
    scratch_run: Vec<usize>,
    scratch_pend: Vec<usize>,
    /// Scratch: subtree has schedulable work and is under every max cap.
    eligible: Vec<bool>,
}

impl HierPolicy {
    /// Instantiates the policy from a validated pool forest.
    ///
    /// # Panics
    ///
    /// Panics if the tree fails [`validate_pools`] (empty, non-positive
    /// weight, min > max, ...).
    pub fn new(pools: Vec<PoolSpec>) -> Self {
        if let Err(e) = validate_pools(&pools) {
            panic!("invalid pool tree: {e}");
        }
        let mut policy = HierPolicy {
            nodes: vec![Node {
                prefix: String::new(),
                weight: 1.0,
                min: [0, 0],
                max: [None, None],
                timeout: None,
                parent: 0,
                children: Vec::new(),
            }],
            leaves: Vec::new(),
            assignment: HashMap::new(),
            starved_since: Vec::new(),
            run: [Vec::new(), Vec::new()],
            pend: [Vec::new(), Vec::new()],
            leaf_fifo: Vec::new(),
            leaf_hint: Vec::new(),
            reference: false,
            scratch_run: Vec::new(),
            scratch_pend: Vec::new(),
            eligible: Vec::new(),
        };
        for pool in &pools {
            policy.add_subtree(pool, 0, "");
        }
        let n = policy.nodes.len();
        policy.starved_since = vec![None; n];
        policy.run = [vec![0; n], vec![0; n]];
        policy.pend = [vec![0; n], vec![0; n]];
        policy.leaf_fifo = vec![Vec::new(); n];
        policy.leaf_hint = vec![[0, 0]; n];
        policy
    }

    /// Switches to the retained full-reaggregation reference mode: every
    /// `choose`/starvation pass rebuilds per-pool counts from the whole
    /// queue and scans it for the leaf pick, exactly as before the
    /// incremental share view. Schedules are identical by construction —
    /// the differential proptest in `tests/` holds both modes to that.
    pub fn with_full_reaggregation(mut self) -> Self {
        self.reference = true;
        self
    }

    /// The `CapacityPolicy::two_tier` shape as a one-level tree: `prod`
    /// (weight 2) and a catch-all (weight 1).
    pub fn two_tier() -> Self {
        HierPolicy::new(vec![PoolSpec::leaf("prod").weight(2.0), PoolSpec::leaf("").weight(1.0)])
    }

    fn add_subtree(&mut self, pool: &PoolSpec, parent: usize, parent_prefix: &str) {
        let prefix = join_prefix(parent_prefix, &pool.name);
        let idx = self.nodes.len();
        self.nodes.push(Node {
            prefix: prefix.clone(),
            weight: pool.weight,
            min: [pool.min_maps.unwrap_or(0), pool.min_reduces.unwrap_or(0)],
            max: [pool.max_maps, pool.max_reduces],
            timeout: pool.preemption_timeout,
            parent,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        if pool.children.is_empty() {
            self.leaves.push(idx);
        } else {
            for child in &pool.children {
                self.add_subtree(child, idx, &prefix);
            }
        }
    }

    /// Leaf a job name routes to: first leaf whose prefix matches, else
    /// the last leaf — the `CapacityPolicy` routing rule on the
    /// flattened leaf list.
    fn route(&self, job_name: &str) -> usize {
        self.leaves
            .iter()
            .copied()
            .find(|&l| job_name.starts_with(&self.nodes[l].prefix))
            .unwrap_or(self.leaves[self.leaves.len() - 1])
    }

    /// The pool prefix a job was assigned to (for tests/diagnostics).
    pub fn pool_of(&self, id: JobId) -> Option<&str> {
        self.assignment.get(&id).map(|&l| self.nodes[l].prefix.as_str())
    }

    /// Leaf routing prefixes in routing (depth-first) order.
    pub fn leaf_prefixes(&self) -> Vec<&str> {
        self.leaves.iter().map(|&l| self.nodes[l].prefix.as_str()).collect()
    }

    fn entry_counts(e: &simmr_core::JobEntry, kind: TaskKind) -> (usize, usize) {
        match kind {
            TaskKind::Map => {
                (e.running_maps, if e.has_schedulable_map() { e.pending_maps } else { 0 })
            }
            TaskKind::Reduce => {
                (e.running_reduces, if e.has_schedulable_reduce() { e.pending_reduces } else { 0 })
            }
        }
    }

    /// Per-node running/pending counts of `kind`, aggregated over
    /// subtrees (a parent always precedes its children in the arena, so
    /// one reverse sweep rolls leaves up to the root).
    fn aggregate_into(
        &self,
        jobq: &JobQueue,
        kind: TaskKind,
        running: &mut Vec<usize>,
        pending: &mut Vec<usize>,
    ) {
        let n = self.nodes.len();
        running.clear();
        running.resize(n, 0);
        pending.clear();
        pending.resize(n, 0);
        for e in jobq.entries() {
            let Some(&leaf) = self.assignment.get(&e.id) else { continue };
            let (r, p) = Self::entry_counts(e, kind);
            running[leaf] += r;
            pending[leaf] += p;
        }
        for i in (1..n).rev() {
            let parent = self.nodes[i].parent;
            running[parent] += running[i];
            pending[parent] += pending[i];
        }
    }

    /// Reference mode: rebuilds the scratch per-node counts of `kind`
    /// from the whole queue.
    fn aggregate(&mut self, jobq: &JobQueue, kind: TaskKind) {
        let mut running = std::mem::take(&mut self.scratch_run);
        let mut pending = std::mem::take(&mut self.scratch_pend);
        self.aggregate_into(jobq, kind, &mut running, &mut pending);
        self.scratch_run = running;
        self.scratch_pend = pending;
    }

    /// Applies one entry's counter delta for slot kind `k` along the
    /// leaf's ancestor chain, root inclusive — the O(depth) hook body.
    fn apply_delta(&mut self, leaf: usize, k: usize, d_run: isize, d_pend: isize) {
        if d_run == 0 && d_pend == 0 {
            return;
        }
        let mut node = leaf;
        loop {
            debug_assert!(self.run[k][node] as isize + d_run >= 0, "running underflow");
            debug_assert!(self.pend[k][node] as isize + d_pend >= 0, "pending underflow");
            self.run[k][node] = (self.run[k][node] as isize + d_run) as usize;
            self.pend[k][node] = (self.pend[k][node] as isize + d_pend) as usize;
            if node == 0 {
                break;
            }
            node = self.nodes[node].parent;
        }
    }

    /// Per-node map running/pending shares for the preemption machinery:
    /// maintained sums normally, the scratch rebuild in reference mode
    /// (which `refresh_starvation` fills first, as before).
    fn map_shares(&self, node: usize) -> (usize, usize) {
        if self.reference {
            (self.scratch_run[node], self.scratch_pend[node])
        } else {
            (self.run[0][node], self.pend[0][node])
        }
    }

    /// Marks each node whose subtree can accept a launch: schedulable
    /// work below it and `running < max` at every level. Children are
    /// computed before parents (reverse arena order).
    fn mark_eligible_into(
        nodes: &[Node],
        k: usize,
        running: &[usize],
        pending: &[usize],
        eligible: &mut Vec<bool>,
    ) {
        let n = nodes.len();
        eligible.clear();
        eligible.resize(n, false);
        for i in (0..n).rev() {
            let node = &nodes[i];
            let has_work = if node.children.is_empty() {
                pending[i] > 0
            } else {
                node.children.iter().any(|&c| eligible[c])
            };
            eligible[i] = has_work && node.max[k].is_none_or(|m| running[i] < m);
        }
    }

    /// The root-to-leaf descent over precomputed eligibility: at every
    /// level the most under-served eligible child (min-share deficit
    /// group first, then running/weight; ties on listed order).
    fn descend(nodes: &[Node], k: usize, running: &[usize], eligible: &[bool]) -> Option<usize> {
        if !eligible[0] {
            return None;
        }
        let mut node = 0;
        while !nodes[node].children.is_empty() {
            let mut best: Option<(f64, usize)> = None;
            // pass 1: children below their min share, by running/min
            for &c in &nodes[node].children {
                let min = nodes[c].min[k];
                if eligible[c] && min > 0 && running[c] < min {
                    let ratio = running[c] as f64 / min as f64;
                    if best.is_none_or(|(b, _)| ratio < b) {
                        best = Some((ratio, c));
                    }
                }
            }
            // pass 2: all eligible children, by running/weight
            if best.is_none() {
                for &c in &nodes[node].children {
                    if !eligible[c] {
                        continue;
                    }
                    let ratio = running[c] as f64 / nodes[c].weight;
                    if best.is_none_or(|(b, _)| ratio < b) {
                        best = Some((ratio, c));
                    }
                }
            }
            // an eligible internal node always has an eligible child
            node = best?.1;
        }
        Some(node)
    }

    /// The tree walk: from the root, descend into the most under-served
    /// eligible child, and pick FIFO within the final leaf.
    fn choose(&mut self, jobq: &JobQueue, kind: TaskKind) -> Option<JobId> {
        let k = ki(kind);
        if self.reference {
            self.aggregate(jobq, kind);
        }
        let mut eligible = std::mem::take(&mut self.eligible);
        let picked = {
            let running: &[usize] = if self.reference { &self.scratch_run } else { &self.run[k] };
            let pending: &[usize] = if self.reference { &self.scratch_pend } else { &self.pend[k] };
            Self::mark_eligible_into(&self.nodes, k, running, pending, &mut eligible);
            Self::descend(&self.nodes, k, running, &eligible)
        };
        self.eligible = eligible;
        let leaf = picked?;
        if self.reference {
            jobq.entries()
                .iter()
                .filter(|e| {
                    self.assignment.get(&e.id) == Some(&leaf)
                        && match kind {
                            TaskKind::Map => e.has_schedulable_map(),
                            TaskKind::Reduce => e.has_schedulable_reduce(),
                        }
                })
                .min_by_key(|e| (e.arrival, e.id))
                .map(|e| e.id)
        } else {
            self.pick_from_leaf(jobq, leaf, kind)
        }
    }

    /// FIFO pick within a leaf: resume the per-kind cursor and return the
    /// first schedulable job at or after it. Entries the cursor passes
    /// are non-schedulable *now* and stay skipped until a 0 → >0
    /// transition rewinds the cursor, so successive picks are amortized
    /// O(1) — the `JobQueue` hint discipline on a per-leaf list.
    fn pick_from_leaf(&mut self, jobq: &JobQueue, leaf: usize, kind: TaskKind) -> Option<JobId> {
        let k = ki(kind);
        let fifo = &self.leaf_fifo[leaf];
        let mut i = self.leaf_hint[leaf][k].min(fifo.len());
        while i < fifo.len() {
            if let Some(e) = jobq.get(fifo[i]) {
                let schedulable = match kind {
                    TaskKind::Map => e.has_schedulable_map(),
                    TaskKind::Reduce => e.has_schedulable_reduce(),
                };
                if schedulable {
                    self.leaf_hint[leaf][k] = i;
                    return Some(e.id);
                }
            }
            i += 1;
        }
        self.leaf_hint[leaf][k] = i;
        None
    }

    /// Updates the per-pool starvation clocks from the current share
    /// state: a pool is starved while `running < min_maps` with pending
    /// map work in its subtree. Reads `jobq.now`, so it only runs from
    /// the time-sanctioned hooks. The maintained sums make this O(nodes)
    /// with no queue walk (reference mode re-aggregates, as before).
    fn refresh_starvation(&mut self, jobq: &JobQueue) {
        if self.reference {
            self.aggregate(jobq, TaskKind::Map);
        }
        let now = jobq.now;
        for i in 0..self.nodes.len() {
            let min = self.nodes[i].min[0];
            let (running, pending) = self.map_shares(i);
            if min > 0 && running < min && pending > 0 {
                self.starved_since[i].get_or_insert(now);
            } else {
                self.starved_since[i] = None;
            }
        }
    }

    /// True if `node` lies in the subtree rooted at `of`.
    fn in_subtree(&self, node: usize, of: usize) -> bool {
        let mut n = node;
        loop {
            if n == of {
                return true;
            }
            if n == 0 {
                return false;
            }
            n = self.nodes[n].parent;
        }
    }

    /// Over-share victim leaf for a preemption on behalf of
    /// `starved`: a leaf outside the starved subtree with a running map
    /// to spare, whose whole path (outside the starved pool's ancestor
    /// chain) stays strictly above its min share after losing one slot.
    /// Largest `running − min` surplus wins; ties break depth-first.
    fn victim_leaf(&self, starved: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        'leaves: for &leaf in &self.leaves {
            if self.in_subtree(leaf, starved) {
                continue;
            }
            let mut n = leaf;
            loop {
                if !self.in_subtree(starved, n) && self.map_shares(n).0 <= self.nodes[n].min[0] {
                    continue 'leaves;
                }
                if n == 0 {
                    break;
                }
                n = self.nodes[n].parent;
            }
            let surplus = self.map_shares(leaf).0 - self.nodes[leaf].min[0];
            if best.is_none_or(|(s, _)| surplus > s) {
                best = Some((surplus, leaf));
            }
        }
        best.map(|(_, leaf)| leaf)
    }
}

impl SchedulerPolicy for HierPolicy {
    fn name(&self) -> &str {
        "hier"
    }

    fn on_job_arrival(
        &mut self,
        id: JobId,
        template: &JobTemplate,
        _relative_deadline: Option<DurationMs>,
        _cluster: simmr_types::ClusterSpec,
    ) {
        let leaf = self.route(&template.name);
        self.assignment.insert(id, leaf);
    }

    fn on_job_departure(&mut self, id: JobId) {
        self.assignment.remove(&id);
    }

    fn on_job_queued(&mut self, entry: &JobEntry) {
        let leaf = *self.assignment.get(&entry.id).expect("job routed before it is queued");
        for kind in [TaskKind::Map, TaskKind::Reduce] {
            let (r, p) = Self::entry_counts(entry, kind);
            self.apply_delta(leaf, ki(kind), r as isize, p as isize);
        }
        // Arrivals come in (arrival, id) order — the queue asserts it —
        // so appending keeps the leaf FIFO sorted. The new tail sits at
        // or after every cursor, so no rewind is needed.
        self.leaf_fifo[leaf].push(entry.id);
    }

    fn on_entry_mutated(&mut self, before: &JobEntry, after: &JobEntry) {
        let Some(&leaf) = self.assignment.get(&after.id) else { return };
        for kind in [TaskKind::Map, TaskKind::Reduce] {
            let k = ki(kind);
            let (r0, p0) = Self::entry_counts(before, kind);
            let (r1, p1) = Self::entry_counts(after, kind);
            self.apply_delta(leaf, k, r1 as isize - r0 as isize, p1 as isize - p0 as isize);
            // A job turning schedulable again (preemption requeue,
            // failure rerun, speculative duplicate, reduce-eligibility
            // flip) may sit before the cursor: rewind it.
            if p0 == 0 && p1 > 0 {
                self.leaf_hint[leaf][k] = 0;
            }
        }
    }

    fn on_job_dequeued(&mut self, entry: &JobEntry) {
        let Some(&leaf) = self.assignment.get(&entry.id) else { return };
        for kind in [TaskKind::Map, TaskKind::Reduce] {
            let (r, p) = Self::entry_counts(entry, kind);
            self.apply_delta(leaf, ki(kind), -(r as isize), -(p as isize));
        }
        let fifo = &mut self.leaf_fifo[leaf];
        let pos = fifo
            .iter()
            .position(|&id| id == entry.id)
            .expect("dequeued job present in its leaf FIFO");
        fifo.remove(pos);
        for hint in &mut self.leaf_hint[leaf] {
            if pos < *hint {
                *hint -= 1;
            }
        }
    }

    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        self.choose(jobq, TaskKind::Map)
    }

    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId> {
        self.choose(jobq, TaskKind::Reduce)
    }

    /// One victim per round: the engine re-consults after every kill +
    /// relaunch, so the deficit pool reclaims exactly as many slots as
    /// its pending work can fill and no kill is wasted.
    fn map_preemptions(&mut self, jobq: &JobQueue, victims: &mut Vec<JobId>) {
        self.refresh_starvation(jobq);
        let now = jobq.now;
        // most-starved pool whose timeout has expired
        let mut starved: Option<(f64, usize)> = None;
        for i in 0..self.nodes.len() {
            let (Some(since), Some(timeout)) = (self.starved_since[i], self.nodes[i].timeout)
            else {
                continue;
            };
            if now.since(since) < timeout {
                continue;
            }
            let ratio = self.map_shares(i).0 as f64 / self.nodes[i].min[0] as f64;
            if starved.is_none_or(|(b, _)| ratio < b) {
                starved = Some((ratio, i));
            }
        }
        let Some((_, starved_node)) = starved else { return };
        let Some(leaf) = self.victim_leaf(starved_node) else { return };
        // Gate the kill on where the freed slot actually goes: simulate
        // the post-kill state and require the relaunch walk to land
        // inside the starved subtree. Without this, a kill whose slot
        // bounces to a third pool (the root-level weight comparison can
        // outrank a deficit buried deeper in the tree) repeats at every
        // pass forever — the killed task never completes and the deficit
        // never clears. Preemption exists to feed the starved pool, so a
        // kill that cannot do that is not taken at all.
        let k = ki(TaskKind::Map);
        let (mut sim_run, mut sim_pend) = if self.reference {
            (self.scratch_run.clone(), self.scratch_pend.clone())
        } else {
            (self.run[k].clone(), self.pend[k].clone())
        };
        let mut n = leaf;
        loop {
            sim_run[n] -= 1;
            sim_pend[n] += 1; // the killed task requeues as pending
            if n == 0 {
                break;
            }
            n = self.nodes[n].parent;
        }
        let mut eligible = Vec::new();
        Self::mark_eligible_into(&self.nodes, k, &sim_run, &sim_pend, &mut eligible);
        let dest = Self::descend(&self.nodes, k, &sim_run, &eligible);
        if !dest.is_some_and(|d| self.in_subtree(d, starved_node)) {
            return;
        }
        // youngest job of the victim pool: its most recently launched
        // running map is what the engine will kill
        let victim = if self.reference {
            jobq.entries()
                .iter()
                .filter(|e| self.assignment.get(&e.id) == Some(&leaf) && e.running_maps > 0)
                .max_by_key(|e| (e.arrival, e.id))
                .map(|e| e.id)
        } else {
            // the leaf FIFO is (arrival, id)-sorted: first hit from the
            // back is the youngest job with a running map
            self.leaf_fifo[leaf]
                .iter()
                .rev()
                .copied()
                .find(|&id| jobq.get(id).is_some_and(|e| e.running_maps > 0))
        };
        if let Some(id) = victim {
            victims.push(id);
        }
    }

    /// Almost everything is derivable from the hook replay (routing,
    /// subtree counters, leaf FIFOs); the starvation clocks are not —
    /// *when* a pool dropped below its min share drives preemption timing
    /// — so they are captured, alongside an assignment fingerprint that
    /// catches a resume under a different pool tree.
    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        crate::snap::put_u32(&mut out, self.nodes.len() as u32);
        for since in &self.starved_since {
            crate::snap::put_opt_u64(&mut out, since.map(|t| t.as_millis()));
        }
        let mut pairs: Vec<(JobId, usize)> =
            self.assignment.iter().map(|(&j, &l)| (j, l)).collect();
        pairs.sort_unstable();
        crate::snap::put_u32(&mut out, pairs.len() as u32);
        for (job, leaf) in pairs {
            crate::snap::put_u32(&mut out, job.0);
            crate::snap::put_u32(&mut out, leaf as u32);
        }
        out
    }

    fn restore(&mut self, blob: &[u8]) -> Result<(), String> {
        let mut r = crate::snap::Reader::new(blob);
        let n_nodes = r.u32()? as usize;
        if n_nodes != self.nodes.len() {
            return Err(format!(
                "hier pool tree has {} nodes but the checkpoint was taken with {n_nodes} — \
                 was the policy built with the same pool spec?",
                self.nodes.len()
            ));
        }
        let mut starved = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            starved.push(r.opt_u64()?.map(SimTime::from_millis));
        }
        let n = r.u32()? as usize;
        let mut captured = Vec::with_capacity(n);
        for _ in 0..n {
            let job = JobId(r.u32()?);
            let leaf = r.u32()? as usize;
            captured.push((job, leaf));
        }
        r.done()?;
        let mut rebuilt: Vec<(JobId, usize)> =
            self.assignment.iter().map(|(&j, &l)| (j, l)).collect();
        rebuilt.sort_unstable();
        if rebuilt != captured {
            return Err(format!(
                "hier pool assignments diverged from the checkpoint (rebuilt {} assignments, \
                 captured {n}) — was the policy built with the same pool spec?",
                rebuilt.len()
            ));
        }
        self.starved_since = starved;
        Ok(())
    }

    fn next_wakeup(&mut self, jobq: &JobQueue) -> Option<SimTime> {
        self.refresh_starvation(jobq);
        let now = jobq.now;
        let mut due: Option<SimTime> = None;
        for i in 0..self.nodes.len() {
            let (Some(since), Some(timeout)) = (self.starved_since[i], self.nodes[i].timeout)
            else {
                continue;
            };
            let at = since + timeout;
            if at > now && due.is_none_or(|d| at < d) {
                due = Some(at);
            }
        }
        due
    }

    /// Per-pool share accounting, cross-checked by the engine's invariant
    /// checker after every settled event batch.
    fn verify_invariants(&self, jobq: &JobQueue) {
        // (1) routing table covers exactly the active jobs
        if self.assignment.len() != jobq.len() {
            panic!(
                "engine invariant violated [pool-routing]: {} pool assignments for {} active jobs",
                self.assignment.len(),
                jobq.len()
            );
        }
        // (2) every leaf FIFO holds exactly its assigned active jobs, in
        // (arrival, id) order — queue entries come out in that order, so
        // splitting them by leaf rebuilds the expected lists
        let mut expect_fifo: Vec<Vec<JobId>> = vec![Vec::new(); self.nodes.len()];
        for e in jobq.entries() {
            match self.assignment.get(&e.id) {
                Some(&leaf) if self.leaves.contains(&leaf) => expect_fifo[leaf].push(e.id),
                got => panic!(
                    "engine invariant violated [pool-routing]: job {} assigned to {:?}, \
                     not a leaf pool",
                    e.id, got
                ),
            }
        }
        if expect_fifo != self.leaf_fifo {
            panic!(
                "engine invariant violated [pool-fifo]: leaf FIFOs {:?} != expected {:?}",
                self.leaf_fifo, expect_fifo
            );
        }
        // (3) maintained subtree counters match the full re-aggregation
        // oracle for both slot kinds — any missed or double-counted
        // mutation hook shows up here
        let (mut running, mut pending) = (Vec::new(), Vec::new());
        for kind in [TaskKind::Map, TaskKind::Reduce] {
            let k = ki(kind);
            self.aggregate_into(jobq, kind, &mut running, &mut pending);
            if running != self.run[k] || pending != self.pend[k] {
                panic!(
                    "engine invariant violated [pool-share-accounting]: maintained {kind:?} \
                     counters run={:?} pend={:?} != oracle run={running:?} pend={pending:?}",
                    self.run[k], self.pend[k]
                );
            }
            // (4) cursor invariant: no schedulable job strictly before a
            // leaf's per-kind hint
            for &leaf in &self.leaves {
                let hint = self.leaf_hint[leaf][k];
                for &id in self.leaf_fifo[leaf].iter().take(hint) {
                    let Some(e) = jobq.get(id) else { continue };
                    let schedulable = match kind {
                        TaskKind::Map => e.has_schedulable_map(),
                        TaskKind::Reduce => e.has_schedulable_reduce(),
                    };
                    if schedulable {
                        panic!(
                            "engine invariant violated [pool-fifo-cursor]: job {id} in pool \
                             {:?} is {kind:?}-schedulable before the cursor (hint {hint})",
                            self.nodes[leaf].prefix
                        );
                    }
                }
            }
        }
        // (5) starvation clocks agree with freshly derived share state
        // (`running`/`pending` still hold the Reduce oracle; rebuild Map)
        self.aggregate_into(jobq, TaskKind::Map, &mut running, &mut pending);
        for (i, node) in self.nodes.iter().enumerate() {
            let starved = node.min[0] > 0 && running[i] < node.min[0] && pending[i] > 0;
            if starved != self.starved_since[i].is_some() {
                panic!(
                    "engine invariant violated [pool-starvation-clock]: pool {:?} derived \
                     starved={starved} (running {} / min {} / pending {}) but clock is {:?}",
                    node.prefix, running[i], node.min[0], pending[i], self.starved_since[i]
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parse_pool_spec;
    use crate::CapacityPolicy;
    use simmr_core::{EngineConfig, SimulatorEngine};
    use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

    fn named_job(name: &str, maps: usize, map_ms: u64, arrival_ms: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new(name, vec![map_ms; maps], vec![], vec![], vec![]).unwrap(),
            SimTime::from_millis(arrival_ms),
        )
    }

    fn hier(spec: &str) -> HierPolicy {
        HierPolicy::new(parse_pool_spec(spec).unwrap())
    }

    #[test]
    fn routing_matches_leaf_prefixes() {
        let p = hier("prod{etl,serving},adhoc");
        assert_eq!(p.leaf_prefixes(), vec!["prod-etl", "prod-serving", "adhoc"]);
        assert_eq!(p.route("prod-etl-0001"), p.leaves[0]);
        assert_eq!(p.route("prod-serving-x"), p.leaves[1]);
        assert_eq!(p.route("adhoc-sort"), p.leaves[2]);
        // no match falls back to the last leaf
        assert_eq!(p.route("mystery"), p.leaves[2]);
    }

    #[test]
    #[should_panic(expected = "invalid pool tree")]
    fn rejects_empty_tree() {
        HierPolicy::new(vec![]);
    }

    #[test]
    fn flat_tree_matches_capacity_schedule() {
        // identical queues, identical weights: the one-level tree must
        // reproduce CapacityPolicy task for task
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("prod-big", 12, 1000, 0));
        trace.push(named_job("adhoc-big", 6, 700, 50));
        trace.push(named_job("prod-late", 3, 400, 900));
        let run = |policy: Box<dyn SchedulerPolicy>| {
            SimulatorEngine::new(EngineConfig::new(6, 6).with_timeline(), &trace, policy).run()
        };
        let capacity = run(Box::new(CapacityPolicy::two_tier()));
        let tree = run(Box::new(HierPolicy::two_tier()));
        assert_eq!(capacity, tree);
    }

    #[test]
    fn weighted_split_between_pools() {
        // same scenario as the CapacityPolicy unit test: prod w=2 vs
        // adhoc w=1 on 6 slots → 4/2 split, both finish at 3 s
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("prod-big", 12, 1000, 0));
        trace.push(named_job("adhoc-big", 6, 1000, 0));
        let report = SimulatorEngine::new(
            EngineConfig::new(6, 6),
            &trace,
            Box::new(hier("prod[w=2],adhoc[w=1]")),
        )
        .run();
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(3000));
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(3000));
    }

    #[test]
    fn max_share_caps_a_subtree() {
        // adhoc capped at 2 of 6 slots: its 6 tasks take 3 rounds even
        // with prod idle after t=0 (no other work)
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-burst", 6, 1000, 0));
        let report = SimulatorEngine::new(
            EngineConfig::new(6, 6),
            &trace,
            Box::new(hier("prod,adhoc[max=2]")),
        )
        .run();
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(3000));
    }

    #[test]
    fn min_share_preemption_restores_deficit() {
        // adhoc grabs all 4 slots at t=0; prod arrives at t=100 with a
        // min share of 3 and a 200 ms timeout → at t=300 the scheduler
        // kills 3 adhoc maps (progress lost) and prod runs 3 tasks.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-hog", 4, 10_000, 0));
        trace.push(named_job("prod-urgent", 3, 500, 100));
        let report = SimulatorEngine::new(
            EngineConfig::new(4, 4).with_timeline().with_invariants(),
            &trace,
            Box::new(hier("prod[min=3,timeout=0.2],adhoc")),
        )
        .run();
        // prod gets its 3 slots at t=300 and finishes at t=800
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(800));
        // adhoc lost 3 tasks' progress at t=300: 1 survivor finishes at
        // 10 s, the 3 re-runs start at t=800 → done at 10.8 s
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(10_800));
    }

    #[test]
    fn timeout_zero_preempts_in_the_same_pass() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-hog", 2, 10_000, 0));
        trace.push(named_job("prod-now", 1, 100, 50));
        let report = SimulatorEngine::new(
            EngineConfig::new(2, 2).with_invariants(),
            &trace,
            Box::new(hier("prod[min=1,timeout=0],adhoc")),
        )
        .run();
        // preempted at arrival: prod finishes at 150 ms
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(150));
    }

    #[test]
    fn no_timeout_never_preempts() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(named_job("adhoc-hog", 2, 1000, 0));
        trace.push(named_job("prod-now", 1, 100, 50));
        let report = SimulatorEngine::new(
            EngineConfig::new(2, 2).with_invariants(),
            &trace,
            Box::new(hier("prod[min=1],adhoc")),
        )
        .run();
        // min share shapes selection but without a timeout nothing is
        // killed: prod waits for a natural slot at t=1000
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(1100));
    }
}
