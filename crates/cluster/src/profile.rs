//! Model-based job profile estimation.
//!
//! The MinEDF scheduler needs a performance profile of a job *before* it
//! runs, to size its minimal slot allocation. In the paper this comes from
//! earlier executions profiled by MRProfiler/ARIA; in the testbed simulator
//! we estimate the same `(avg, max)` phase summaries analytically from the
//! application cost model and the cluster configuration.

use crate::config::ClusterConfig;
use simmr_apps::JobModel;
use simmr_model::JobProfileSummary;
use simmr_stats::{Dist, Distribution};
use simmr_types::{secs_to_ms, PhaseStats};

/// Mean of a distribution, falling back to 0 for heavy tails without one.
fn mean_of(d: &Dist) -> f64 {
    d.mean().unwrap_or(0.0)
}

/// Approximate high quantile used as the "max" task duration: for the
/// LogNormal family this is `exp(mu + 3 sigma)`; for everything else we
/// use three times the mean, a serviceable overestimate.
fn high_quantile(d: &Dist) -> f64 {
    match *d {
        Dist::LogNormal { mu, sigma } => (mu + 3.0 * sigma).exp(),
        Dist::Constant { value } => value,
        _ => 3.0 * mean_of(d),
    }
}

/// Estimates a [`JobProfileSummary`] for a job model on a cluster, suitable
/// for feeding `simmr_model::min_slots_for_deadline`.
pub fn estimate_profile(job: &JobModel, config: &ClusterConfig) -> JobProfileSummary {
    // Map durations: compute time inflated by the expected locality mix.
    // With replication-r placement and locality-aware assignment the vast
    // majority of reads are node- or rack-local; we fold this into a small
    // constant factor between the two penalties.
    let locality_factor = 1.0 + 0.3 * (config.rack_local_penalty - 1.0);
    let map_avg = mean_of(&job.map_time_s) * locality_factor;
    let map_max = high_quantile(&job.map_time_s) * config.remote_penalty;

    // Typical shuffle: fetch at the expected fair share plus fixed
    // overheads and the sort tail. The expected concurrent-flow count is
    // bounded by the reduce slots.
    let flows = config.total_reduce_slots().max(1) as f64;
    let rate = (config.shuffle_pool_mb_s / flows).min(config.per_flow_mb_s);
    let fetch_s = job.shuffle_mb_per_reduce / rate.max(1e-9);
    let shuffle_avg =
        config.shuffle_base_s + fetch_s + config.sort_s_per_mb * job.shuffle_mb_per_reduce;
    let shuffle_max = 1.5 * shuffle_avg;

    // First shuffle (non-overlapping part): dominated by the final fetch +
    // sort once maps complete; approximate with the typical value (an
    // intentionally conservative choice — it only shifts the constant term
    // of the deadline hyperbola slightly).
    let first_shuffle_avg = shuffle_avg;
    let first_shuffle_max = shuffle_max;

    let reduce_avg = mean_of(&job.reduce_time_s);
    let reduce_max = high_quantile(&job.reduce_time_s);

    JobProfileSummary {
        num_maps: job.num_maps,
        num_reduces: job.num_reduces,
        map: PhaseStats {
            avg: secs_to_ms(map_avg) as f64,
            max: secs_to_ms(map_max),
            count: job.num_maps,
        },
        first_shuffle: PhaseStats {
            avg: secs_to_ms(first_shuffle_avg) as f64,
            max: secs_to_ms(first_shuffle_max),
            count: job.num_reduces.min(config.total_reduce_slots()),
        },
        shuffle: PhaseStats {
            avg: secs_to_ms(shuffle_avg) as f64,
            max: secs_to_ms(shuffle_max),
            count: job.num_reduces,
        },
        reduce: PhaseStats {
            avg: secs_to_ms(reduce_avg) as f64,
            max: secs_to_ms(reduce_max),
            count: job.num_reduces,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_apps::AppKind;

    #[test]
    fn estimates_are_positive_and_ordered() {
        let config = ClusterConfig::default();
        for kind in AppKind::ALL {
            let job = simmr_apps::JobModel::with_task_counts(kind, 128, 32);
            let p = estimate_profile(&job, &config);
            assert_eq!(p.num_maps, 128);
            assert_eq!(p.num_reduces, 32);
            assert!(p.map.avg > 0.0, "{kind:?}");
            assert!(p.map.max as f64 >= p.map.avg, "{kind:?}");
            assert!(p.shuffle.avg > 0.0);
            assert!(p.shuffle.max as f64 >= p.shuffle.avg);
            assert!(p.reduce.max as f64 >= p.reduce.avg);
        }
    }

    #[test]
    fn heavier_shuffle_apps_estimate_longer_shuffles() {
        let config = ClusterConfig::default();
        let sort = estimate_profile(
            &simmr_apps::JobModel::with_task_counts(AppKind::Sort, 256, 64),
            &config,
        );
        let bayes = estimate_profile(
            &simmr_apps::JobModel::with_task_counts(AppKind::Bayes, 256, 64),
            &config,
        );
        assert!(
            sort.shuffle.avg > bayes.shuffle.avg,
            "sort {} vs bayes {}",
            sort.shuffle.avg,
            bayes.shuffle.avg
        );
    }

    #[test]
    fn usable_by_allocation_model() {
        let config = ClusterConfig::default();
        let job = simmr_apps::JobModel::with_task_counts(AppKind::WordCount, 200, 64);
        let p = estimate_profile(&job, &config);
        let alloc = simmr_model::min_slots_for_deadline(&p, 3_600_000, 64, 64);
        assert!(alloc.maps >= 1);
        assert!(alloc.reduces >= 1);
        // a one-hour deadline for a ~1.5-hour-of-serial-work job needs only
        // a few slots
        assert!(alloc.maps < 30, "{alloc:?}");
    }
}
