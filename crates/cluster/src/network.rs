//! Processor-sharing fluid model of the shuffle fabric.
//!
//! Every reduce task in its shuffle phase is a *flow* that drains its
//! remaining bytes at rate `min(per_flow_cap, pool / active_flows)` — the
//! classic processor-sharing approximation of TCP fair sharing across a
//! cluster fabric. A flow can only fetch what the job's completed map tasks
//! have produced (`available_mb`), so first-wave shuffles *stall* while the
//! map stage is still running — naturally producing the paper's first-wave
//! vs typical-wave shuffle asymmetry.
//!
//! The model is exact between events: the simulation advances flows lazily
//! and asks for the next *boundary* (earliest instant any flow hits its
//! available/total limit); the active set only changes at events or
//! boundaries, so linear interpolation in between is exact.

use simmr_types::{DurationMs, SimTime};

/// Handle of one shuffle flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(usize);

#[derive(Debug, Clone)]
struct Flow {
    total_mb: f64,
    fetched_mb: f64,
    available_mb: f64,
}

impl Flow {
    fn limit(&self) -> f64 {
        self.available_mb.min(self.total_mb)
    }
    fn active(&self) -> bool {
        self.fetched_mb + 1e-9 < self.limit()
    }
    fn complete(&self) -> bool {
        self.fetched_mb + 1e-9 >= self.total_mb
    }
}

/// The shared shuffle fabric.
#[derive(Debug)]
pub struct ShuffleNetwork {
    pool_mb_s: f64,
    per_flow_mb_s: f64,
    flows: Vec<Option<Flow>>,
    free_ids: Vec<usize>,
    last_update: SimTime,
}

impl ShuffleNetwork {
    /// Creates a fabric with the given aggregate pool and per-flow cap
    /// (both MB/s, must be positive).
    pub fn new(pool_mb_s: f64, per_flow_mb_s: f64) -> Self {
        assert!(pool_mb_s > 0.0 && per_flow_mb_s > 0.0);
        ShuffleNetwork {
            pool_mb_s,
            per_flow_mb_s,
            flows: Vec::new(),
            free_ids: Vec::new(),
            last_update: SimTime::ZERO,
        }
    }

    /// Current per-active-flow rate in MB/s.
    fn rate(&self, active: usize) -> f64 {
        if active == 0 {
            0.0
        } else {
            self.per_flow_mb_s.min(self.pool_mb_s / active as f64)
        }
    }

    fn active_count(&self) -> usize {
        self.flows.iter().flatten().filter(|f| f.active()).count()
    }

    /// Advances all flows to `now` (no-op when time hasn't moved).
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        let elapsed_s = now.since(self.last_update) as f64 / 1000.0;
        self.last_update = now;
        if elapsed_s <= 0.0 {
            return;
        }
        let rate = self.rate(self.active_count());
        if rate <= 0.0 {
            return;
        }
        let gained = rate * elapsed_s;
        for flow in self.flows.iter_mut().flatten() {
            if flow.active() {
                flow.fetched_mb = (flow.fetched_mb + gained).min(flow.limit());
            }
        }
    }

    /// Registers a new flow at `now`. `available_mb` is what the job's
    /// finished maps have already produced for this reduce.
    pub fn add_flow(&mut self, now: SimTime, total_mb: f64, available_mb: f64) -> FlowId {
        self.advance(now);
        let flow = Flow {
            total_mb: total_mb.max(0.0),
            fetched_mb: 0.0,
            available_mb: available_mb.clamp(0.0, total_mb.max(0.0)),
        };
        let id = match self.free_ids.pop() {
            Some(i) => {
                self.flows[i] = Some(flow);
                i
            }
            None => {
                self.flows.push(Some(flow));
                self.flows.len() - 1
            }
        };
        FlowId(id)
    }

    /// Updates a flow's available bytes (map progress), advancing first.
    pub fn set_available(&mut self, now: SimTime, id: FlowId, available_mb: f64) {
        self.advance(now);
        if let Some(flow) = self.flows[id.0].as_mut() {
            let total = flow.total_mb;
            flow.available_mb = available_mb.clamp(flow.available_mb, total);
        }
    }

    /// True once the flow has fetched all its bytes.
    pub fn is_complete(&self, id: FlowId) -> bool {
        self.flows[id.0].as_ref().is_some_and(|f| f.complete())
    }

    /// Fetched MB so far (diagnostics).
    pub fn fetched_mb(&self, id: FlowId) -> f64 {
        self.flows[id.0].as_ref().map_or(0.0, |f| f.fetched_mb)
    }

    /// Removes a flow (after its shuffle completes or is abandoned).
    pub fn remove(&mut self, now: SimTime, id: FlowId) {
        self.advance(now);
        if self.flows[id.0].take().is_some() {
            self.free_ids.push(id.0);
        }
    }

    /// Earliest future instant at which some flow reaches its current
    /// limit (completes or stalls), or `None` when no flow is active.
    /// Returns a time strictly after `now`.
    pub fn next_boundary(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let active = self.active_count();
        let rate = self.rate(active);
        if rate <= 0.0 {
            return None;
        }
        let mut min_delta: Option<f64> = None;
        for flow in self.flows.iter().flatten() {
            if flow.active() {
                let remaining = flow.limit() - flow.fetched_mb;
                let secs = remaining / rate;
                min_delta = Some(min_delta.map_or(secs, |d: f64| d.min(secs)));
            }
        }
        min_delta.map(|secs| {
            let ms = (secs * 1000.0).ceil() as DurationMs;
            now + ms.max(1)
        })
    }

    /// Number of live flows (diagnostics).
    pub fn live_flows(&self) -> usize {
        self.flows.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_runs_at_cap() {
        let mut net = ShuffleNetwork::new(1000.0, 100.0);
        let f = net.add_flow(SimTime::ZERO, 200.0, 200.0);
        // 200 MB at 100 MB/s => 2 s
        let b = net.next_boundary(SimTime::ZERO).unwrap();
        assert_eq!(b, SimTime::from_millis(2000));
        net.advance(b);
        assert!(net.is_complete(f));
    }

    #[test]
    fn pool_shared_among_many_flows() {
        let mut net = ShuffleNetwork::new(200.0, 100.0);
        // 4 flows share 200 MB/s => 50 MB/s each
        let flows: Vec<FlowId> =
            (0..4).map(|_| net.add_flow(SimTime::ZERO, 100.0, 100.0)).collect();
        let b = net.next_boundary(SimTime::ZERO).unwrap();
        assert_eq!(b, SimTime::from_millis(2000)); // 100/50
        net.advance(b);
        for f in flows {
            assert!(net.is_complete(f));
        }
    }

    #[test]
    fn departure_speeds_up_survivors() {
        let mut net = ShuffleNetwork::new(100.0, 100.0);
        let a = net.add_flow(SimTime::ZERO, 50.0, 50.0);
        let big = net.add_flow(SimTime::ZERO, 150.0, 150.0);
        // both at 50 MB/s; a done at t=1s
        let b1 = net.next_boundary(SimTime::ZERO).unwrap();
        assert_eq!(b1, SimTime::from_millis(1000));
        net.advance(b1);
        assert!(net.is_complete(a));
        assert!(!net.is_complete(big));
        net.remove(b1, a);
        // big has 100 MB left, now at full 100 MB/s => +1s
        let b2 = net.next_boundary(b1).unwrap();
        assert_eq!(b2, SimTime::from_millis(2000));
        net.advance(b2);
        assert!(net.is_complete(big));
    }

    #[test]
    fn availability_stalls_flow() {
        let mut net = ShuffleNetwork::new(1000.0, 100.0);
        let f = net.add_flow(SimTime::ZERO, 100.0, 30.0);
        // fetches 30 MB at 100 MB/s = 0.3 s, then stalls
        let b = net.next_boundary(SimTime::ZERO).unwrap();
        assert_eq!(b, SimTime::from_millis(300));
        net.advance(b);
        assert!(!net.is_complete(f));
        assert!((net.fetched_mb(f) - 30.0).abs() < 1e-6);
        // stalled: no active flows, no boundary
        assert_eq!(net.next_boundary(b), None);
        // maps produce more output at t=1s
        net.set_available(SimTime::from_millis(1000), f, 100.0);
        let b2 = net.next_boundary(SimTime::from_millis(1000)).unwrap();
        assert_eq!(b2, SimTime::from_millis(1700)); // 70 MB at 100 MB/s
        net.advance(b2);
        assert!(net.is_complete(f));
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = ShuffleNetwork::new(100.0, 100.0);
        let f = net.add_flow(SimTime::ZERO, 0.0, 0.0);
        assert!(net.is_complete(f));
    }

    #[test]
    fn stalled_flow_consumes_no_bandwidth() {
        let mut net = ShuffleNetwork::new(100.0, 100.0);
        let stalled = net.add_flow(SimTime::ZERO, 100.0, 0.0);
        let active = net.add_flow(SimTime::ZERO, 100.0, 100.0);
        // the active flow should run at the full 100 MB/s
        let b = net.next_boundary(SimTime::ZERO).unwrap();
        assert_eq!(b, SimTime::from_millis(1000));
        net.advance(b);
        assert!(net.is_complete(active));
        assert_eq!(net.fetched_mb(stalled), 0.0);
    }

    #[test]
    fn flow_ids_recycled() {
        let mut net = ShuffleNetwork::new(100.0, 100.0);
        let a = net.add_flow(SimTime::ZERO, 1.0, 1.0);
        net.remove(SimTime::ZERO, a);
        let b = net.add_flow(SimTime::ZERO, 1.0, 1.0);
        assert_eq!(a.0, b.0);
        assert_eq!(net.live_flows(), 1);
    }

    #[test]
    fn available_never_decreases() {
        let mut net = ShuffleNetwork::new(100.0, 100.0);
        let f = net.add_flow(SimTime::ZERO, 100.0, 50.0);
        net.set_available(SimTime::ZERO, f, 20.0); // ignored (monotone)
        let b = net.next_boundary(SimTime::ZERO).unwrap();
        assert_eq!(b, SimTime::from_millis(500));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every fully-available flow completes, and aggregate progress
        /// never exceeds pool capacity over the elapsed interval.
        #[test]
        fn all_flows_complete_within_capacity(
            sizes in proptest::collection::vec(1.0f64..500.0, 1..20),
            pool in 50.0f64..2_000.0,
            cap in 10.0f64..200.0,
        ) {
            let mut net = ShuffleNetwork::new(pool, cap);
            let flows: Vec<FlowId> = sizes
                .iter()
                .map(|&mb| net.add_flow(SimTime::ZERO, mb, mb))
                .collect();
            let total_mb: f64 = sizes.iter().sum();
            let mut now = SimTime::ZERO;
            let mut steps = 0;
            while let Some(b) = net.next_boundary(now) {
                prop_assert!(b > now, "boundary must advance time");
                now = b;
                steps += 1;
                prop_assert!(steps < 10_000, "fluid model failed to converge");
            }
            for f in &flows {
                prop_assert!(net.is_complete(*f));
            }
            // capacity check: total bytes / elapsed <= pool (with rounding slack)
            let elapsed_s = now.as_millis() as f64 / 1000.0;
            prop_assert!(
                total_mb <= pool * elapsed_s * 1.02 + 1.0,
                "moved {total_mb} MB in {elapsed_s}s over a {pool} MB/s pool"
            );
            // and no flow beat its own per-flow cap
            let min_time_s = sizes.iter().cloned().fold(0.0f64, f64::max) / cap;
            prop_assert!(elapsed_s + 1e-3 >= min_time_s);
        }

        /// Monotonicity: adding flows never finishes the first flow sooner.
        #[test]
        fn contention_never_speeds_up(
            first in 10.0f64..200.0,
            extra in proptest::collection::vec(10.0f64..200.0, 0..8),
        ) {
            let finish_time = |others: &[f64]| {
                let mut net = ShuffleNetwork::new(100.0, 50.0);
                let f = net.add_flow(SimTime::ZERO, first, first);
                for &mb in others {
                    net.add_flow(SimTime::ZERO, mb, mb);
                }
                let mut now = SimTime::ZERO;
                while !net.is_complete(f) {
                    match net.next_boundary(now) {
                        Some(b) => now = b,
                        None => break,
                    }
                }
                now
            };
            let alone = finish_time(&[]);
            let crowded = finish_time(&extra);
            prop_assert!(crowded >= alone);
        }
    }
}
