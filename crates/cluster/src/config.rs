//! Testbed configuration.

use simmr_types::DurationMs;

/// Configuration of the simulated testbed.
///
/// Defaults mirror the paper's §IV-B cluster: 64 worker nodes in two racks,
/// one map and one reduce slot per node, 64 MB blocks, gigabit Ethernet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Worker (TaskTracker) nodes.
    pub num_workers: usize,
    /// Racks; nodes are distributed round-robin.
    pub num_racks: usize,
    /// Map slots per worker.
    pub map_slots_per_node: usize,
    /// Reduce slots per worker.
    pub reduce_slots_per_node: usize,
    /// TaskTracker heartbeat interval. Assignments only happen on
    /// heartbeats, which is one source of SimMR's (small) replay error.
    pub heartbeat_ms: DurationMs,
    /// Standard deviation of the per-node log-speed factor (0 = homogeneous
    /// cluster).
    pub node_speed_sigma: f64,
    /// Probability that a task is a straggler.
    pub straggler_prob: f64,
    /// Multiplier applied to a straggler's duration.
    pub straggler_factor: f64,
    /// Map-time multiplier for a rack-local (non-node-local) input read.
    pub rack_local_penalty: f64,
    /// Map-time multiplier for a remote (cross-rack) input read.
    pub remote_penalty: f64,
    /// Aggregate shuffle bandwidth of the fabric, MB/s (shared
    /// processor-sharing pool).
    pub shuffle_pool_mb_s: f64,
    /// Per-reduce-flow bandwidth cap, MB/s (a single NIC).
    pub per_flow_mb_s: f64,
    /// Fixed per-shuffle overhead (connection setup, merge passes), seconds.
    pub shuffle_base_s: f64,
    /// Sort cost folded into the tail of the shuffle phase, seconds per MB
    /// fetched.
    pub sort_s_per_mb: f64,
    /// HDFS replication factor (the testbed's default of 3).
    pub replication: usize,
    /// Fraction of a job's maps that must complete before its reduces can
    /// be scheduled (Hadoop slowstart; matches the SimMR engine's
    /// `min_map_percent_completed`).
    pub slowstart: f64,
    /// Enable speculative execution of map tasks: a backup attempt is
    /// launched on a free slot for any map running longer than
    /// `speculation_threshold` times the average completed map duration.
    /// Off by default, like the paper's testbed (§IV-B: "We disabled
    /// speculation as it did not lead to any significant improvements";
    /// the `ablation_speculation` binary checks that claim).
    pub speculative_execution: bool,
    /// Slowness multiplier before a running map becomes a speculation
    /// candidate.
    pub speculation_threshold: f64,
    /// Mean time between failures per node, seconds (0 disables failure
    /// injection). A failed node kills its running tasks (they are
    /// requeued and re-executed elsewhere) and rejoins after
    /// `node_recovery_s`. Completed map output is assumed replicated
    /// (a documented simplification: real Hadoop may re-run completed maps
    /// whose output lived only on the failed node).
    pub node_mtbf_s: f64,
    /// Node recovery time after a failure, seconds.
    pub node_recovery_s: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_workers: 64,
            num_racks: 2,
            map_slots_per_node: 1,
            reduce_slots_per_node: 1,
            heartbeat_ms: 600,
            node_speed_sigma: 0.06,
            straggler_prob: 0.01,
            straggler_factor: 2.5,
            rack_local_penalty: 1.10,
            remote_penalty: 1.25,
            // The practical shuffle bottleneck on the 2011 testbed is the
            // per-reducer fetch/merge path (~10 MB/s), not the fabric: the
            // aggregate pool only binds when more reducers than nodes are
            // shuffling at once. This keeps shuffle durations invariant to
            // the slot allocation (the Figure 3 property).
            shuffle_pool_mb_s: 640.0,
            per_flow_mb_s: 10.0,
            shuffle_base_s: 3.0,
            sort_s_per_mb: 0.02,
            replication: 3,
            slowstart: 0.05,
            speculative_execution: false,
            speculation_threshold: 1.5,
            node_mtbf_s: 0.0,
            node_recovery_s: 60.0,
        }
    }
}

impl ClusterConfig {
    /// The paper's testbed (64 workers, 1×1 slots — the default).
    pub fn paper_testbed() -> Self {
        ClusterConfig::default()
    }

    /// A small configuration for fast unit tests.
    pub fn tiny(workers: usize) -> Self {
        ClusterConfig {
            num_workers: workers,
            num_racks: 2.min(workers),
            ..ClusterConfig::default()
        }
    }

    /// Total map slots.
    pub fn total_map_slots(&self) -> usize {
        self.num_workers * self.map_slots_per_node
    }

    /// Total reduce slots.
    pub fn total_reduce_slots(&self) -> usize {
        self.num_workers * self.reduce_slots_per_node
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_workers == 0 {
            return Err("num_workers must be positive".into());
        }
        if self.num_racks == 0 || self.num_racks > self.num_workers {
            return Err("num_racks must be in 1..=num_workers".into());
        }
        if self.map_slots_per_node == 0 && self.reduce_slots_per_node == 0 {
            return Err("workers need at least one slot".into());
        }
        if self.shuffle_pool_mb_s <= 0.0 || self.per_flow_mb_s <= 0.0 {
            return Err("bandwidths must be positive".into());
        }
        if self.replication == 0 {
            return Err("replication must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.straggler_prob) {
            return Err("straggler_prob must be a probability".into());
        }
        if !(0.0..=1.0).contains(&self.slowstart) {
            return Err("slowstart must be a fraction".into());
        }
        if self.speculation_threshold <= 1.0 {
            return Err("speculation_threshold must exceed 1".into());
        }
        if self.node_mtbf_s < 0.0 || self.node_recovery_s < 0.0 {
            return Err("failure parameters must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_workers, 64);
        assert_eq!(c.num_racks, 2);
        assert_eq!(c.total_map_slots(), 64);
        assert_eq!(c.total_reduce_slots(), 64);
        assert_eq!(c.replication, 3);
        c.validate().unwrap();
    }

    #[test]
    fn tiny_clamps_racks() {
        let c = ClusterConfig::tiny(1);
        assert_eq!(c.num_racks, 1);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let cases = [
            ClusterConfig { num_workers: 0, ..ClusterConfig::default() },
            ClusterConfig { num_racks: 100, ..ClusterConfig::default() },
            ClusterConfig {
                map_slots_per_node: 0,
                reduce_slots_per_node: 0,
                ..ClusterConfig::default()
            },
            ClusterConfig { shuffle_pool_mb_s: -1.0, ..ClusterConfig::default() },
            ClusterConfig { straggler_prob: 1.5, ..ClusterConfig::default() },
            ClusterConfig { replication: 0, ..ClusterConfig::default() },
            ClusterConfig { slowstart: 2.0, ..ClusterConfig::default() },
            ClusterConfig { speculation_threshold: 0.9, ..ClusterConfig::default() },
            ClusterConfig { node_mtbf_s: -1.0, ..ClusterConfig::default() },
        ];
        for (i, c) in cases.iter().enumerate() {
            assert!(c.validate().is_err(), "case {i} should be invalid");
        }
    }
}
