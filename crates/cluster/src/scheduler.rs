//! Cluster-level (JobTracker) scheduling policies.
//!
//! The testbed runs the same three policies the paper evaluates on its real
//! cluster: FIFO, MaxEDF, and MinEDF. The JobTracker in [`crate::sim`]
//! filters candidate jobs (pending work, MinEDF slot caps) and delegates
//! the ordering decision here.

use simmr_types::{JobId, SimTime};

/// The JobTracker's scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterPolicy {
    /// Earliest-arrived job first (Hadoop default).
    Fifo,
    /// Earliest deadline first, maximum slots per job.
    MaxEdf,
    /// Earliest deadline first, minimal (model-derived) slots per job.
    MinEdf,
}

impl ClusterPolicy {
    /// Policy name for logs and reports.
    pub const fn name(self) -> &'static str {
        match self {
            ClusterPolicy::Fifo => "fifo",
            ClusterPolicy::MaxEdf => "maxedf",
            ClusterPolicy::MinEdf => "minedf",
        }
    }

    /// True when per-job wanted-slot caps apply (MinEDF only).
    pub const fn caps_allocations(self) -> bool {
        matches!(self, ClusterPolicy::MinEdf)
    }

    /// Ordering key: smaller sorts first. FIFO ignores deadlines; the EDF
    /// policies order by `(deadline, arrival, id)` with absent deadlines
    /// last.
    pub fn key(
        self,
        arrival: SimTime,
        deadline: Option<SimTime>,
        id: JobId,
    ) -> (SimTime, SimTime, JobId) {
        match self {
            ClusterPolicy::Fifo => (arrival, SimTime::ZERO, id),
            ClusterPolicy::MaxEdf | ClusterPolicy::MinEdf => {
                (deadline.unwrap_or(SimTime::INFINITY), arrival, id)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_caps() {
        assert_eq!(ClusterPolicy::Fifo.name(), "fifo");
        assert!(!ClusterPolicy::Fifo.caps_allocations());
        assert!(!ClusterPolicy::MaxEdf.caps_allocations());
        assert!(ClusterPolicy::MinEdf.caps_allocations());
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let early = ClusterPolicy::Fifo.key(SimTime::from_millis(1), Some(SimTime::ZERO), JobId(9));
        let late = ClusterPolicy::Fifo.key(SimTime::from_millis(2), None, JobId(0));
        assert!(early < late);
    }

    #[test]
    fn edf_orders_by_deadline_then_arrival() {
        let urgent = ClusterPolicy::MaxEdf.key(
            SimTime::from_millis(5),
            Some(SimTime::from_millis(10)),
            JobId(1),
        );
        let relaxed = ClusterPolicy::MaxEdf.key(
            SimTime::from_millis(1),
            Some(SimTime::from_millis(99)),
            JobId(0),
        );
        let none = ClusterPolicy::MaxEdf.key(SimTime::ZERO, None, JobId(2));
        assert!(urgent < relaxed);
        assert!(relaxed < none);
    }
}
