//! Cluster topology and HDFS-style block placement.

use crate::config::ClusterConfig;
use simmr_stats::SeededRng;

/// Data locality of a map task's input read, in Hadoop's three tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locality {
    /// A replica lives on the executing node.
    NodeLocal,
    /// A replica lives in the executing node's rack.
    RackLocal,
    /// All replicas are in other racks.
    Remote,
}

/// Physical layout: nodes, racks, per-node speed factors.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Rack id of each node.
    pub rack_of: Vec<usize>,
    /// Multiplicative speed factor of each node (1.0 = reference speed;
    /// higher = slower).
    pub speed_of: Vec<f64>,
    racks: usize,
}

impl Topology {
    /// Builds the topology: round-robin rack assignment and LogNormal node
    /// speed factors with `node_speed_sigma`.
    pub fn new(config: &ClusterConfig, rng: &mut SeededRng) -> Self {
        use simmr_stats::{Dist, Distribution};
        let speed_dist = Dist::LogNormal { mu: 0.0, sigma: config.node_speed_sigma.max(0.0) };
        let rack_of = (0..config.num_workers).map(|n| n % config.num_racks).collect();
        let speed_of = (0..config.num_workers)
            .map(|_| if config.node_speed_sigma > 0.0 { speed_dist.sample(rng) } else { 1.0 })
            .collect();
        Topology { rack_of, speed_of, racks: config.num_racks }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rack_of.len()
    }

    /// True for a clusterless topology (never produced by [`Topology::new`]
    /// with a valid config).
    pub fn is_empty(&self) -> bool {
        self.rack_of.is_empty()
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.racks
    }

    /// Nodes in the same rack as `node`.
    pub fn rack_peers(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        let rack = self.rack_of[node];
        (0..self.len()).filter(move |&n| self.rack_of[n] == rack)
    }
}

/// Replica locations of every block of one job's input file.
#[derive(Debug, Clone)]
pub struct BlockMap {
    /// `replicas[b]` = nodes holding block `b`.
    pub replicas: Vec<Vec<usize>>,
}

impl BlockMap {
    /// Places `num_blocks` blocks with HDFS's default strategy: first
    /// replica on a random node, second on a random node in a *different*
    /// rack, third in the same rack as the second; further replicas random.
    /// Replicas are always on distinct nodes when the cluster is large
    /// enough.
    pub fn place(
        num_blocks: usize,
        topology: &Topology,
        replication: usize,
        rng: &mut SeededRng,
    ) -> Self {
        let n = topology.len();
        let replication = replication.min(n).max(1);
        let mut replicas = Vec::with_capacity(num_blocks);
        for _ in 0..num_blocks {
            let mut nodes: Vec<usize> = Vec::with_capacity(replication);
            // first replica: anywhere
            let first = rng.index(n);
            nodes.push(first);
            if replication > 1 {
                // second: different rack when one exists
                let first_rack = topology.rack_of[first];
                let candidates: Vec<usize> = (0..n)
                    .filter(|&m| topology.rack_of[m] != first_rack && !nodes.contains(&m))
                    .collect();
                let second = if candidates.is_empty() {
                    pick_distinct(n, &nodes, rng)
                } else {
                    candidates[rng.index(candidates.len())]
                };
                nodes.push(second);
                if replication > 2 {
                    // third: same rack as second
                    let second_rack = topology.rack_of[second];
                    let candidates: Vec<usize> = (0..n)
                        .filter(|&m| topology.rack_of[m] == second_rack && !nodes.contains(&m))
                        .collect();
                    let third = if candidates.is_empty() {
                        pick_distinct(n, &nodes, rng)
                    } else {
                        candidates[rng.index(candidates.len())]
                    };
                    nodes.push(third);
                    for _ in 3..replication {
                        nodes.push(pick_distinct(n, &nodes, rng));
                    }
                }
            }
            replicas.push(nodes);
        }
        BlockMap { replicas }
    }

    /// Locality of reading block `b` from `node`.
    pub fn locality(&self, block: usize, node: usize, topology: &Topology) -> Locality {
        let reps = &self.replicas[block];
        if reps.contains(&node) {
            return Locality::NodeLocal;
        }
        let rack = topology.rack_of[node];
        if reps.iter().any(|&r| topology.rack_of[r] == rack) {
            Locality::RackLocal
        } else {
            Locality::Remote
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when the map holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }
}

/// Random node not already in `taken` (assumes `taken.len() < n`).
fn pick_distinct(n: usize, taken: &[usize], rng: &mut SeededRng) -> usize {
    loop {
        let c = rng.index(n);
        if !taken.contains(&c) {
            return c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(workers: usize, racks: usize) -> (Topology, SeededRng) {
        let config =
            ClusterConfig { num_workers: workers, num_racks: racks, ..ClusterConfig::default() };
        let mut rng = SeededRng::new(42);
        (Topology::new(&config, &mut rng), rng)
    }

    #[test]
    fn rack_round_robin() {
        let (t, _) = topo(6, 2);
        assert_eq!(t.rack_of, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(t.num_racks(), 2);
        assert_eq!(t.rack_peers(0).collect::<Vec<_>>(), vec![0, 2, 4]);
    }

    #[test]
    fn speed_factors_near_one() {
        let (t, _) = topo(64, 2);
        for &s in &t.speed_of {
            assert!(s > 0.7 && s < 1.4, "speed {s} out of plausible range");
        }
    }

    #[test]
    fn homogeneous_when_sigma_zero() {
        let config = ClusterConfig { node_speed_sigma: 0.0, ..ClusterConfig::default() };
        let mut rng = SeededRng::new(1);
        let t = Topology::new(&config, &mut rng);
        assert!(t.speed_of.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn placement_replicas_distinct_and_rack_aware() {
        let (t, mut rng) = topo(16, 2);
        let bm = BlockMap::place(100, &t, 3, &mut rng);
        assert_eq!(bm.len(), 100);
        for reps in &bm.replicas {
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct: {reps:?}");
            // rack-aware: replicas span both racks
            let racks: std::collections::HashSet<usize> =
                reps.iter().map(|&r| t.rack_of[r]).collect();
            assert_eq!(racks.len(), 2, "3 replicas should span 2 racks");
            // second and third replica share a rack
            assert_eq!(t.rack_of[reps[1]], t.rack_of[reps[2]]);
        }
    }

    #[test]
    fn placement_single_node_cluster() {
        let (t, mut rng) = topo(1, 1);
        let bm = BlockMap::place(5, &t, 3, &mut rng);
        for reps in &bm.replicas {
            assert_eq!(reps, &vec![0]);
        }
    }

    #[test]
    fn locality_classification() {
        let (t, _) = topo(6, 2); // racks: 0,1,0,1,0,1
        let bm = BlockMap { replicas: vec![vec![0, 1, 3]] };
        assert_eq!(bm.locality(0, 0, &t), Locality::NodeLocal);
        assert_eq!(bm.locality(0, 2, &t), Locality::RackLocal); // rack 0 via node 0
        assert_eq!(bm.locality(0, 5, &t), Locality::RackLocal); // rack 1 via 1/3
        let bm = BlockMap { replicas: vec![vec![0, 2, 4]] }; // all rack 0
        assert_eq!(bm.locality(0, 1, &t), Locality::Remote);
    }

    #[test]
    fn most_blocks_find_local_nodes() {
        // with 3 replicas on 64 nodes, a given node is local for ~4.7% of
        // blocks; across all nodes every block has exactly 3 local homes
        let (t, mut rng) = topo(64, 2);
        let bm = BlockMap::place(640, &t, 3, &mut rng);
        let local_count: usize = (0..64)
            .map(|n| {
                (0..bm.len()).filter(|&b| bm.locality(b, n, &t) == Locality::NodeLocal).count()
            })
            .sum();
        assert_eq!(local_count, 640 * 3);
    }
}
