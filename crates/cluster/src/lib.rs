//! # simmr-cluster
//!
//! A fine-grained Hadoop **testbed simulator** — the stand-in for the
//! paper's real 66-node cluster (§IV-B: 66× HP DL145 G3, two racks, GbE,
//! Hadoop 0.20.2, 64 worker nodes with one map and one reduce slot each).
//!
//! SimMR deliberately abstracts TaskTrackers away; to *validate* SimMR the
//! paper compares against real executions. Since we cannot run the original
//! hardware, this crate simulates the cluster at a much finer granularity
//! than SimMR, reproducing exactly the phenomena SimMR abstracts:
//!
//! * **TaskTrackers and heartbeats** — task assignment happens only when a
//!   worker heartbeats the JobTracker (staggered, periodic), so waves start
//!   late by up to one heartbeat interval;
//! * **HDFS block placement and data locality** — each input block has
//!   three replicas placed rack-aware; map tasks prefer node-local, then
//!   rack-local blocks, and pay a read penalty otherwise;
//! * **heterogeneity and stragglers** — per-node speed factors and rare
//!   slow tasks;
//! * **a shared shuffle network** — reduce tasks fetch map output through a
//!   processor-sharing fluid model of the cluster fabric; first-wave
//!   shuffles additionally stall on map output availability, which is what
//!   creates the paper's distinction between *first shuffle* and *typical
//!   shuffle*.
//!
//! Executions emit Hadoop-style **job-history logs** ([`history`]) that the
//! MRProfiler in `simmr-trace` parses into replayable job templates — the
//! exact pipeline of the paper, with the testbed swapped for this
//! simulator.

pub mod config;
pub mod history;
pub mod network;
pub mod profile;
pub mod scheduler;
pub mod sim;
pub mod topology;

pub use config::ClusterConfig;
pub use history::{HistoryLog, JobRecord, TaskAttemptRecord};
pub use profile::estimate_profile;
pub use scheduler::ClusterPolicy;
pub use sim::{ClusterJobResult, ClusterSim, SubmittedJob, TestbedRun};
pub use topology::{BlockMap, Locality, Topology};
