//! Job-history log accumulation during a testbed run.
//!
//! The testbed simulator plays the JobTracker's role: it records one
//! [`TaskAttemptRecord`] per executed task attempt and one [`JobRecord`]
//! per job, then serializes them in the shared history format
//! (`simmr_types::history`) that MRProfiler consumes.

use simmr_types::{write_history, HistoryLine, JobHistoryRecord, SimTime, TaskKind};

pub use simmr_types::TaskHistoryRecord as TaskAttemptRecord;

/// Final record of one job in a testbed run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job sequence number.
    pub id: u32,
    /// Job name.
    pub name: String,
    /// Submission time.
    pub submit: SimTime,
    /// First task launch.
    pub launch: Option<SimTime>,
    /// Completion time.
    pub finish: SimTime,
    /// Map task count.
    pub maps: usize,
    /// Reduce task count.
    pub reduces: usize,
}

/// Accumulates history records during a run and renders the log.
#[derive(Debug, Default)]
pub struct HistoryLog {
    jobs: Vec<JobRecord>,
    tasks: Vec<TaskAttemptRecord>,
}

impl HistoryLog {
    /// An empty log.
    pub fn new() -> Self {
        HistoryLog::default()
    }

    /// Records a completed map attempt.
    #[allow(clippy::too_many_arguments)]
    pub fn record_map(&mut self, job: u32, idx: u32, start: SimTime, end: SimTime, node: u32) {
        self.tasks.push(TaskAttemptRecord {
            job,
            kind: TaskKind::Map,
            idx,
            start,
            shuffle_end: None,
            sort_end: None,
            end,
            node,
        });
    }

    /// Records a completed reduce attempt with its phase boundaries.
    #[allow(clippy::too_many_arguments)]
    pub fn record_reduce(
        &mut self,
        job: u32,
        idx: u32,
        start: SimTime,
        shuffle_end: SimTime,
        sort_end: SimTime,
        end: SimTime,
        node: u32,
    ) {
        self.tasks.push(TaskAttemptRecord {
            job,
            kind: TaskKind::Reduce,
            idx,
            start,
            shuffle_end: Some(shuffle_end),
            sort_end: Some(sort_end),
            end,
            node,
        });
    }

    /// Records a completed job.
    pub fn record_job(&mut self, record: JobRecord) {
        self.jobs.push(record);
    }

    /// All task attempts recorded so far.
    pub fn tasks(&self) -> &[TaskAttemptRecord] {
        &self.tasks
    }

    /// All completed jobs recorded so far.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Renders the log in the shared text format, jobs first (sorted by
    /// id), then task records grouped by job.
    pub fn render(&self) -> String {
        let mut lines: Vec<HistoryLine> = Vec::with_capacity(self.jobs.len() + self.tasks.len());
        let mut jobs = self.jobs.clone();
        jobs.sort_by_key(|j| j.id);
        for j in &jobs {
            lines.push(HistoryLine::Job(JobHistoryRecord {
                id: j.id,
                name: j.name.clone(),
                submit: j.submit,
                launch: j.launch.unwrap_or(j.submit),
                finish: j.finish,
                maps: j.maps,
                reduces: j.reduces,
            }));
        }
        let mut tasks = self.tasks.clone();
        tasks.sort_by_key(|t| (t.job, t.kind, t.idx));
        lines.extend(tasks.into_iter().map(HistoryLine::Task));
        write_history(&lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_types::parse_history;

    #[test]
    fn render_and_parse_back() {
        let mut log = HistoryLog::new();
        log.record_job(JobRecord {
            id: 0,
            name: "Sort-16GB".into(),
            submit: SimTime::ZERO,
            launch: Some(SimTime::from_millis(500)),
            finish: SimTime::from_millis(90_000),
            maps: 2,
            reduces: 1,
        });
        log.record_map(0, 1, SimTime::from_millis(600), SimTime::from_millis(5_000), 3);
        log.record_map(0, 0, SimTime::from_millis(500), SimTime::from_millis(4_200), 1);
        log.record_reduce(
            0,
            0,
            SimTime::from_millis(5_000),
            SimTime::from_millis(60_000),
            SimTime::from_millis(61_000),
            SimTime::from_millis(90_000),
            2,
        );
        let text = log.render();
        let lines = parse_history(&text).unwrap();
        assert_eq!(lines.len(), 4);
        // jobs first, then tasks in (job, kind, idx) order
        assert!(matches!(lines[0], HistoryLine::Job(_)));
        match (&lines[1], &lines[2]) {
            (HistoryLine::Task(a), HistoryLine::Task(b)) => {
                assert_eq!((a.idx, b.idx), (0, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_launch_falls_back_to_submit() {
        let mut log = HistoryLog::new();
        log.record_job(JobRecord {
            id: 1,
            name: "x".into(),
            submit: SimTime::from_millis(7),
            launch: None,
            finish: SimTime::from_millis(8),
            maps: 0,
            reduces: 0,
        });
        let text = log.render();
        assert!(text.contains("launch=7"));
    }
}
