//! The testbed simulation loop.
//!
//! A [`ClusterSim`] executes a batch of [`SubmittedJob`]s on the simulated
//! cluster: TaskTrackers heartbeat the JobTracker, which assigns map tasks
//! with HDFS locality preference and reduce tasks under the configured
//! [`ClusterPolicy`]; map durations come from the application cost model
//! scaled by node speed, locality penalty and straggler injection; reduce
//! shuffles run through the shared [`crate::network::ShuffleNetwork`].
//! Completed runs yield per-job results plus a rendered job-history log.

use crate::config::ClusterConfig;
use crate::history::{HistoryLog, JobRecord};
use crate::network::{FlowId, ShuffleNetwork};
use crate::profile::estimate_profile;
use crate::scheduler::ClusterPolicy;
use crate::topology::{BlockMap, Locality, Topology};
use simmr_apps::JobModel;
use simmr_model::{min_slots_for_deadline, SlotAllocation};
use simmr_stats::{Distribution, SeededRng};
use simmr_types::{secs_to_ms, JobId, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A job handed to the testbed.
#[derive(Debug, Clone)]
pub struct SubmittedJob {
    /// Application-on-dataset model.
    pub model: JobModel,
    /// Submission time.
    pub arrival: SimTime,
    /// Optional absolute deadline (used by the EDF policies).
    pub deadline: Option<SimTime>,
    /// Optional explicit `(map, reduce)` slot cap for this job — the
    /// paper's §II *modified FIFO scheduler* that "allocates a requested
    /// number of map/reduce slots" (used by the Figure 1-3 experiments).
    /// Overrides any policy-derived allocation.
    pub slot_cap: Option<(usize, usize)>,
}

/// Completion record of one testbed job.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterJobResult {
    /// Job sequence number (submission order).
    pub id: u32,
    /// Job name.
    pub name: String,
    /// Submission time.
    pub submit: SimTime,
    /// First task launch.
    pub launch: Option<SimTime>,
    /// When the last map task finished.
    pub maps_finished: Option<SimTime>,
    /// Completion time.
    pub finish: SimTime,
    /// Deadline carried by the submission.
    pub deadline: Option<SimTime>,
    /// Map / reduce task counts.
    pub maps: usize,
    /// Reduce task count.
    pub reduces: usize,
}

impl ClusterJobResult {
    /// Job duration (finish − submit).
    pub fn duration_ms(&self) -> u64 {
        self.finish.since(self.submit)
    }
}

/// Output of one testbed run.
#[derive(Debug, Clone)]
pub struct TestbedRun {
    /// Per-job results in submission order.
    pub results: Vec<ClusterJobResult>,
    /// Rendered job-history log (MRProfiler input).
    pub history: String,
    /// Virtual time of the last event.
    pub makespan: SimTime,
    /// Number of discrete events processed (heartbeats dominate — this is
    /// why TaskTracker-level simulators are slow, §IV-E).
    pub events: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    JobArrival { job: u32 },
    Heartbeat { node: u32 },
    MapDone { job: u32, task: u32, node: u32, attempt: u64 },
    ShuffleBoundary,
    SortDone { job: u32, task: u32, node: u32, gen: u32 },
    ReduceDone { job: u32, task: u32, node: u32, gen: u32 },
    NodeDown { node: u32 },
    NodeUp { node: u32 },
}

/// One live map-task attempt (speculation can create several per task).
#[derive(Debug, Clone, Copy)]
struct MapAttempt {
    id: u64,
    node: u32,
    start: SimTime,
}

#[derive(Debug)]
struct ReduceTaskRt {
    node: u32,
    start: SimTime,
    fetch_end: Option<SimTime>,
    sort_end: Option<SimTime>,
    flow: Option<FlowId>,
    /// Attempt generation; stale Sort/ReduceDone events are ignored.
    gen: u32,
}

#[derive(Debug)]
struct JobRt {
    model: JobModel,
    arrival: SimTime,
    deadline: Option<SimTime>,
    active: bool,
    finished: bool,
    launch: Option<SimTime>,
    maps_finish: Option<SimTime>,
    wanted: Option<SlotAllocation>,
    // map-side state
    blocks: BlockMap,
    assigned: Vec<bool>,
    by_node: Vec<Vec<u32>>,
    by_rack: Vec<Vec<u32>>,
    any_cursor: usize,
    pending_maps: usize,
    running_maps: usize,
    done_maps: usize,
    /// Live attempts per map task (empty once the task completed).
    map_attempts: Vec<Vec<MapAttempt>>,
    /// Completion flag per map task.
    map_done: Vec<bool>,
    /// Map tasks requeued after a node failure.
    requeued_blocks: Vec<u32>,
    /// Reduce tasks requeued after a node failure.
    requeued_reduces: Vec<u32>,
    /// Attempt generation per reduce task.
    reduce_gen: Vec<u32>,
    /// Sum of completed map durations (drives speculation thresholds).
    map_dur_sum: u64,
    // reduce-side state
    launched_reduces: usize,
    running_reduces: usize,
    done_reduces: usize,
    reduce_rt: Vec<Option<ReduceTaskRt>>,
    reduce_threshold: usize,
}

impl JobRt {
    fn reduce_eligible(&self) -> bool {
        self.done_maps >= self.reduce_threshold
    }
    fn complete(&self) -> bool {
        self.done_maps == self.model.num_maps && self.done_reduces == self.model.num_reduces
    }
}

/// The testbed simulator.
pub struct ClusterSim {
    config: ClusterConfig,
    policy: ClusterPolicy,
    seed: u64,
    submissions: Vec<SubmittedJob>,
}

impl ClusterSim {
    /// Creates a testbed with the given configuration, JobTracker policy
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`ClusterConfig`].
    pub fn new(config: ClusterConfig, policy: ClusterPolicy, seed: u64) -> Self {
        config.validate().expect("invalid cluster configuration");
        ClusterSim { config, policy, seed, submissions: Vec::new() }
    }

    /// Submits a job.
    pub fn submit(&mut self, model: JobModel, arrival: SimTime, deadline: Option<SimTime>) {
        self.submissions.push(SubmittedJob { model, arrival, deadline, slot_cap: None });
    }

    /// Submits a job with an explicit `(map, reduce)` slot cap — the
    /// paper's modified FIFO that grants a job a fixed number of slots.
    pub fn submit_capped(&mut self, model: JobModel, arrival: SimTime, cap: (usize, usize)) {
        self.submissions.push(SubmittedJob { model, arrival, deadline: None, slot_cap: Some(cap) });
    }

    /// Runs all submitted jobs to completion.
    pub fn run(self) -> TestbedRun {
        Runner::new(self).run()
    }
}

/// Internal mutable run state.
struct Runner {
    config: ClusterConfig,
    policy: ClusterPolicy,
    topology: Topology,
    durations_rng: SeededRng,
    jobs: Vec<JobRt>,
    free_map: Vec<usize>,
    free_reduce: Vec<usize>,
    net: ShuffleNetwork,
    flows_by_job: HashMap<u32, Vec<(FlowId, u32)>>,
    pending_boundary: Option<SimTime>,
    queue: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    seq: u64,
    events: u64,
    remaining_jobs: usize,
    history: HistoryLog,
    makespan: SimTime,
    slot_caps: Vec<Option<(usize, usize)>>,
    attempt_seq: u64,
    dead_attempts: std::collections::HashSet<u64>,
    node_up: Vec<bool>,
    failure_rng: SeededRng,
}

impl Runner {
    fn new(sim: ClusterSim) -> Self {
        let root = SeededRng::new(sim.seed);
        let mut topo_rng = root.fork(1);
        let mut place_rng = root.fork(2);
        let durations_rng = root.fork(3);
        let mut hb_rng = root.fork(4);
        let mut failure_rng = root.fork(5);

        let topology = Topology::new(&sim.config, &mut topo_rng);
        let mut queue = BinaryHeap::new();
        let mut seq = 0u64;
        let push =
            |q: &mut BinaryHeap<Reverse<(SimTime, u64, Ev)>>, t: SimTime, s: &mut u64, e: Ev| {
                q.push(Reverse((t, *s, e)));
                *s += 1;
            };

        // staggered initial heartbeats
        for node in 0..sim.config.num_workers {
            let offset = hb_rng.uniform_u64(0, sim.config.heartbeat_ms.max(1) - 1);
            push(
                &mut queue,
                SimTime::from_millis(offset),
                &mut seq,
                Ev::Heartbeat { node: node as u32 },
            );
        }
        // first node failures, when injection is enabled
        if sim.config.node_mtbf_s > 0.0 {
            use simmr_stats::{Dist, Distribution};
            let mtbf = Dist::Exponential { mean: sim.config.node_mtbf_s * 1000.0 };
            for node in 0..sim.config.num_workers {
                let at = mtbf.sample(&mut failure_rng).max(1.0) as u64;
                push(
                    &mut queue,
                    SimTime::from_millis(at),
                    &mut seq,
                    Ev::NodeDown { node: node as u32 },
                );
            }
        }

        let mut jobs = Vec::with_capacity(sim.submissions.len());
        for (i, sub) in sim.submissions.iter().enumerate() {
            push(&mut queue, sub.arrival, &mut seq, Ev::JobArrival { job: i as u32 });
            let blocks = BlockMap::place(
                sub.model.num_maps,
                &topology,
                sim.config.replication,
                &mut place_rng,
            );
            let mut by_node = vec![Vec::new(); topology.len()];
            let mut by_rack = vec![Vec::new(); topology.num_racks()];
            for (b, reps) in blocks.replicas.iter().enumerate() {
                for &n in reps {
                    by_node[n].push(b as u32);
                    let rack = topology.rack_of[n];
                    if !by_rack[rack].contains(&(b as u32)) {
                        by_rack[rack].push(b as u32);
                    }
                }
            }
            let num_maps = sub.model.num_maps;
            let num_reduces = sub.model.num_reduces;
            let threshold = if sim.config.slowstart <= 0.0 || num_maps == 0 {
                0
            } else {
                ((sim.config.slowstart * num_maps as f64).ceil() as usize).clamp(1, num_maps)
            };
            jobs.push(JobRt {
                model: sub.model.clone(),
                arrival: sub.arrival,
                deadline: sub.deadline,
                active: false,
                finished: false,
                launch: None,
                maps_finish: None,
                wanted: None,
                blocks,
                assigned: vec![false; num_maps],
                by_node,
                by_rack,
                any_cursor: 0,
                pending_maps: num_maps,
                running_maps: 0,
                done_maps: 0,
                map_attempts: vec![Vec::new(); num_maps],
                map_done: vec![false; num_maps],
                requeued_blocks: Vec::new(),
                requeued_reduces: Vec::new(),
                reduce_gen: vec![0; num_reduces],
                map_dur_sum: 0,
                launched_reduces: 0,
                running_reduces: 0,
                done_reduces: 0,
                reduce_rt: std::iter::repeat_with(|| None).take(num_reduces).collect(),
                reduce_threshold: threshold,
            });
        }

        let remaining = jobs.len();
        let slot_caps = sim.submissions.iter().map(|s| s.slot_cap).collect();
        Runner {
            free_map: vec![sim.config.map_slots_per_node; sim.config.num_workers],
            free_reduce: vec![sim.config.reduce_slots_per_node; sim.config.num_workers],
            net: ShuffleNetwork::new(sim.config.shuffle_pool_mb_s, sim.config.per_flow_mb_s),
            flows_by_job: HashMap::new(),
            pending_boundary: None,
            topology,
            durations_rng,
            jobs,
            queue,
            seq,
            events: 0,
            remaining_jobs: remaining,
            history: HistoryLog::new(),
            makespan: SimTime::ZERO,
            slot_caps,
            attempt_seq: 0,
            dead_attempts: std::collections::HashSet::new(),
            node_up: vec![true; sim.config.num_workers],
            failure_rng,
            config: sim.config,
            policy: sim.policy,
        }
    }

    fn push(&mut self, t: SimTime, e: Ev) {
        self.queue.push(Reverse((t, self.seq, e)));
        self.seq += 1;
    }

    fn run(mut self) -> TestbedRun {
        while let Some(Reverse((now, _, ev))) = self.queue.pop() {
            self.events += 1;
            self.makespan = now;
            match ev {
                Ev::JobArrival { job } => self.on_arrival(job, now),
                Ev::Heartbeat { node } => self.on_heartbeat(node, now),
                Ev::MapDone { job, task, node, attempt } => {
                    self.on_map_done(job, task, node, attempt, now)
                }
                Ev::ShuffleBoundary => {
                    if self.pending_boundary == Some(now) {
                        self.pending_boundary = None;
                    }
                    self.refresh_network(now);
                }
                Ev::SortDone { job, task, node, gen } => {
                    self.on_sort_done(job, task, node, gen, now)
                }
                Ev::ReduceDone { job, task, node, gen } => {
                    self.on_reduce_done(job, task, node, gen, now)
                }
                Ev::NodeDown { node } => self.on_node_down(node, now),
                Ev::NodeUp { node } => self.on_node_up(node, now),
            }
            if self.remaining_jobs == 0 {
                break;
            }
        }
        let results = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| ClusterJobResult {
                id: i as u32,
                name: j.model.name.clone(),
                submit: j.arrival,
                launch: j.launch,
                maps_finished: j.maps_finish,
                finish: self
                    .history
                    .jobs()
                    .iter()
                    .find(|r| r.id == i as u32)
                    .map(|r| r.finish)
                    .unwrap_or(self.makespan),
                deadline: j.deadline,
                maps: j.model.num_maps,
                reduces: j.model.num_reduces,
            })
            .collect();
        TestbedRun {
            results,
            history: self.history.render(),
            makespan: self.makespan,
            events: self.events,
        }
    }

    fn on_arrival(&mut self, job: u32, _now: SimTime) {
        if let Some((m, r)) = self.slot_caps[job as usize] {
            let j = &mut self.jobs[job as usize];
            j.active = true;
            j.wanted = Some(SlotAllocation { maps: m, reduces: r });
            return;
        }
        let wanted = if self.policy.caps_allocations() {
            let j = &self.jobs[job as usize];
            j.deadline.map(|d| {
                let rel = d.since(j.arrival);
                let profile = estimate_profile(&j.model, &self.config);
                min_slots_for_deadline(
                    &profile,
                    rel,
                    self.config.total_map_slots(),
                    self.config.total_reduce_slots(),
                )
            })
        } else {
            None
        };
        let j = &mut self.jobs[job as usize];
        j.active = true;
        j.wanted = wanted;
    }

    /// Picks the job whose map task should run next (policy ordering plus
    /// MinEDF caps), or `None`.
    fn pick_map_job(&self) -> Option<u32> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| {
                j.active
                    && !j.finished
                    && j.pending_maps > 0
                    && j.wanted.is_none_or(|w| j.running_maps < w.maps)
            })
            .min_by_key(|(i, j)| self.policy.key(j.arrival, j.deadline, JobId(*i as u32)))
            .map(|(i, _)| i as u32)
    }

    fn pick_reduce_job(&self) -> Option<u32> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| {
                j.active
                    && !j.finished
                    && (j.launched_reduces < j.model.num_reduces || !j.requeued_reduces.is_empty())
                    && j.reduce_eligible()
                    && j.wanted.is_none_or(|w| j.running_reduces < w.reduces)
            })
            .min_by_key(|(i, j)| self.policy.key(j.arrival, j.deadline, JobId(*i as u32)))
            .map(|(i, _)| i as u32)
    }

    /// Locality-aware pending-block selection for `node`.
    fn pick_block(&mut self, job: u32, node: usize) -> (u32, Locality) {
        let rack = self.topology.rack_of[node];
        let j = &mut self.jobs[job as usize];
        // failure-requeued blocks take priority (they gate the map stage)
        if let Some(b) = j.requeued_blocks.pop() {
            let loc = j.blocks.locality(b as usize, node, &self.topology);
            return (b, loc);
        }
        // node-local
        while let Some(b) = j.by_node[node].pop() {
            if !j.assigned[b as usize] {
                return (b, Locality::NodeLocal);
            }
        }
        // rack-local
        while let Some(b) = j.by_rack[rack].pop() {
            if !j.assigned[b as usize] {
                return (b, Locality::RackLocal);
            }
        }
        // anything left
        while j.any_cursor < j.assigned.len() {
            let b = j.any_cursor as u32;
            j.any_cursor += 1;
            if !j.assigned[b as usize] {
                // could still be rack-local via another replica
                let loc = j.blocks.locality(b as usize, node, &self.topology);
                return (b, loc);
            }
        }
        unreachable!("pick_block called with pending_maps > 0 but no unassigned block")
    }

    fn sample_task_seconds(&mut self, dist: &simmr_stats::Dist) -> f64 {
        let mut secs = dist.sample(&mut self.durations_rng).max(0.05);
        if self.durations_rng.unit() < self.config.straggler_prob {
            secs *= self.config.straggler_factor;
        }
        secs
    }

    fn on_heartbeat(&mut self, node: u32, now: SimTime) {
        let n = node as usize;
        if !self.node_up[n] {
            // a down node sends no heartbeats; the chain resumes on NodeUp
            return;
        }
        // assign map slots
        while self.free_map[n] > 0 {
            let Some(job) = self.pick_map_job() else { break };
            let (block, locality) = self.pick_block(job, n);
            let penalty = match locality {
                Locality::NodeLocal => 1.0,
                Locality::RackLocal => self.config.rack_local_penalty,
                Locality::Remote => self.config.remote_penalty,
            };
            let model_dist = self.jobs[job as usize].model.map_time_s;
            let secs = self.sample_task_seconds(&model_dist);
            let duration = secs_to_ms(secs * self.topology.speed_of[n] * penalty).max(1);
            let attempt = self.attempt_seq;
            self.attempt_seq += 1;
            let j = &mut self.jobs[job as usize];
            j.assigned[block as usize] = true;
            j.pending_maps -= 1;
            j.running_maps += 1;
            j.map_attempts[block as usize].push(MapAttempt { id: attempt, node, start: now });
            j.launch.get_or_insert(now);
            self.free_map[n] -= 1;
            self.push(now + duration, Ev::MapDone { job, task: block, node, attempt });
        }
        // speculative execution: duplicate slow-running maps on free slots
        if self.config.speculative_execution {
            while self.free_map[n] > 0 {
                if !self.launch_speculative(n, now) {
                    break;
                }
            }
        }
        // assign reduce slots
        let mut network_touched = false;
        while self.free_reduce[n] > 0 {
            let Some(job) = self.pick_reduce_job() else { break };
            let j = &mut self.jobs[job as usize];
            let task = j.requeued_reduces.pop().unwrap_or_else(|| {
                let t = j.launched_reduces as u32;
                j.launched_reduces += 1;
                t
            });
            j.reduce_gen[task as usize] += 1;
            let gen = j.reduce_gen[task as usize];
            j.running_reduces += 1;
            j.launch.get_or_insert(now);
            self.free_reduce[n] -= 1;
            let total_mb = j.model.shuffle_mb_per_reduce.max(0.0);
            let available = total_mb * j.done_maps as f64 / j.model.num_maps.max(1) as f64;
            let flow = self.net.add_flow(now, total_mb, available);
            self.jobs[job as usize].reduce_rt[task as usize] = Some(ReduceTaskRt {
                node,
                start: now,
                fetch_end: None,
                sort_end: None,
                flow: Some(flow),
                gen,
            });
            self.flows_by_job.entry(job).or_default().push((flow, task));
            network_touched = true;
        }
        if network_touched {
            self.refresh_network(now);
        }
        // next heartbeat while work remains; when the cluster is idle,
        // fast-forward the chain to the next job arrival so long idle gaps
        // don't burn millions of heartbeat events
        if self.remaining_jobs > 0 {
            let mut next = now + self.config.heartbeat_ms.max(1);
            let any_active = self.jobs.iter().any(|j| j.active && !j.finished);
            if !any_active {
                if let Some(arrival) = self
                    .jobs
                    .iter()
                    .filter(|j| !j.active && !j.finished && j.arrival > now)
                    .map(|j| j.arrival)
                    .min()
                {
                    next = next.max(arrival);
                }
            }
            self.push(next, Ev::Heartbeat { node });
        }
    }

    /// Launches one backup attempt for the slowest speculation candidate
    /// visible to `node`; returns false when no candidate exists.
    fn launch_speculative(&mut self, n: usize, now: SimTime) -> bool {
        let threshold = self.config.speculation_threshold;
        let mut best: Option<(u64, u32, u32)> = None; // (elapsed, job, task)
        for (ji, j) in self.jobs.iter().enumerate() {
            if !j.active || j.finished || j.done_maps < 3 {
                continue;
            }
            let avg = j.map_dur_sum as f64 / j.done_maps as f64;
            for (ti, attempts) in j.map_attempts.iter().enumerate() {
                if attempts.len() != 1 {
                    continue; // not running, done, or already speculated
                }
                let elapsed = now.since(attempts[0].start);
                if (elapsed as f64) > threshold * avg && best.is_none_or(|(e, _, _)| elapsed > e) {
                    best = Some((elapsed, ji as u32, ti as u32));
                }
            }
        }
        let Some((_, job, task)) = best else { return false };
        let locality = self.jobs[job as usize].blocks.locality(task as usize, n, &self.topology);
        let penalty = match locality {
            Locality::NodeLocal => 1.0,
            Locality::RackLocal => self.config.rack_local_penalty,
            Locality::Remote => self.config.remote_penalty,
        };
        let dist = self.jobs[job as usize].model.map_time_s;
        let secs = self.sample_task_seconds(&dist);
        let duration = secs_to_ms(secs * self.topology.speed_of[n] * penalty).max(1);
        let attempt = self.attempt_seq;
        self.attempt_seq += 1;
        let node = n as u32;
        let j = &mut self.jobs[job as usize];
        j.running_maps += 1;
        j.map_attempts[task as usize].push(MapAttempt { id: attempt, node, start: now });
        self.free_map[n] -= 1;
        self.push(now + duration, Ev::MapDone { job, task, node, attempt });
        true
    }

    fn on_map_done(&mut self, job: u32, task: u32, node: u32, attempt: u64, now: SimTime) {
        if self.dead_attempts.remove(&attempt) {
            // this attempt was killed when a sibling won; its slot was
            // already freed at kill time
            return;
        }
        self.free_map[node as usize] += 1;
        let (done, total, start) = {
            let j = &mut self.jobs[job as usize];
            let attempts = std::mem::take(&mut j.map_attempts[task as usize]);
            let winner =
                attempts.iter().find(|a| a.id == attempt).expect("completed attempt is registered");
            let start = winner.start;
            // kill losing sibling attempts immediately (Hadoop kills the
            // slower attempt as soon as one finishes)
            for sibling in attempts.iter().filter(|a| a.id != attempt) {
                self.dead_attempts.insert(sibling.id);
                self.free_map[sibling.node as usize] += 1;
                j.running_maps -= 1;
            }
            j.running_maps -= 1;
            j.done_maps += 1;
            j.map_done[task as usize] = true;
            j.map_dur_sum += now.since(start);
            (j.done_maps, j.model.num_maps, start)
        };
        self.history.record_map(job, task, start, now, node);
        // feed availability into this job's shuffle flows
        if let Some(flows) = self.flows_by_job.get(&job) {
            let j = &self.jobs[job as usize];
            let avail = j.model.shuffle_mb_per_reduce * done as f64 / total as f64;
            let flows: Vec<FlowId> = flows.iter().map(|&(f, _)| f).collect();
            for f in flows {
                self.net.set_available(now, f, avail);
            }
            self.refresh_network(now);
        }
        if done == total {
            self.jobs[job as usize].maps_finish = Some(now);
            // map-only jobs finish here — and so do jobs whose reduces all
            // completed before the final map (possible when the shuffle
            // volume is zero)
            if self.jobs[job as usize].complete() {
                self.finalize_job(job, now);
            }
        }
    }

    /// Advances the shuffle fabric: completes finished fetches and
    /// reschedules the next boundary event.
    fn refresh_network(&mut self, now: SimTime) {
        self.net.advance(now);
        // collect completed fetches
        let mut completed: Vec<(u32, u32, FlowId)> = Vec::new();
        for (&job, flows) in &self.flows_by_job {
            for &(flow, task) in flows {
                if self.net.is_complete(flow) {
                    completed.push((job, task, flow));
                }
            }
        }
        for (job, task, flow) in completed {
            self.net.remove(now, flow);
            if let Some(flows) = self.flows_by_job.get_mut(&job) {
                flows.retain(|&(f, _)| f != flow);
                if flows.is_empty() {
                    self.flows_by_job.remove(&job);
                }
            }
            let (node, total_mb) = {
                let j = &mut self.jobs[job as usize];
                let rt = j.reduce_rt[task as usize]
                    .as_mut()
                    .expect("completed flow belongs to a live reduce task");
                rt.fetch_end = Some(now);
                rt.flow = None;
                (rt.node, j.model.shuffle_mb_per_reduce)
            };
            // sort tail + fixed merge overhead end the shuffle phase
            let gen = self.jobs[job as usize].reduce_rt[task as usize]
                .as_ref()
                .expect("reduce task live")
                .gen;
            let sort_ms =
                secs_to_ms(self.config.shuffle_base_s + self.config.sort_s_per_mb * total_mb)
                    .max(1);
            self.push(now + sort_ms, Ev::SortDone { job, task, node, gen });
        }
        // reschedule boundary
        if let Some(b) = self.net.next_boundary(now) {
            let need_push = match self.pending_boundary {
                Some(p) => p <= now || b < p,
                None => true,
            };
            if need_push {
                self.pending_boundary = Some(b);
                self.push(b, Ev::ShuffleBoundary);
            }
        }
    }

    fn on_sort_done(&mut self, job: u32, task: u32, node: u32, gen: u32, now: SimTime) {
        // stale events from attempts killed by a node failure are dropped
        let live = self.jobs[job as usize].reduce_rt[task as usize]
            .as_ref()
            .is_some_and(|rt| rt.gen == gen);
        if !live {
            return;
        }
        // shuffle (fetch + merge/sort) is over: run the reduce function
        let dist = self.jobs[job as usize].model.reduce_time_s;
        let secs = self.sample_task_seconds(&dist);
        let duration = secs_to_ms(secs * self.topology.speed_of[node as usize]).max(1);
        let rt =
            self.jobs[job as usize].reduce_rt[task as usize].as_mut().expect("reduce task live");
        rt.fetch_end.get_or_insert(now);
        rt.sort_end = Some(now);
        self.push(now + duration, Ev::ReduceDone { job, task, node, gen });
    }

    fn on_reduce_done(&mut self, job: u32, task: u32, node: u32, gen: u32, now: SimTime) {
        let live = self.jobs[job as usize].reduce_rt[task as usize]
            .as_ref()
            .is_some_and(|rt| rt.gen == gen);
        if !live {
            return;
        }
        self.free_reduce[node as usize] += 1;
        let (start, fetch_end, sort_end) = {
            let j = &mut self.jobs[job as usize];
            j.running_reduces -= 1;
            j.done_reduces += 1;
            let rt = j.reduce_rt[task as usize].take().expect("reduce task live");
            (rt.start, rt.fetch_end.unwrap_or(now), rt.sort_end.unwrap_or(now))
        };
        self.history.record_reduce(job, task, start, fetch_end, sort_end, now, node);
        if self.jobs[job as usize].complete() {
            self.finalize_job(job, now);
        }
    }

    /// A node crashes: every task attempt running on it is killed. Map
    /// attempts are requeued (sibling speculative attempts elsewhere keep
    /// running); reduce attempts restart from scratch later. Slots on the
    /// node become unavailable until `NodeUp`.
    fn on_node_down(&mut self, node: u32, now: SimTime) {
        if !self.node_up[node as usize] {
            return;
        }
        self.node_up[node as usize] = false;
        self.free_map[node as usize] = 0;
        self.free_reduce[node as usize] = 0;
        let mut network_touched = false;
        for job in 0..self.jobs.len() as u32 {
            // kill map attempts on this node
            let j = &mut self.jobs[job as usize];
            for task in 0..j.model.num_maps {
                let before = j.map_attempts[task].len();
                if before == 0 {
                    continue;
                }
                let mut kept = Vec::with_capacity(before);
                for a in j.map_attempts[task].drain(..) {
                    if a.node == node {
                        self.dead_attempts.insert(a.id);
                        j.running_maps -= 1;
                    } else {
                        kept.push(a);
                    }
                }
                let requeue = kept.is_empty() && before > 0 && !j.map_done[task];
                j.map_attempts[task] = kept;
                if requeue {
                    j.pending_maps += 1;
                    j.requeued_blocks.push(task as u32);
                }
            }
            // kill reduce attempts on this node
            for task in 0..j.model.num_reduces {
                let on_node = j.reduce_rt[task].as_ref().is_some_and(|rt| rt.node == node);
                if !on_node {
                    continue;
                }
                let rt = j.reduce_rt[task].take().expect("checked above");
                j.running_reduces -= 1;
                j.requeued_reduces.push(task as u32);
                if let Some(flow) = rt.flow {
                    self.net.remove(now, flow);
                    if let Some(flows) = self.flows_by_job.get_mut(&job) {
                        flows.retain(|&(f, _)| f != flow);
                        if flows.is_empty() {
                            self.flows_by_job.remove(&job);
                        }
                    }
                    network_touched = true;
                }
            }
        }
        if network_touched {
            self.refresh_network(now);
        }
        let recovery = secs_to_ms(self.config.node_recovery_s).max(1);
        self.push(now + recovery, Ev::NodeUp { node });
    }

    /// A node rejoins: slots restored, heartbeat chain restarted, next
    /// failure scheduled.
    fn on_node_up(&mut self, node: u32, now: SimTime) {
        use simmr_stats::{Dist, Distribution};
        self.node_up[node as usize] = true;
        self.free_map[node as usize] = self.config.map_slots_per_node;
        self.free_reduce[node as usize] = self.config.reduce_slots_per_node;
        if self.remaining_jobs > 0 {
            self.push(now + self.config.heartbeat_ms.max(1), Ev::Heartbeat { node });
            if self.config.node_mtbf_s > 0.0 {
                let mtbf = Dist::Exponential { mean: self.config.node_mtbf_s * 1000.0 };
                let at = mtbf.sample(&mut self.failure_rng).max(1.0) as u64;
                self.push(now + at, Ev::NodeDown { node });
            }
        }
    }

    fn finalize_job(&mut self, job: u32, now: SimTime) {
        let j = &mut self.jobs[job as usize];
        if j.finished {
            return;
        }
        j.finished = true;
        j.active = false;
        self.remaining_jobs -= 1;
        self.history.record_job(JobRecord {
            id: job,
            name: j.model.name.clone(),
            submit: j.arrival,
            launch: j.launch,
            finish: now,
            maps: j.model.num_maps,
            reduces: j.model.num_reduces,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_apps::AppKind;
    use simmr_types::parse_history;

    fn small_job(maps: usize, reduces: usize) -> JobModel {
        let mut job = JobModel::with_task_counts(AppKind::WordCount, maps, reduces);
        // shrink task times so tests stay fast
        job.map_time_s = simmr_stats::Dist::LogNormal { mu: 0.7, sigma: 0.2 }; // ~2 s
        job.reduce_time_s = simmr_stats::Dist::LogNormal { mu: 0.0, sigma: 0.2 }; // ~1 s
        job.shuffle_mb_per_reduce = 40.0;
        job
    }

    fn run_one(policy: ClusterPolicy, seed: u64) -> TestbedRun {
        let mut sim = ClusterSim::new(ClusterConfig::tiny(8), policy, seed);
        sim.submit(small_job(16, 4), SimTime::ZERO, None);
        sim.run()
    }

    #[test]
    fn single_job_completes_with_valid_history() {
        let run = run_one(ClusterPolicy::Fifo, 7);
        assert_eq!(run.results.len(), 1);
        let r = &run.results[0];
        assert!(r.finish > SimTime::ZERO);
        assert!(r.launch.is_some());
        assert!(r.maps_finished.is_some());
        assert!(r.maps_finished.unwrap() <= r.finish);
        // history parses and contains every task
        let lines = parse_history(&run.history).unwrap();
        let maps = lines
            .iter()
            .filter(|l| matches!(l, simmr_types::HistoryLine::Task(t) if t.kind == simmr_types::TaskKind::Map))
            .count();
        let reduces = lines
            .iter()
            .filter(|l| matches!(l, simmr_types::HistoryLine::Task(t) if t.kind == simmr_types::TaskKind::Reduce))
            .count();
        assert_eq!(maps, 16);
        assert_eq!(reduces, 4);
    }

    #[test]
    fn reduce_phase_boundaries_ordered() {
        let run = run_one(ClusterPolicy::Fifo, 11);
        for line in parse_history(&run.history).unwrap() {
            if let simmr_types::HistoryLine::Task(t) = line {
                if t.kind == simmr_types::TaskKind::Reduce {
                    let se = t.shuffle_end.unwrap();
                    let so = t.sort_end.unwrap();
                    assert!(t.start <= se, "shuffle starts before it ends");
                    assert!(se <= so, "sort after fetch");
                    assert!(so <= t.end, "reduce phase after sort");
                } else {
                    assert!(t.start <= t.end);
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_one(ClusterPolicy::Fifo, 13);
        let b = run_one(ClusterPolicy::Fifo, 13);
        assert_eq!(a.history, b.history);
        assert_eq!(a.events, b.events);
        let c = run_one(ClusterPolicy::Fifo, 14);
        assert_ne!(a.history, c.history);
    }

    #[test]
    fn fifo_orders_two_jobs() {
        let mut sim = ClusterSim::new(ClusterConfig::tiny(4), ClusterPolicy::Fifo, 3);
        sim.submit(small_job(8, 2), SimTime::ZERO, None);
        sim.submit(small_job(8, 2), SimTime::from_millis(100), None);
        let run = sim.run();
        assert!(run.results[0].finish <= run.results[1].finish);
    }

    #[test]
    fn maxedf_prioritizes_urgent_deadline() {
        // job 1 has the earlier deadline despite arriving at the same time
        let build = |policy| {
            let mut sim = ClusterSim::new(ClusterConfig::tiny(4), policy, 5);
            sim.submit(small_job(12, 0), SimTime::ZERO, Some(SimTime::from_secs(3600)));
            sim.submit(small_job(4, 0), SimTime::ZERO, Some(SimTime::from_secs(10)));
            sim.run()
        };
        let edf = build(ClusterPolicy::MaxEdf);
        let fifo = build(ClusterPolicy::Fifo);
        // under EDF the urgent job finishes earlier than under FIFO
        assert!(
            edf.results[1].finish < fifo.results[1].finish,
            "edf {} vs fifo {}",
            edf.results[1].finish,
            fifo.results[1].finish
        );
    }

    #[test]
    fn minedf_throttles_relaxed_job() {
        let deadline = SimTime::from_secs(3600); // very relaxed
        let run = |policy| {
            let mut sim = ClusterSim::new(ClusterConfig::tiny(8), policy, 9);
            sim.submit(small_job(32, 4), SimTime::ZERO, Some(deadline));
            sim.run()
        };
        let min = run(ClusterPolicy::MinEdf);
        let max = run(ClusterPolicy::MaxEdf);
        // MinEDF holds the job to few slots, so it takes longer...
        assert!(min.results[0].finish > max.results[0].finish);
        // ...but still meets the deadline
        assert!(min.results[0].finish <= deadline);
    }

    #[test]
    fn map_only_job_finalizes_at_map_completion() {
        let mut sim = ClusterSim::new(ClusterConfig::tiny(4), ClusterPolicy::Fifo, 21);
        sim.submit(small_job(6, 0), SimTime::ZERO, None);
        let run = sim.run();
        let r = &run.results[0];
        assert_eq!(r.maps_finished, Some(r.finish));
        assert_eq!(r.reduces, 0);
    }

    #[test]
    fn idle_gaps_are_cheap() {
        // second job arrives 10,000 s later; the idle fast-forward keeps
        // the event count far below the naive 10k s / 0.6 s * nodes
        let mut sim = ClusterSim::new(ClusterConfig::tiny(8), ClusterPolicy::Fifo, 23);
        sim.submit(small_job(8, 2), SimTime::ZERO, None);
        sim.submit(small_job(8, 2), SimTime::from_secs(10_000), None);
        let run = sim.run();
        assert_eq!(run.results.len(), 2);
        assert!(run.results[1].finish > SimTime::from_secs(10_000));
        assert!(
            run.events < 20_000,
            "idle period should not generate heartbeats: {} events",
            run.events
        );
    }

    #[test]
    fn explicit_slot_cap_limits_parallelism() {
        // 16 maps on an 8-slot cluster capped at 2 map slots: at least
        // 8 waves instead of 2 => much longer completion
        let capped = {
            let mut sim = ClusterSim::new(ClusterConfig::tiny(8), ClusterPolicy::Fifo, 17);
            sim.submit_capped(small_job(16, 0), SimTime::ZERO, (2, 2));
            sim.run()
        };
        let free = {
            let mut sim = ClusterSim::new(ClusterConfig::tiny(8), ClusterPolicy::Fifo, 17);
            sim.submit(small_job(16, 0), SimTime::ZERO, None);
            sim.run()
        };
        assert!(
            capped.results[0].duration_ms() > 3 * free.results[0].duration_ms() / 2,
            "cap ignored: capped {} vs free {}",
            capped.results[0].duration_ms(),
            free.results[0].duration_ms()
        );
    }

    #[test]
    fn most_maps_run_node_local() {
        // with replication 3 on 8 nodes, locality-aware assignment should
        // make the large majority of map reads node-local, visible as most
        // map durations NOT carrying the remote penalty. We proxy this by
        // comparing against a run with crushing remote penalty: completion
        // should barely move.
        let base = {
            let mut sim = ClusterSim::new(ClusterConfig::tiny(8), ClusterPolicy::Fifo, 31);
            sim.submit(small_job(64, 0), SimTime::ZERO, None);
            sim.run()
        };
        let punished = {
            let mut config = ClusterConfig::tiny(8);
            config.remote_penalty = 10.0;
            let mut sim = ClusterSim::new(config, ClusterPolicy::Fifo, 31);
            sim.submit(small_job(64, 0), SimTime::ZERO, None);
            sim.run()
        };
        let a = base.results[0].duration_ms() as f64;
        let b = punished.results[0].duration_ms() as f64;
        assert!(
            b < a * 2.0,
            "remote penalty dominates ({a} -> {b}): locality preference is broken"
        );
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use simmr_apps::AppKind;

    fn straggly_config(on: bool) -> ClusterConfig {
        ClusterConfig {
            straggler_prob: 0.2,
            straggler_factor: 8.0,
            speculative_execution: on,
            ..ClusterConfig::tiny(8)
        }
    }

    fn straggly_job() -> JobModel {
        let mut job = JobModel::with_task_counts(AppKind::WordCount, 32, 0);
        job.map_time_s = simmr_stats::Dist::LogNormal { mu: 1.0, sigma: 0.1 };
        job
    }

    #[test]
    fn speculation_rescues_stragglers() {
        // a backup attempt can itself straggle, so compare means over seeds
        let mean_duration = |on: bool| -> f64 {
            (0..6u64)
                .map(|seed| {
                    let mut sim =
                        ClusterSim::new(straggly_config(on), ClusterPolicy::Fifo, 90 + seed);
                    sim.submit(straggly_job(), SimTime::ZERO, None);
                    sim.run().results[0].duration_ms() as f64
                })
                .sum::<f64>()
                / 6.0
        };
        let without = mean_duration(false);
        let with = mean_duration(true);
        assert!(
            with < 0.85 * without,
            "speculation should shorten straggler-heavy jobs: {with:.0} vs {without:.0}"
        );
    }

    #[test]
    fn speculation_keeps_history_consistent() {
        let mut sim = ClusterSim::new(straggly_config(true), ClusterPolicy::Fifo, 7);
        sim.submit(straggly_job(), SimTime::ZERO, None);
        let run = sim.run();
        // exactly one history record per map task despite duplicate attempts
        let lines = simmr_types::parse_history(&run.history).unwrap();
        let maps = lines
            .iter()
            .filter(|l| {
                matches!(l, simmr_types::HistoryLine::Task(t)
                    if t.kind == simmr_types::TaskKind::Map)
            })
            .count();
        assert_eq!(maps, 32);
        // and the run is still deterministic
        let mut sim = ClusterSim::new(straggly_config(true), ClusterPolicy::Fifo, 7);
        sim.submit(straggly_job(), SimTime::ZERO, None);
        assert_eq!(sim.run().history, run.history);
    }

    #[test]
    fn speculation_off_is_default_and_harmless_when_on_without_stragglers() {
        assert!(!ClusterConfig::default().speculative_execution);
        // no stragglers: speculation should barely change anything
        let run_with = |on: bool| {
            let config = ClusterConfig {
                straggler_prob: 0.0,
                speculative_execution: on,
                ..ClusterConfig::tiny(8)
            };
            let mut sim = ClusterSim::new(config, ClusterPolicy::Fifo, 3);
            sim.submit(straggly_job(), SimTime::ZERO, None);
            sim.run()
        };
        let a = run_with(false).results[0].duration_ms() as f64;
        let b = run_with(true).results[0].duration_ms() as f64;
        assert!((b / a - 1.0).abs() < 0.10, "{a} vs {b}");
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use simmr_apps::AppKind;

    fn flaky_config(mtbf_s: f64) -> ClusterConfig {
        ClusterConfig { node_mtbf_s: mtbf_s, node_recovery_s: 30.0, ..ClusterConfig::tiny(8) }
    }

    fn job(maps: usize, reduces: usize) -> JobModel {
        let mut job = JobModel::with_task_counts(AppKind::WordCount, maps, reduces);
        job.map_time_s = simmr_stats::Dist::LogNormal { mu: 1.2, sigma: 0.2 };
        job.reduce_time_s = simmr_stats::Dist::LogNormal { mu: 0.5, sigma: 0.2 };
        job.shuffle_mb_per_reduce = 40.0;
        job
    }

    #[test]
    fn jobs_survive_node_failures() {
        // aggressive failures: every node fails about once a minute
        let mut sim = ClusterSim::new(flaky_config(60.0), ClusterPolicy::Fifo, 1);
        sim.submit(job(48, 12), SimTime::ZERO, None);
        let run = sim.run();
        assert_eq!(run.results.len(), 1);
        let lines = simmr_types::parse_history(&run.history).unwrap();
        let (mut maps, mut reduces) = (0, 0);
        for l in &lines {
            if let simmr_types::HistoryLine::Task(t) = l {
                match t.kind {
                    simmr_types::TaskKind::Map => maps += 1,
                    simmr_types::TaskKind::Reduce => reduces += 1,
                }
            }
        }
        // every task completes exactly once despite kills and re-runs
        assert_eq!(maps, 48);
        assert_eq!(reduces, 12);
    }

    #[test]
    fn failures_slow_jobs_down() {
        let run_with = |mtbf: f64, seed: u64| {
            let mut sim = ClusterSim::new(flaky_config(mtbf), ClusterPolicy::Fifo, seed);
            sim.submit(job(64, 16), SimTime::ZERO, None);
            sim.run().results[0].duration_ms() as f64
        };
        let stable: f64 = (0..4).map(|s| run_with(0.0, s)).sum::<f64>() / 4.0;
        let flaky: f64 = (0..4).map(|s| run_with(45.0, s)).sum::<f64>() / 4.0;
        assert!(
            flaky > stable * 1.05,
            "failures should cost time: stable {stable:.0} vs flaky {flaky:.0}"
        );
    }

    #[test]
    fn failure_runs_are_deterministic() {
        let go = || {
            let mut sim = ClusterSim::new(flaky_config(50.0), ClusterPolicy::Fifo, 77);
            sim.submit(job(40, 8), SimTime::ZERO, None);
            sim.run()
        };
        let a = go();
        let b = go();
        assert_eq!(a.history, b.history);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn zero_mtbf_disables_injection() {
        let mut sim = ClusterSim::new(flaky_config(0.0), ClusterPolicy::Fifo, 5);
        sim.submit(job(16, 4), SimTime::ZERO, None);
        let with_failures_off = sim.run();
        let mut sim = ClusterSim::new(ClusterConfig::tiny(8), ClusterPolicy::Fifo, 5);
        sim.submit(job(16, 4), SimTime::ZERO, None);
        let baseline = sim.run();
        // recovery_s differs but is unused at mtbf=0: identical runs
        assert_eq!(with_failures_off.history, baseline.history);
    }
}

#[cfg(test)]
mod zero_shuffle_tests {
    use super::*;
    use simmr_apps::AppKind;

    /// Regression: a job whose reduces all finish before its last map
    /// (zero shuffle bytes) must still finalize.
    #[test]
    fn zero_byte_shuffles_finalize() {
        let mut sim = ClusterSim::new(ClusterConfig::tiny(8), ClusterPolicy::Fifo, 0x5F);
        let mut job = JobModel::with_task_counts(AppKind::Sort, 48, 16);
        job.map_time_s = simmr_stats::Dist::Constant { value: 3.0 };
        job.reduce_time_s = simmr_stats::Dist::Constant { value: 2.0 };
        job.shuffle_mb_per_reduce = 0.0;
        sim.submit(job, SimTime::ZERO, None);
        let run = sim.run();
        assert_eq!(run.results.len(), 1);
        // the job ends with its map stage (reduces were done long before)
        assert_eq!(run.results[0].maps_finished, Some(run.results[0].finish));
        assert!(run.events < 10_000, "no heartbeat spin: {} events", run.events);
    }
}
