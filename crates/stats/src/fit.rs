//! Distribution fitting.
//!
//! §V-C of the paper extracts the CDF of Facebook task durations and fits
//! "more than 60 distributions" with StatAssist, picking the best by the
//! Kolmogorov–Smirnov statistic (LogNormal wins). This module reproduces the
//! pipeline with a pragmatic candidate family — LogNormal, Exponential,
//! Normal, Uniform, Weibull, Pareto — each fitted by maximum likelihood or
//! method of moments, then ranked by K-S.

use crate::dist::Dist;
use crate::ks::ks_vs_dist;
use crate::summary::Summary;

/// Result of fitting one candidate distribution family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// The fitted distribution with estimated parameters.
    pub dist: Dist,
    /// K-S statistic of the fit (lower is better).
    pub ks: f64,
}

/// MLE fit of a LogNormal: `mu, sigma` = mean/std of `ln x` over positive
/// samples. Returns `None` when fewer than 2 positive samples exist.
pub fn fit_lognormal(samples: &[f64]) -> Option<Dist> {
    let logs: Vec<f64> = samples.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.len() < 2 {
        return None;
    }
    let s = Summary::of(&logs);
    if s.std <= 0.0 {
        return None;
    }
    Some(Dist::LogNormal { mu: s.mean, sigma: s.std })
}

/// MLE fit of an Exponential: mean = sample mean. `None` for an empty or
/// non-positive-mean sample.
pub fn fit_exponential(samples: &[f64]) -> Option<Dist> {
    if samples.is_empty() {
        return None;
    }
    let s = Summary::of(samples);
    if s.mean <= 0.0 {
        return None;
    }
    Some(Dist::Exponential { mean: s.mean })
}

/// MLE fit of a Normal.
pub fn fit_normal(samples: &[f64]) -> Option<Dist> {
    if samples.len() < 2 {
        return None;
    }
    let s = Summary::of(samples);
    if s.std <= 0.0 {
        return None;
    }
    Some(Dist::Normal { mu: s.mean, sigma: s.std })
}

/// Method-of-moments fit of a Uniform over `[min, max]`.
pub fn fit_uniform(samples: &[f64]) -> Option<Dist> {
    if samples.len() < 2 {
        return None;
    }
    let s = Summary::of(samples);
    if s.min >= s.max {
        return None;
    }
    Some(Dist::Uniform { lo: s.min, hi: s.max })
}

/// Approximate method-of-moments fit of a Weibull.
///
/// The shape `k` solves `CV² = Γ(1+2/k)/Γ(1+1/k)² − 1`; we invert with a
/// bisection over `k ∈ [0.1, 20]`, then set the scale from the mean.
pub fn fit_weibull(samples: &[f64]) -> Option<Dist> {
    let positive: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
    if positive.len() < 2 {
        return None;
    }
    let s = Summary::of(&positive);
    if s.mean <= 0.0 || s.std <= 0.0 {
        return None;
    }
    let target_cv2 = (s.std / s.mean).powi(2);
    let cv2_of = |k: f64| -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / k);
        let g2 = ln_gamma(1.0 + 2.0 / k);
        (g2 - 2.0 * g1).exp() - 1.0
    };
    // cv2_of is decreasing in k
    let (mut lo, mut hi) = (0.1f64, 20.0f64);
    if target_cv2 > cv2_of(lo) || target_cv2 < cv2_of(hi) {
        return None;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if cv2_of(mid) > target_cv2 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let shape = 0.5 * (lo + hi);
    let scale = s.mean / ln_gamma(1.0 + 1.0 / shape).exp();
    Some(Dist::Weibull { scale, shape })
}

/// MLE fit of a Pareto: `scale = min(x)`, `alpha = n / Σ ln(x/scale)`.
pub fn fit_pareto(samples: &[f64]) -> Option<Dist> {
    let positive: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
    if positive.len() < 2 {
        return None;
    }
    let scale = positive.iter().copied().fold(f64::INFINITY, f64::min);
    let log_sum: f64 = positive.iter().map(|&x| (x / scale).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    Some(Dist::Pareto { scale, alpha: positive.len() as f64 / log_sum })
}

/// Fits the whole candidate family and returns the reports sorted by
/// ascending K-S statistic (best first). Candidates that fail to fit or
/// lack a closed-form CDF are skipped.
pub fn fit_best(samples: &[f64]) -> Vec<FitReport> {
    let candidates = [
        fit_lognormal(samples),
        fit_exponential(samples),
        fit_normal(samples),
        fit_uniform(samples),
        fit_weibull(samples),
        fit_pareto(samples),
    ];
    let mut reports: Vec<FitReport> = candidates
        .into_iter()
        .flatten()
        .filter_map(|dist| ks_vs_dist(samples, &dist).map(|ks| FitReport { dist, ks }))
        .collect();
    reports.sort_by(|a, b| a.ks.partial_cmp(&b.ks).unwrap());
    reports
}

/// Lanczos ln Γ(x) for x > 0.
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::rng::SeededRng;

    #[test]
    fn lognormal_recovers_parameters() {
        let mut rng = SeededRng::new(1);
        let truth = Dist::LogNormal { mu: 9.9511, sigma: 1.6764 };
        let s = truth.sample_n(&mut rng, 20_000);
        match fit_lognormal(&s).unwrap() {
            Dist::LogNormal { mu, sigma } => {
                assert!((mu - 9.9511).abs() < 0.05, "mu={mu}");
                assert!((sigma - 1.6764).abs() < 0.05, "sigma={sigma}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exponential_recovers_mean() {
        let mut rng = SeededRng::new(2);
        let s = Dist::Exponential { mean: 42.0 }.sample_n(&mut rng, 20_000);
        match fit_exponential(&s).unwrap() {
            Dist::Exponential { mean } => assert!((mean - 42.0).abs() < 1.5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn weibull_recovers_shape() {
        let mut rng = SeededRng::new(3);
        let s = Dist::Weibull { scale: 10.0, shape: 1.8 }.sample_n(&mut rng, 20_000);
        match fit_weibull(&s).unwrap() {
            Dist::Weibull { scale, shape } => {
                assert!((shape - 1.8).abs() < 0.15, "shape={shape}");
                assert!((scale - 10.0).abs() < 0.5, "scale={scale}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pareto_recovers_alpha() {
        let mut rng = SeededRng::new(4);
        let s = Dist::Pareto { scale: 2.0, alpha: 2.5 }.sample_n(&mut rng, 20_000);
        match fit_pareto(&s).unwrap() {
            Dist::Pareto { scale, alpha } => {
                assert!((scale - 2.0).abs() < 0.01);
                assert!((alpha - 2.5).abs() < 0.1, "alpha={alpha}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn best_fit_picks_lognormal_for_lognormal_data() {
        // the §V-C scenario: LogNormal data should rank LogNormal first
        let mut rng = SeededRng::new(5);
        let s = Dist::FACEBOOK_MAP_MS.sample_n(&mut rng, 5_000);
        let reports = fit_best(&s);
        assert!(!reports.is_empty());
        assert!(matches!(reports[0].dist, Dist::LogNormal { .. }), "best fit was {:?}", reports[0]);
        assert!(reports[0].ks < 0.05);
        // reports sorted ascending
        for w in reports.windows(2) {
            assert!(w[0].ks <= w[1].ks);
        }
    }

    #[test]
    fn best_fit_picks_exponential_for_exponential_data() {
        let mut rng = SeededRng::new(6);
        let s = Dist::Exponential { mean: 100.0 }.sample_n(&mut rng, 5_000);
        let reports = fit_best(&s);
        // exponential data is also Weibull(shape≈1) and Gamma(1), so accept either
        match reports[0].dist {
            Dist::Exponential { .. } => {}
            Dist::Weibull { shape, .. } => assert!((shape - 1.0).abs() < 0.1),
            other => panic!("surprising best fit {other:?}"),
        }
    }

    #[test]
    fn degenerate_samples_yield_no_fits() {
        assert!(fit_lognormal(&[]).is_none());
        assert!(fit_lognormal(&[5.0]).is_none());
        assert!(fit_lognormal(&[3.0, 3.0, 3.0]).is_none()); // zero variance
        assert!(fit_exponential(&[]).is_none());
        assert!(fit_normal(&[1.0]).is_none());
        assert!(fit_uniform(&[2.0, 2.0]).is_none());
        assert!(fit_pareto(&[5.0, 5.0]).is_none());
        assert!(fit_best(&[]).is_empty());
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-8);
    }
}
