//! # simmr-stats
//!
//! Statistics substrate for SimMR-RS.
//!
//! The paper leans on a handful of statistical tools:
//!
//! * **synthetic trace generation** needs parametric samplers — most
//!   importantly the LogNormal distributions fitted to the Facebook workload
//!   in §V-C (`LN(9.9511, 1.6764)` for maps, `LN(12.375, 1.6262)` for
//!   reduces, milliseconds);
//! * **Table I** compares task-duration distributions across executions with
//!   the *symmetric Kullback-Leibler divergence*;
//! * **Figure 3** plots empirical CDFs of task durations;
//! * the Facebook fit is selected by the *Kolmogorov-Smirnov* statistic over
//!   a family of candidate distributions.
//!
//! All of these live here, self-contained on top of `rand`: samplers
//! ([`dist`]), empirical CDFs ([`cdf`]), histogram-based symmetric KL
//! ([`kl`]), K-S statistics ([`ks`]), maximum-likelihood/method-of-moments
//! fitting ([`fit`]), and scalar summaries ([`summary`]). The
//! scoped-thread sweep fan-out ([`par`]) also lives here so both the
//! experiment harness and the serve layer can share it.

pub mod cdf;
pub mod dist;
pub mod fit;
pub mod kl;
pub mod ks;
pub mod par;
pub mod rng;
pub mod summary;

pub use cdf::EmpiricalCdf;
pub use dist::{Dist, Distribution};
pub use fit::{fit_best, fit_exponential, fit_lognormal, fit_normal, FitReport};
pub use kl::{symmetric_kl, KlOptions};
pub use ks::{ks_two_sample, ks_vs_dist};
pub use par::{parallel_mean, parallel_sweep};
pub use rng::SeededRng;
pub use summary::{percentile, Summary};
