//! Kolmogorov–Smirnov statistics.
//!
//! §V-C of the paper selects the Facebook task-duration model by fitting
//! many candidate distributions and keeping the one with the smallest K-S
//! statistic (LogNormal wins with K-S ≈ 0.1056 for maps, 0.0451 for
//! reduces). [`ks_vs_dist`] reproduces that machinery; [`ks_two_sample`] is
//! the two-sample variant used in tests.

use crate::cdf::EmpiricalCdf;
use crate::dist::Distribution;

/// One-sample K-S statistic: max |F_n(x) − F(x)| over the sample points,
/// where `F` is the candidate's closed-form CDF. Returns `None` when the
/// distribution has no closed-form CDF or the sample is empty.
pub fn ks_vs_dist<D: Distribution>(samples: &[f64], dist: &D) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let ecdf = EmpiricalCdf::new(samples);
    let n = ecdf.len() as f64;
    let mut d_max: f64 = 0.0;
    for (i, &x) in ecdf.support().iter().enumerate() {
        let f = dist.cdf(x)?;
        // compare against both the left and right limit of the step
        let fn_hi = (i + 1) as f64 / n;
        let fn_lo = i as f64 / n;
        d_max = d_max.max((fn_hi - f).abs()).max((f - fn_lo).abs());
    }
    Some(d_max)
}

/// Two-sample K-S statistic: max vertical distance between the two
/// empirical CDFs.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> f64 {
    EmpiricalCdf::new(a).max_distance(&EmpiricalCdf::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Dist, Distribution};
    use crate::rng::SeededRng;

    #[test]
    fn correct_model_scores_low() {
        let mut rng = SeededRng::new(1);
        let d = Dist::LogNormal { mu: 2.0, sigma: 0.7 };
        let s = d.sample_n(&mut rng, 4000);
        let ks = ks_vs_dist(&s, &d).unwrap();
        assert!(ks < 0.05, "ks={ks}");
    }

    #[test]
    fn wrong_model_scores_high() {
        let mut rng = SeededRng::new(2);
        let s = Dist::LogNormal { mu: 2.0, sigma: 0.7 }.sample_n(&mut rng, 4000);
        let wrong = Dist::Exponential { mean: 5.0 };
        let ks = ks_vs_dist(&s, &wrong).unwrap();
        assert!(ks > 0.15, "ks={ks}");
    }

    #[test]
    fn no_closed_form_gives_none() {
        let s = [1.0, 2.0];
        assert_eq!(ks_vs_dist(&s, &Dist::Gamma { shape: 2.0, scale: 1.0 }), None);
    }

    #[test]
    fn empty_sample_gives_none() {
        assert_eq!(ks_vs_dist(&[], &Dist::Exponential { mean: 1.0 }), None);
    }

    #[test]
    fn two_sample_identical_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(ks_two_sample(&a, &a), 0.0);
    }

    #[test]
    fn two_sample_disjoint_one() {
        assert_eq!(ks_two_sample(&[1.0, 2.0], &[5.0, 6.0]), 1.0);
    }

    #[test]
    fn ks_bounds() {
        let mut rng = SeededRng::new(3);
        let a = Dist::Uniform { lo: 0.0, hi: 1.0 }.sample_n(&mut rng, 500);
        let b = Dist::Uniform { lo: 0.5, hi: 1.5 }.sample_n(&mut rng, 500);
        let ks = ks_two_sample(&a, &b);
        assert!(ks > 0.3 && ks <= 1.0, "ks={ks}");
    }
}
