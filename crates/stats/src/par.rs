//! Thread fan-out for embarrassingly parallel sweeps.
//!
//! The figure harnesses repeat a simulation hundreds of times with
//! different seeds, and the serve layer fans batched scenario queries out
//! over all cores. [`parallel_sweep`] is the one shared implementation of
//! that pattern (it used to be hand-rolled per binary): repetitions are
//! split into contiguous chunks, one per available core, and executed on
//! scoped threads. It lives here, below both `simmr-bench` and
//! `simmr-serve`, so either side can use it without depending on the
//! other.

use std::thread;

/// Runs `f(rep)` for every `rep in 0..reps` across all available cores and
/// returns the results in repetition order.
///
/// `f` must be deterministic per `rep` (seed derived from the index) for
/// sweeps to be reproducible regardless of thread count.
pub fn parallel_sweep<R, F>(reps: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if reps == 0 {
        return Vec::new();
    }
    let threads = thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(reps);
    let chunk = reps.div_ceil(threads);
    let f = &f;
    let mut chunks: Vec<Vec<R>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(reps);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(reps);
    for c in &mut chunks {
        out.append(c);
    }
    out
}

/// Mean of `f(rep)` over `reps` repetitions, fanned out with
/// [`parallel_sweep`]. Returns 0.0 for `reps == 0`.
pub fn parallel_mean<F>(reps: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    if reps == 0 {
        return 0.0;
    }
    parallel_sweep(reps, f).iter().sum::<f64>() / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rep_order() {
        let v = parallel_sweep(100, |r| r * 2);
        assert_eq!(v, (0..100).map(|r| r * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep() {
        assert!(parallel_sweep(0, |r| r).is_empty());
        assert_eq!(parallel_mean(0, |_| 1.0), 0.0);
    }

    #[test]
    fn mean_matches_serial() {
        let mean = parallel_mean(37, |r| r as f64);
        assert!((mean - 18.0).abs() < 1e-9);
    }

    #[test]
    fn more_reps_than_cores() {
        let v = parallel_sweep(3, |r| r + 1);
        assert_eq!(v, vec![1, 2, 3]);
    }
}
