//! Empirical cumulative distribution functions (Figure 3 of the paper plots
//! CDFs of map/shuffle/reduce task durations under different allocations).

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from (not necessarily sorted) samples; NaNs are dropped.
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        EmpiricalCdf { sorted }
    }

    /// Builds a CDF from integer millisecond durations.
    pub fn from_ms(samples: &[u64]) -> Self {
        let f: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        EmpiricalCdf::new(&f)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` = fraction of samples `<= x`; 0 for an empty CDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x
        let cnt = self.sorted.partition_point(|&v| v <= x);
        cnt as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample `x` with `F(x) >= q` (`0 < q <= 1`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[idx - 1])
    }

    /// The sorted sample values (support points of the step function).
    pub fn support(&self) -> &[f64] {
        &self.sorted
    }

    /// `(x, F(x))` pairs at every support point — the series plotted in
    /// Figure 3.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted.iter().enumerate().map(|(i, &x)| (x, (i + 1) as f64 / n as f64)).collect()
    }

    /// Maximum vertical distance to another empirical CDF (the two-sample
    /// K-S statistic, exposed here for convenience).
    pub fn max_distance(&self, other: &EmpiricalCdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_function() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(99.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let cdf = EmpiricalCdf::new(&[2.0, 2.0, 2.0, 5.0]);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(1.9), 0.0);
    }

    #[test]
    fn quantiles() {
        let cdf = EmpiricalCdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.quantile(0.25), Some(10.0));
        assert_eq!(cdf.quantile(0.5), Some(20.0));
        assert_eq!(cdf.quantile(1.0), Some(40.0));
        assert_eq!(cdf.quantile(0.0001), Some(10.0));
        assert_eq!(EmpiricalCdf::new(&[]).quantile(0.5), None);
    }

    #[test]
    fn points_are_monotone() {
        let cdf = EmpiricalCdf::from_ms(&[5, 1, 3]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (5.0, 1.0));
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn identical_cdfs_have_zero_distance() {
        let a = EmpiricalCdf::new(&[1.0, 2.0, 3.0]);
        let b = EmpiricalCdf::new(&[3.0, 1.0, 2.0]);
        assert_eq!(a.max_distance(&b), 0.0);
    }

    #[test]
    fn disjoint_cdfs_have_distance_one() {
        let a = EmpiricalCdf::new(&[1.0, 2.0]);
        let b = EmpiricalCdf::new(&[10.0, 20.0]);
        assert_eq!(a.max_distance(&b), 1.0);
    }

    #[test]
    fn nan_filtered() {
        let cdf = EmpiricalCdf::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn empty_eval_is_zero() {
        assert_eq!(EmpiricalCdf::new(&[]).eval(1.0), 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The empirical CDF is monotone, bounded in [0,1], and hits 1 at
        /// its maximum support point.
        #[test]
        fn cdf_is_a_cdf(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let cdf = EmpiricalCdf::new(&samples);
            let mut last = 0.0;
            for &x in cdf.support() {
                let y = cdf.eval(x);
                prop_assert!((0.0..=1.0).contains(&y));
                prop_assert!(y >= last);
                last = y;
            }
            let max = cdf.support().last().copied().unwrap();
            prop_assert_eq!(cdf.eval(max), 1.0);
            prop_assert_eq!(cdf.eval(max + 1.0), 1.0);
        }

        /// quantile() inverts eval(): F(Q(q)) >= q for all q in (0,1].
        #[test]
        fn quantile_inverts_eval(
            samples in proptest::collection::vec(0.0f64..1e4, 1..100),
            q in 0.01f64..1.0,
        ) {
            let cdf = EmpiricalCdf::new(&samples);
            let x = cdf.quantile(q).unwrap();
            prop_assert!(cdf.eval(x) >= q - 1e-9);
        }
    }
}
