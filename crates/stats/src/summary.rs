//! Scalar summaries of samples.

/// Mean / std / min / max / percentiles of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice of `f64` values.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Summary { count: values.len(), mean, std: var.sqrt(), min, max }
    }

    /// Summarises integer durations (milliseconds).
    pub fn of_ms(values: &[u64]) -> Summary {
        let f: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&f)
    }
}

/// p-th percentile (`0 <= p <= 100`) with linear interpolation;
/// `None` for an empty sample.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_ms() {
        let s = Summary::of_ms(&[10, 20, 30]);
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.max, 30.0);
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 25.0), Some(2.0));
        // interpolation
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 75.0), Some(7.5));
        assert_eq!(percentile(&[], 50.0), None);
    }
}
