//! Kullback–Leibler divergence between task-duration samples.
//!
//! The paper (§II, Table I) uses the **symmetric** KL divergence
//! `D'(P||Q) = (D(P||Q) + D(Q||P)) / 2` to show that the per-phase duration
//! distributions of *different executions of the same application* are very
//! close (values ≲ a few units), while *different applications* are far
//! apart (values ≳ 7–13). We discretize both samples onto a common
//! histogram, add Laplace-style smoothing mass to empty bins so the
//! divergence stays finite, and report the symmetric value.

/// Histogram options for [`symmetric_kl`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KlOptions {
    /// Number of equal-width bins spanning the union of both supports.
    pub bins: usize,
    /// Smoothing probability mass assigned to each empty bin.
    pub epsilon: f64,
}

impl Default for KlOptions {
    fn default() -> Self {
        // 40 bins resolves the multi-modal duration mixes of the six paper
        // applications; epsilon = 1e-6 caps any single-bin contribution at
        // ~ln(1e6) ≈ 13.8, matching the magnitude of the paper's
        // cross-application values (max reported: 13.49).
        KlOptions { bins: 40, epsilon: 1e-6 }
    }
}

/// Asymmetric KL divergence `D(P||Q)` between two histograms (natural log).
fn kl_histograms(p: &[f64], q: &[f64]) -> f64 {
    p.iter().zip(q).filter(|(&pi, _)| pi > 0.0).map(|(&pi, &qi)| pi * (pi / qi).ln()).sum()
}

/// Builds a smoothed probability histogram of `samples` over `[lo, hi]`.
fn histogram(samples: &[f64], lo: f64, hi: f64, opts: KlOptions) -> Vec<f64> {
    let mut counts = vec![0.0f64; opts.bins];
    let width = (hi - lo).max(f64::MIN_POSITIVE);
    for &x in samples {
        let mut bin = (((x - lo) / width) * opts.bins as f64) as usize;
        if bin >= opts.bins {
            bin = opts.bins - 1;
        }
        counts[bin] += 1.0;
    }
    let total: f64 = samples.len() as f64;
    let mut probs: Vec<f64> = counts.iter().map(|&c| c / total).collect();
    // smooth: give every bin at least epsilon, renormalize
    let mut mass = 0.0;
    for p in probs.iter_mut() {
        if *p < opts.epsilon {
            *p = opts.epsilon;
        }
        mass += *p;
    }
    for p in probs.iter_mut() {
        *p /= mass;
    }
    probs
}

/// Symmetric KL divergence `D'(P||Q)` between two duration samples
/// (the Table I metric). Returns 0 for two empty samples and `f64::INFINITY`
/// when exactly one is empty.
pub fn symmetric_kl(sample_p: &[f64], sample_q: &[f64], opts: KlOptions) -> f64 {
    match (sample_p.is_empty(), sample_q.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let lo = sample_p.iter().chain(sample_q).copied().fold(f64::INFINITY, f64::min);
    let hi = sample_p.iter().chain(sample_q).copied().fold(f64::NEG_INFINITY, f64::max);
    if lo == hi {
        // all samples identical in both sets => zero divergence
        return 0.0;
    }
    let p = histogram(sample_p, lo, hi, opts);
    let q = histogram(sample_q, lo, hi, opts);
    0.5 * (kl_histograms(&p, &q) + kl_histograms(&q, &p))
}

/// Convenience wrapper over integer millisecond durations.
pub fn symmetric_kl_ms(sample_p: &[u64], sample_q: &[u64], opts: KlOptions) -> f64 {
    let p: Vec<f64> = sample_p.iter().map(|&v| v as f64).collect();
    let q: Vec<f64> = sample_q.iter().map(|&v| v as f64).collect();
    symmetric_kl(&p, &q, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Dist, Distribution};
    use crate::rng::SeededRng;

    #[test]
    fn identical_samples_zero() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        let d = symmetric_kl(&s, &s, KlOptions::default());
        assert!(d.abs() < 1e-9, "d={d}");
    }

    #[test]
    fn same_distribution_small() {
        let mut rng = SeededRng::new(1);
        let dist = Dist::LogNormal { mu: 3.0, sigma: 0.4 };
        let a = dist.sample_n(&mut rng, 2000);
        let b = dist.sample_n(&mut rng, 2000);
        let d = symmetric_kl(&a, &b, KlOptions::default());
        assert!(d < 0.5, "same-dist KL should be small, got {d}");
    }

    #[test]
    fn different_distributions_large() {
        let mut rng = SeededRng::new(2);
        let a = Dist::Normal { mu: 10.0, sigma: 1.0 }.sample_n(&mut rng, 2000);
        let b = Dist::Normal { mu: 100.0, sigma: 1.0 }.sample_n(&mut rng, 2000);
        let d = symmetric_kl(&a, &b, KlOptions::default());
        assert!(d > 5.0, "cross-dist KL should be large, got {d}");
    }

    #[test]
    fn symmetric() {
        let mut rng = SeededRng::new(3);
        let a = Dist::Exponential { mean: 5.0 }.sample_n(&mut rng, 1000);
        let b = Dist::Exponential { mean: 9.0 }.sample_n(&mut rng, 1000);
        let d1 = symmetric_kl(&a, &b, KlOptions::default());
        let d2 = symmetric_kl(&b, &a, KlOptions::default());
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(symmetric_kl(&[], &[], KlOptions::default()), 0.0);
        assert_eq!(symmetric_kl(&[1.0], &[], KlOptions::default()), f64::INFINITY);
    }

    #[test]
    fn degenerate_point_mass() {
        let a = [5.0, 5.0, 5.0];
        let b = [5.0, 5.0];
        assert_eq!(symmetric_kl(&a, &b, KlOptions::default()), 0.0);
    }

    #[test]
    fn ms_wrapper() {
        let d = symmetric_kl_ms(&[10, 20, 30], &[10, 20, 30], KlOptions::default());
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn divergence_bounded_by_epsilon_floor() {
        // even for totally disjoint samples, smoothing keeps KL finite
        let a = [1.0f64; 100];
        let b = [1000.0f64; 100];
        let d = symmetric_kl(&a, &b, KlOptions::default());
        assert!(d.is_finite());
        assert!(d > 5.0);
        assert!(d < 20.0, "smoothing should cap divergence, got {d}");
    }
}
