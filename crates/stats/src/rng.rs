//! Deterministic random-number generation.
//!
//! Every stochastic component of the workspace (synthetic trace generators,
//! the cluster testbed's noise models, the experiment harness) draws from a
//! [`SeededRng`] so that whole experiments are reproducible from a single
//! `u64` seed. Sub-streams are derived with [`SeededRng::fork`] so that
//! adding draws to one component never perturbs another.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 as its authors recommend — no external RNG
//! crate is required, and the stream for a given seed is stable across
//! platforms and releases of this workspace.

/// A seeded, forkable xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
    seed: u64,
}

impl SeededRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of state via SplitMix64;
        // this guarantees a nonzero state for every seed.
        let mut s = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(s);
        }
        SeededRng { state, seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-stream identified by `label`.
    ///
    /// Forking mixes the parent seed with the label via SplitMix64-style
    /// finalization, so `fork(a) != fork(b)` for `a != b` with overwhelming
    /// probability, and the parent's own stream is not advanced.
    pub fn fork(&self, label: u64) -> SeededRng {
        let mixed = splitmix64(self.seed ^ splitmix64(label.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        SeededRng::new(mixed)
    }

    /// The next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// The next raw 32-bit output (upper half of a 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform draw in `[0, 1)` (53-bit resolution).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`. `lo == hi` returns `lo`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            lo
        } else {
            lo + (hi - lo) * self.unit()
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else {
            let span = hi - lo;
            if span == u64::MAX {
                return self.next_u64();
            }
            lo + self.below(span + 1)
        }
    }

    /// Uniform index in `[0, n)`; panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() needs a non-empty range");
        self.below(n as u64) as usize
    }

    /// Debiased uniform draw in `[0, n)` via rejection sampling.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - u64::MAX.wrapping_rem(n);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return v % n;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks an index according to the given non-negative weights.
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs positive total weight");
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

/// SplitMix64 finalizer, used for seed expansion and mixing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = SeededRng::new(7);
        let mut f1 = root.fork(0);
        let mut f1_again = root.fork(0);
        let mut f2 = root.fork(1);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SeededRng::new(3);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_degenerate() {
        let mut r = SeededRng::new(3);
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
        assert_eq!(r.uniform_u64(9, 9), 9);
    }

    #[test]
    fn uniform_u64_inclusive_bounds() {
        let mut r = SeededRng::new(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            match r.uniform_u64(0, 3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                1 | 2 => {}
                _ => panic!("out of range"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SeededRng::new(5);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(r.weighted_index(&weights), 1);
        }
        // rough proportion check
        let weights = [1.0, 3.0];
        let picks_1 = (0..4000).filter(|_| r.weighted_index(&weights) == 1).count();
        let frac = picks_1 as f64 / 4000.0;
        assert!((0.68..0.82).contains(&frac), "frac={frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely to be identity
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SeededRng::new(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
