//! Deterministic random-number generation.
//!
//! Every stochastic component of the workspace (synthetic trace generators,
//! the cluster testbed's noise models, the experiment harness) draws from a
//! [`SeededRng`] so that whole experiments are reproducible from a single
//! `u64` seed. Sub-streams are derived with [`SeededRng::fork`] so that
//! adding draws to one component never perturbs another.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, forkable RNG wrapping [`rand::rngs::StdRng`].
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
    seed: u64,
}

impl SeededRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SeededRng { inner: StdRng::seed_from_u64(seed), seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-stream identified by `label`.
    ///
    /// Forking mixes the parent seed with the label via SplitMix64-style
    /// finalization, so `fork(a) != fork(b)` for `a != b` with overwhelming
    /// probability, and the parent's own stream is not advanced.
    pub fn fork(&self, label: u64) -> SeededRng {
        let mixed = splitmix64(self.seed ^ splitmix64(label.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        SeededRng::new(mixed)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`. `lo == hi` returns `lo`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            lo
        } else {
            lo + (hi - lo) * self.unit()
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else {
            self.inner.gen_range(lo..=hi)
        }
    }

    /// Uniform index in `[0, n)`; panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() needs a non-empty range");
        self.inner.gen_range(0..n)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks an index according to the given non-negative weights.
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs positive total weight");
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

impl RngCore for SeededRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64 finalizer, used for seed mixing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = SeededRng::new(7);
        let mut f1 = root.fork(0);
        let mut f1_again = root.fork(0);
        let mut f2 = root.fork(1);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SeededRng::new(3);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_degenerate() {
        let mut r = SeededRng::new(3);
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
        assert_eq!(r.uniform_u64(9, 9), 9);
    }

    #[test]
    fn uniform_u64_inclusive_bounds() {
        let mut r = SeededRng::new(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            match r.uniform_u64(0, 3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                1 | 2 => {}
                _ => panic!("out of range"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SeededRng::new(5);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(r.weighted_index(&weights), 1);
        }
        // rough proportion check
        let weights = [1.0, 3.0];
        let picks_1 = (0..4000).filter(|_| r.weighted_index(&weights) == 1).count();
        let frac = picks_1 as f64 / 4000.0;
        assert!((0.68..0.82).contains(&frac), "frac={frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely to be identity
    }
}
