//! Parametric probability distributions.
//!
//! Self-contained samplers built on [`SeededRng`]: inverse-transform for
//! exponential/Weibull/Pareto, Box–Muller for the normal family, and
//! Marsaglia–Tsang for gamma. The [`Dist`] enum is the closed, serializable
//! set of distributions the Synthetic TraceGen accepts; [`Distribution`] is
//! the open trait.

use crate::rng::SeededRng;
use serde::{DeError, Deserialize, Serialize, Value};

/// A sampleable, real-valued distribution.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut SeededRng) -> f64;
    /// Theoretical mean, when defined.
    fn mean(&self) -> Option<f64>;
    /// Cumulative distribution function, when available in closed form.
    fn cdf(&self, x: f64) -> Option<f64>;

    /// Draws `n` samples.
    fn sample_n(&self, rng: &mut SeededRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Closed set of parametric distributions used by the trace generators.
///
/// All parameters are in the sampled unit (the trace generators sample
/// milliseconds directly, matching §V-C where `LN(9.9511, 1.6764)` is fitted
/// to map durations in milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Point mass at `value`.
    Constant {
        /// The constant value.
        value: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean (= 1/rate).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Normal with mean `mu` and standard deviation `sigma`.
    Normal {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
    /// LogNormal: `ln X ~ N(mu, sigma^2)`.
    LogNormal {
        /// Mean of `ln X`.
        mu: f64,
        /// Standard deviation of `ln X`.
        sigma: f64,
    },
    /// Weibull with scale `lambda` and shape `k`.
    Weibull {
        /// Scale parameter.
        scale: f64,
        /// Shape parameter.
        shape: f64,
    },
    /// Gamma with shape `k` and scale `theta`.
    Gamma {
        /// Shape parameter.
        shape: f64,
        /// Scale parameter.
        scale: f64,
    },
    /// Pareto (type I) with scale `x_m` and tail index `alpha`.
    Pareto {
        /// Minimum value / scale.
        scale: f64,
        /// Tail index.
        alpha: f64,
    },
}

// Externally tagged struct-variant representation, matching serde's enum
// default: `{"LogNormal": {"mu": 9.9511, "sigma": 1.6764}}`.
macro_rules! dist_serde {
    ($($variant:ident { $($field:ident),+ }),+ $(,)?) => {
        impl Serialize for Dist {
            fn to_value(&self) -> Value {
                match *self {
                    $(Dist::$variant { $($field),+ } => Value::Object(vec![(
                        stringify!($variant).to_owned(),
                        Value::Object(vec![
                            $((stringify!($field).to_owned(), $field.to_value()),)+
                        ]),
                    )]),)+
                }
            }
        }

        impl Deserialize for Dist {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Object(pairs) = v else {
                    return Err(DeError::new("expected object for Dist"));
                };
                let [(tag, inner)] = pairs.as_slice() else {
                    return Err(DeError::new("expected single-key object for Dist"));
                };
                match tag.as_str() {
                    $(stringify!($variant) => Ok(Dist::$variant {
                        $($field: match inner.get(stringify!($field)) {
                            Some(fv) => f64::from_value(fv)?,
                            None => return Err(DeError::new(format!(
                                "Dist::{} missing field `{}`",
                                stringify!($variant), stringify!($field)
                            ))),
                        },)+
                    }),)+
                    other => Err(DeError::new(format!("unknown Dist variant `{other}`"))),
                }
            }
        }
    };
}

dist_serde!(
    Constant { value },
    Uniform { lo, hi },
    Exponential { mean },
    Normal { mu, sigma },
    LogNormal { mu, sigma },
    Weibull { scale, shape },
    Gamma { shape, scale },
    Pareto { scale, alpha },
);

impl Dist {
    /// The LogNormal fitted to Facebook **map** task durations in §V-C of
    /// the paper (milliseconds): `LN(9.9511, 1.6764)`.
    pub const FACEBOOK_MAP_MS: Dist = Dist::LogNormal { mu: 9.9511, sigma: 1.6764 };
    /// The LogNormal fitted to Facebook **reduce** task durations in §V-C of
    /// the paper (milliseconds): `LN(12.375, 1.6262)`.
    pub const FACEBOOK_REDUCE_MS: Dist = Dist::LogNormal { mu: 12.375, sigma: 1.6262 };
}

impl Distribution for Dist {
    fn sample(&self, rng: &mut SeededRng) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => rng.uniform(lo, hi),
            Dist::Exponential { mean } => sample_exponential(rng, mean),
            Dist::Normal { mu, sigma } => mu + sigma * sample_standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * sample_standard_normal(rng)).exp(),
            Dist::Weibull { scale, shape } => {
                // inverse transform: x = scale * (-ln U)^(1/shape)
                let u = positive_unit(rng);
                scale * (-u.ln()).powf(1.0 / shape)
            }
            Dist::Gamma { shape, scale } => sample_gamma(rng, shape) * scale,
            Dist::Pareto { scale, alpha } => {
                let u = positive_unit(rng);
                scale / u.powf(1.0 / alpha)
            }
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { mean } => mean,
            Dist::Normal { mu, .. } => mu,
            Dist::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
            Dist::Weibull { scale, shape } => scale * gamma_fn(1.0 + 1.0 / shape),
            Dist::Gamma { shape, scale } => shape * scale,
            Dist::Pareto { scale, alpha } => {
                if alpha <= 1.0 {
                    return None; // infinite mean
                }
                alpha * scale / (alpha - 1.0)
            }
        })
    }

    fn cdf(&self, x: f64) -> Option<f64> {
        Some(match *self {
            Dist::Constant { value } => {
                if x >= value {
                    1.0
                } else {
                    0.0
                }
            }
            Dist::Uniform { lo, hi } => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
            Dist::Exponential { mean } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-x / mean).exp()
                }
            }
            Dist::Normal { mu, sigma } => normal_cdf((x - mu) / sigma),
            Dist::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    normal_cdf((x.ln() - mu) / sigma)
                }
            }
            Dist::Weibull { scale, shape } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-(x / scale).powf(shape)).exp()
                }
            }
            Dist::Pareto { scale, alpha } => {
                if x <= scale {
                    0.0
                } else {
                    1.0 - (scale / x).powf(alpha)
                }
            }
            Dist::Gamma { .. } => return None, // no closed form implemented
        })
    }
}

/// Uniform draw in `(0, 1]`, avoiding `ln(0)`.
fn positive_unit(rng: &mut SeededRng) -> f64 {
    1.0 - rng.unit()
}

fn sample_exponential(rng: &mut SeededRng, mean: f64) -> f64 {
    -mean * positive_unit(rng).ln()
}

/// Box–Muller transform.
fn sample_standard_normal(rng: &mut SeededRng) -> f64 {
    let u1 = positive_unit(rng);
    let u2 = rng.unit();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Marsaglia–Tsang squeeze method for Gamma(shape, 1).
fn sample_gamma(rng: &mut SeededRng, shape: f64) -> f64 {
    if shape < 1.0 {
        // boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u = positive_unit(rng);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = positive_unit(rng);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max absolute error ≈ 1.5e-7, plenty for K-S fitting).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Lanczos approximation of the gamma function (used for Weibull means).
fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;

    fn sample_mean(d: Dist, n: usize, seed: u64) -> f64 {
        let mut rng = SeededRng::new(seed);
        let s = d.sample_n(&mut rng, n);
        Summary::of(&s).mean
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SeededRng::new(0);
        let d = Dist::Constant { value: 3.5 };
        assert_eq!(d.sample(&mut rng), 3.5);
        assert_eq!(d.mean(), Some(3.5));
        assert_eq!(d.cdf(3.4), Some(0.0));
        assert_eq!(d.cdf(3.5), Some(1.0));
    }

    #[test]
    fn exponential_mean_converges() {
        let m = sample_mean(Dist::Exponential { mean: 40.0 }, 40_000, 1);
        assert!((m - 40.0).abs() < 1.5, "mean={m}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = SeededRng::new(2);
        let d = Dist::Normal { mu: 10.0, sigma: 2.0 };
        let s = d.sample_n(&mut rng, 40_000);
        let sm = Summary::of(&s);
        assert!((sm.mean - 10.0).abs() < 0.1);
        assert!((sm.std - 2.0).abs() < 0.1);
    }

    #[test]
    fn lognormal_theoretical_mean() {
        let d = Dist::LogNormal { mu: 1.0, sigma: 0.5 };
        let expected = (1.0f64 + 0.125).exp();
        let m = sample_mean(d, 60_000, 3);
        assert!((m - expected).abs() / expected < 0.03, "m={m} vs {expected}");
        assert!((d.mean().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn weibull_positive_and_mean() {
        let d = Dist::Weibull { scale: 10.0, shape: 2.0 };
        let mut rng = SeededRng::new(4);
        let s = d.sample_n(&mut rng, 30_000);
        assert!(s.iter().all(|&x| x > 0.0));
        let expected = d.mean().unwrap(); // 10 * Γ(1.5) ≈ 8.8623
        assert!((expected - 8.8623).abs() < 1e-3);
        let m = Summary::of(&s).mean;
        assert!((m - expected).abs() / expected < 0.03);
    }

    #[test]
    fn gamma_mean_converges() {
        let d = Dist::Gamma { shape: 3.0, scale: 2.0 };
        let m = sample_mean(d, 50_000, 5);
        assert!((m - 6.0).abs() < 0.15, "m={m}");
        // shape < 1 branch
        let d = Dist::Gamma { shape: 0.5, scale: 1.0 };
        let m = sample_mean(d, 50_000, 6);
        assert!((m - 0.5).abs() < 0.05, "m={m}");
    }

    #[test]
    fn pareto_support_and_mean() {
        let d = Dist::Pareto { scale: 2.0, alpha: 3.0 };
        let mut rng = SeededRng::new(7);
        let s = d.sample_n(&mut rng, 30_000);
        assert!(s.iter().all(|&x| x >= 2.0));
        assert!((d.mean().unwrap() - 3.0).abs() < 1e-12);
        // heavy tail: no mean
        assert_eq!(Dist::Pareto { scale: 1.0, alpha: 0.9 }.mean(), None);
    }

    #[test]
    fn cdf_sanity() {
        let d = Dist::Exponential { mean: 1.0 };
        assert!((d.cdf(1.0).unwrap() - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(d.cdf(-1.0), Some(0.0));

        let n = Dist::Normal { mu: 0.0, sigma: 1.0 };
        assert!((n.cdf(0.0).unwrap() - 0.5).abs() < 1e-7);
        assert!((n.cdf(1.96).unwrap() - 0.975).abs() < 1e-3);

        let ln = Dist::LogNormal { mu: 0.0, sigma: 1.0 };
        assert!((ln.cdf(1.0).unwrap() - 0.5).abs() < 1e-7);
        assert_eq!(ln.cdf(0.0), Some(0.0));

        assert_eq!(Dist::Gamma { shape: 1.0, scale: 1.0 }.cdf(1.0), None);
    }

    #[test]
    fn facebook_constants_sample_plausibly() {
        // LN(9.9511, 1.6764) in ms: median = e^9.9511 ≈ 21 s
        let mut rng = SeededRng::new(8);
        let s = Dist::FACEBOOK_MAP_MS.sample_n(&mut rng, 20_001);
        let mut sorted = s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let expected_median = 9.9511f64.exp();
        assert!(
            (median / expected_median - 1.0).abs() < 0.1,
            "median={median} expected≈{expected_median}"
        );
    }

    #[test]
    fn gamma_fn_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }
}
