//! # simmr-mumak
//!
//! A reimplementation of Apache's **Mumak** MapReduce simulator
//! (MAPREDUCE-728), the baseline SimMR is compared against in §IV of the
//! paper. Mumak replays Rumen traces and differs from SimMR in two ways
//! that the paper measures:
//!
//! 1. **It simulates TaskTrackers and the heartbeats between them** —
//!    every simulated worker heartbeats the JobTracker on a fixed interval
//!    and task assignment happens only then. This inflates the event count
//!    enormously, which is why Mumak is two-plus orders of magnitude slower
//!    than SimMR on the same trace (§IV-E, Figure 6).
//! 2. **It does not model the shuffle phase.** A reduce task's runtime is
//!    modeled as *"the summation of the time taken for completion of all
//!    maps and the time taken for an individual task to complete the
//!    reduce phase (without the shuffle)"* (§IV-A) — so Mumak
//!    systematically underestimates completion times of shuffle-heavy
//!    jobs, producing the 37%-average error of Figure 5(a).
//!
//! Scheduling is FIFO (the scheduler available in both simulators in the
//! paper's comparison).

use simmr_trace::RumenTrace;
use simmr_types::{JobId, JobResult, SimTime, SimulationReport, TaskKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Mumak configuration: the simulated cluster the trace is replayed on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MumakConfig {
    /// Simulated TaskTracker count.
    pub num_trackers: usize,
    /// Map slots per tracker.
    pub map_slots_per_tracker: usize,
    /// Reduce slots per tracker.
    pub reduce_slots_per_tracker: usize,
    /// Heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
    /// Fraction of a job's maps that must finish before reduces launch.
    pub slowstart: f64,
}

impl Default for MumakConfig {
    fn default() -> Self {
        MumakConfig {
            num_trackers: 64,
            map_slots_per_tracker: 1,
            reduce_slots_per_tracker: 1,
            heartbeat_ms: 600,
            slowstart: 0.05,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    JobArrival { job: u32 },
    Heartbeat { tracker: u32 },
    MapDone { job: u32, tracker: u32 },
    AllMapsFinished { job: u32 },
    ReduceDone { job: u32, tracker: u32 },
}

struct JobRt {
    name: String,
    arrival: SimTime,
    active: bool,
    finished: bool,
    map_durations: Vec<u64>,
    reduce_phases: Vec<u64>,
    maps_launched: usize,
    maps_done: usize,
    reduces_launched: usize,
    reduces_done: usize,
    maps_finish: Option<SimTime>,
    threshold: usize,
    /// Reduce tasks waiting for `AllMapsFinished`: `(tracker)`.
    waiting_reduces: Vec<u32>,
    finish: SimTime,
}

impl JobRt {
    fn complete(&self) -> bool {
        self.maps_done == self.map_durations.len() && self.reduces_done == self.reduce_phases.len()
    }
}

/// The Mumak simulator: replays a [`RumenTrace`] under FIFO.
pub struct MumakSim {
    config: MumakConfig,
}

impl MumakSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics on a configuration without trackers or slots.
    pub fn new(config: MumakConfig) -> Self {
        assert!(config.num_trackers > 0, "Mumak needs trackers");
        assert!(
            config.map_slots_per_tracker + config.reduce_slots_per_tracker > 0,
            "trackers need slots"
        );
        MumakSim { config }
    }

    /// Replays the trace to completion.
    pub fn run(&self, trace: &RumenTrace) -> SimulationReport {
        let cfg = self.config;
        let mut queue: BinaryHeap<Reverse<(SimTime, u64, Ev)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |q: &mut BinaryHeap<Reverse<(SimTime, u64, Ev)>>, t: SimTime, e: Ev| {
            q.push(Reverse((t, seq, e)));
            seq += 1;
        };

        let mut jobs: Vec<JobRt> = trace
            .jobs
            .iter()
            .map(|j| {
                let map_durations: Vec<u64> = j.maps().iter().map(|t| t.runtime_ms()).collect();
                // Mumak ignores the shuffle boundary: only the reduce
                // phase survives into the model
                let reduce_phases: Vec<u64> =
                    j.reduces().iter().map(|t| t.reduce_phase_ms()).collect();
                let n = map_durations.len();
                let threshold = if cfg.slowstart <= 0.0 || n == 0 {
                    0
                } else {
                    ((cfg.slowstart * n as f64).ceil() as usize).clamp(1, n)
                };
                JobRt {
                    name: j.name.clone(),
                    arrival: j.submit,
                    active: false,
                    finished: false,
                    map_durations,
                    reduce_phases,
                    maps_launched: 0,
                    maps_done: 0,
                    reduces_launched: 0,
                    reduces_done: 0,
                    maps_finish: None,
                    threshold,
                    waiting_reduces: Vec::new(),
                    finish: SimTime::ZERO,
                }
            })
            .collect();

        for (i, j) in jobs.iter().enumerate() {
            push(&mut queue, j.arrival, Ev::JobArrival { job: i as u32 });
        }
        // staggered heartbeats
        for tracker in 0..cfg.num_trackers {
            let offset = (tracker as u64 * cfg.heartbeat_ms.max(1)) / cfg.num_trackers as u64;
            push(
                &mut queue,
                SimTime::from_millis(offset),
                Ev::Heartbeat { tracker: tracker as u32 },
            );
        }

        let mut free_map = vec![cfg.map_slots_per_tracker; cfg.num_trackers];
        let mut free_reduce = vec![cfg.reduce_slots_per_tracker; cfg.num_trackers];
        let mut remaining = jobs.len();
        let mut events = 0u64;
        let mut makespan = SimTime::ZERO;

        let fifo_pick = |jobs: &[JobRt], want_map: bool| -> Option<u32> {
            jobs.iter()
                .enumerate()
                .filter(|(_, j)| {
                    j.active
                        && !j.finished
                        && if want_map {
                            j.maps_launched < j.map_durations.len()
                        } else {
                            j.reduces_launched < j.reduce_phases.len() && j.maps_done >= j.threshold
                        }
                })
                .min_by_key(|(i, j)| (j.arrival, *i))
                .map(|(i, _)| i as u32)
        };

        while let Some(Reverse((now, _, ev))) = queue.pop() {
            events += 1;
            makespan = now;
            match ev {
                Ev::JobArrival { job } => {
                    jobs[job as usize].active = true;
                    if jobs[job as usize].map_durations.is_empty() {
                        // degenerate map-less job completes immediately
                        let j = &mut jobs[job as usize];
                        j.maps_finish = Some(now);
                        if j.reduce_phases.is_empty() {
                            j.finished = true;
                            j.finish = now;
                            remaining -= 1;
                        }
                    }
                }
                Ev::Heartbeat { tracker } => {
                    let t = tracker as usize;
                    while free_map[t] > 0 {
                        let Some(job) = fifo_pick(&jobs, true) else { break };
                        let j = &mut jobs[job as usize];
                        let dur = j.map_durations[j.maps_launched];
                        j.maps_launched += 1;
                        free_map[t] -= 1;
                        push(&mut queue, now + dur, Ev::MapDone { job, tracker });
                    }
                    while free_reduce[t] > 0 {
                        let Some(job) = fifo_pick(&jobs, false) else { break };
                        let j = &mut jobs[job as usize];
                        let idx = j.reduces_launched;
                        j.reduces_launched += 1;
                        free_reduce[t] -= 1;
                        match j.maps_finish {
                            Some(_) => {
                                // maps already done: reduce phase only
                                let dur = j.reduce_phases[idx];
                                push(&mut queue, now + dur, Ev::ReduceDone { job, tracker });
                            }
                            None => {
                                // Mumak models the reduce as (all maps) +
                                // (reduce phase): park it until the
                                // AllMapsFinished event
                                j.waiting_reduces.push(tracker);
                            }
                        }
                    }
                    if remaining > 0 {
                        push(&mut queue, now + cfg.heartbeat_ms.max(1), Ev::Heartbeat { tracker });
                    }
                }
                Ev::MapDone { job, tracker } => {
                    free_map[tracker as usize] += 1;
                    let j = &mut jobs[job as usize];
                    j.maps_done += 1;
                    if j.maps_done == j.map_durations.len() {
                        push(&mut queue, now, Ev::AllMapsFinished { job });
                    }
                }
                Ev::AllMapsFinished { job } => {
                    let waiting = {
                        let j = &mut jobs[job as usize];
                        j.maps_finish = Some(now);
                        std::mem::take(&mut j.waiting_reduces)
                    };
                    // release parked reduces: they complete a reduce-phase
                    // duration after the map stage, with NO shuffle term
                    let base = jobs[job as usize].reduces_done;
                    for (k, tracker) in waiting.into_iter().enumerate() {
                        let dur = jobs[job as usize].reduce_phases[base + k];
                        push(&mut queue, now + dur, Ev::ReduceDone { job, tracker });
                    }
                    if jobs[job as usize].reduce_phases.is_empty() {
                        let j = &mut jobs[job as usize];
                        if !j.finished {
                            j.finished = true;
                            j.finish = now;
                            remaining -= 1;
                        }
                    }
                }
                Ev::ReduceDone { job, tracker } => {
                    free_reduce[tracker as usize] += 1;
                    let j = &mut jobs[job as usize];
                    j.reduces_done += 1;
                    if j.complete() && !j.finished {
                        j.finished = true;
                        j.finish = now;
                        j.active = false;
                        remaining -= 1;
                    }
                }
            }
            if remaining == 0 {
                break;
            }
        }

        SimulationReport {
            jobs: jobs
                .iter()
                .enumerate()
                .map(|(i, j)| JobResult {
                    job: JobId(i as u32),
                    name: j.name.as_str().into(),
                    arrival: j.arrival,
                    first_map_start: None,
                    maps_finished: j.maps_finish,
                    completion: j.finish,
                    deadline: None,
                    num_maps: j.map_durations.len(),
                    num_reduces: j.reduce_phases.len(),
                })
                .collect(),
            makespan,
            events_processed: events,
            timeline: Vec::new(),
        }
    }
}

/// Convenience: count tasks of a kind in a Rumen trace (diagnostics).
pub fn count_tasks(trace: &RumenTrace, kind: TaskKind) -> usize {
    trace.jobs.iter().flat_map(|j| j.tasks.iter()).filter(|t| t.kind == kind).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_trace::{RumenJob, RumenTask};

    fn rumen_job(
        id: u32,
        submit_ms: u64,
        maps: &[(u64, u64)],
        reduces: &[(u64, u64, u64, u64)],
    ) -> RumenJob {
        let mut tasks = Vec::new();
        for (i, &(s, e)) in maps.iter().enumerate() {
            tasks.push(RumenTask {
                kind: TaskKind::Map,
                idx: i as u32,
                start: SimTime::from_millis(s),
                shuffle_end: None,
                sort_end: None,
                end: SimTime::from_millis(e),
                node: 0,
            });
        }
        for (i, &(s, sh, so, e)) in reduces.iter().enumerate() {
            tasks.push(RumenTask {
                kind: TaskKind::Reduce,
                idx: i as u32,
                start: SimTime::from_millis(s),
                shuffle_end: Some(SimTime::from_millis(sh)),
                sort_end: Some(SimTime::from_millis(so)),
                end: SimTime::from_millis(e),
                node: 0,
            });
        }
        RumenJob {
            id,
            name: format!("job{id}"),
            submit: SimTime::from_millis(submit_ms),
            finish: SimTime::from_millis(
                maps.iter()
                    .map(|&(_, e)| e)
                    .chain(reduces.iter().map(|&(_, _, _, e)| e))
                    .max()
                    .unwrap_or(submit_ms),
            ),
            tasks,
        }
    }

    fn config(trackers: usize) -> MumakConfig {
        MumakConfig { num_trackers: trackers, heartbeat_ms: 100, ..MumakConfig::default() }
    }

    #[test]
    fn map_only_replay() {
        // 2 maps of 1000ms each, 2 trackers: both run in the first
        // heartbeat round => completion ≈ 1000 + heartbeat offset
        let trace = RumenTrace { jobs: vec![rumen_job(0, 0, &[(0, 1000), (0, 1000)], &[])] };
        let report = MumakSim::new(config(2)).run(&trace);
        let done = report.jobs[0].completion.as_millis();
        assert!((1000..1300).contains(&done), "completion {done}");
    }

    #[test]
    fn shuffle_time_is_dropped() {
        // real execution: map ends at 1000; reduce start 500, shuffle+sort
        // until 5000, reduce phase 5000->6000 (total job 6000ms).
        // Mumak: reduce completes at all_maps(~1000) + reduce_phase(1000)
        // ≈ 2000 — a gross underestimate, which is the point.
        let trace =
            RumenTrace { jobs: vec![rumen_job(0, 0, &[(0, 1000)], &[(500, 4800, 5000, 6000)])] };
        let report = MumakSim::new(config(2)).run(&trace);
        let done = report.jobs[0].completion.as_millis();
        assert!(done < 2600, "Mumak must underestimate: {done}");
        assert!(done >= 2000, "reduce phase still counted: {done}");
    }

    #[test]
    fn fifo_ordering_between_jobs() {
        let trace = RumenTrace {
            jobs: vec![
                rumen_job(0, 0, &[(0, 1000), (0, 1000)], &[]),
                rumen_job(1, 10, &[(0, 1000), (0, 1000)], &[]),
            ],
        };
        // 1 tracker, 1 map slot: job0's maps run before job1's
        let report = MumakSim::new(config(1)).run(&trace);
        assert!(report.jobs[0].completion < report.jobs[1].completion);
    }

    #[test]
    fn heartbeat_granularity_dominates_event_count() {
        let trace = RumenTrace { jobs: vec![rumen_job(0, 0, &[(0, 60_000)], &[])] };
        let report = MumakSim::new(MumakConfig::default()).run(&trace);
        // 64 trackers * (60s / 0.6s) = ~6400 heartbeats for a 1-task job
        assert!(
            report.events_processed > 3_000,
            "expected heartbeat flood, got {}",
            report.events_processed
        );
    }

    #[test]
    fn empty_trace() {
        let report = MumakSim::new(config(2)).run(&RumenTrace::default());
        assert!(report.jobs.is_empty());
    }

    #[test]
    fn slowstart_gates_reduce_launch() {
        // 10 maps, threshold 5%=1: reduce may launch after the first map
        let maps: Vec<(u64, u64)> = (0..10).map(|i| (0, 1000 + i * 10)).collect();
        let trace = RumenTrace { jobs: vec![rumen_job(0, 0, &maps, &[(0, 0, 0, 500)])] };
        let report = MumakSim::new(config(4)).run(&trace);
        // reduce phase = 500; all maps done ≈ 3 waves on 4 trackers
        let j = &report.jobs[0];
        assert!(j.completion >= j.maps_finished.unwrap());
    }

    #[test]
    fn count_tasks_helper() {
        let trace = RumenTrace { jobs: vec![rumen_job(0, 0, &[(0, 1), (0, 2)], &[(0, 1, 1, 2)])] };
        assert_eq!(count_tasks(&trace, TaskKind::Map), 2);
        assert_eq!(count_tasks(&trace, TaskKind::Reduce), 1);
    }
}
