//! Trace scaling (the paper's future work, §VII).
//!
//! *"We plan to design a trace-scaling technique where from the trace of a
//! job execution on a small dataset, we could generate a trace that
//! represents job processing of a larger dataset."*
//!
//! Scaling a template by a data factor `f`:
//!
//! * **maps** — the map-task count scales linearly with input size (one
//!   task per block), so the scaled template has `ceil(N_M · f)` maps whose
//!   durations are resampled (cyclically) from the observed distribution —
//!   per-block work is size-invariant;
//! * **shuffles** — each reduce task fetches `f×` the intermediate data, so
//!   shuffle durations scale by `f` (reduce count is an application
//!   configuration constant, not a function of input size);
//! * **reduce phase** — the per-reduce input also grows by `f`, so the
//!   reduce-phase durations scale by `f` as well.

use simmr_types::{DurationMs, JobTemplate};

/// Scales a job template to a dataset `factor` times as large
/// (`factor > 0`; `factor < 1` shrinks).
///
/// # Panics
///
/// Panics if `factor` is not finite and positive.
pub fn scale_template(template: &JobTemplate, factor: f64) -> JobTemplate {
    assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive, got {factor}");
    let scaled_maps = ((template.num_maps as f64 * factor).ceil() as usize).max(1);
    let map_durations: Vec<DurationMs> =
        (0..scaled_maps).map(|i| template.map_duration(i)).collect();
    let scale = |d: &DurationMs| ((*d as f64) * factor).round() as DurationMs;
    JobTemplate::new(
        format!("{}-x{:.2}", template.name, factor),
        map_durations,
        template.first_shuffle_durations.iter().map(scale).collect(),
        template.typical_shuffle_durations.iter().map(scale).collect(),
        template.reduce_durations.iter().map(scale).collect(),
    )
    .expect("scaling preserves structural validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn template() -> JobTemplate {
        JobTemplate::new("small", vec![100, 200, 300, 400], vec![50], vec![80, 120], vec![40, 60])
            .unwrap()
    }

    #[test]
    fn doubling_doubles_maps_and_shuffles() {
        let t = scale_template(&template(), 2.0);
        assert_eq!(t.num_maps, 8);
        assert_eq!(t.num_reduces, 2); // reduce count unchanged
                                      // map durations resampled cyclically
        assert_eq!(&t.map_durations[..4], &[100, 200, 300, 400]);
        assert_eq!(&t.map_durations[4..], &[100, 200, 300, 400]);
        assert_eq!(t.typical_shuffle_durations, vec![160, 240]);
        assert_eq!(t.first_shuffle_durations, vec![100]);
        assert_eq!(t.reduce_durations, vec![80, 120]);
        assert!(t.name.contains("x2.00"));
    }

    #[test]
    fn shrinking() {
        let t = scale_template(&template(), 0.5);
        assert_eq!(t.num_maps, 2);
        assert_eq!(t.typical_shuffle_durations, vec![40, 60]);
    }

    #[test]
    fn shrink_never_below_one_map() {
        let t = scale_template(&template(), 0.01);
        assert_eq!(t.num_maps, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_factor() {
        scale_template(&template(), 0.0);
    }

    proptest! {
        /// Total map work scales ~linearly with the factor.
        #[test]
        fn map_work_scales_linearly(factor in 0.25f64..8.0) {
            let base = template();
            let scaled = scale_template(&base, factor);
            let base_work: u64 = base.map_durations.iter().sum();
            let scaled_work: u64 = scaled.map_durations.iter().sum();
            let expected = base_work as f64 * factor;
            // cyclic resampling quantizes to whole tasks: allow one
            // wave of slack
            let slack = *base.map_durations.iter().max().unwrap() as f64;
            prop_assert!((scaled_work as f64 - expected).abs() <= slack + 1.0,
                "scaled {scaled_work} vs expected {expected}");
        }

        /// Scaling is structurally valid for any positive factor.
        #[test]
        fn always_valid(factor in 0.01f64..20.0) {
            let t = scale_template(&template(), factor);
            prop_assert!(t.validate().is_ok());
        }
    }
}
