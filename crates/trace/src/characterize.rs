//! Workload characterization.
//!
//! Summarizes a replayable trace the way §V-C characterizes the Facebook
//! workload: job-size mix, per-phase duration statistics and best-fit
//! distributions, and arrival-process statistics. Drives the `simmr stats`
//! CLI subcommand and gives what-if studies a quick sanity check that a
//! synthetic workload matches its intended statistical profile.

use simmr_stats::{fit_best, summary::percentile, FitReport, Summary};
use simmr_types::{DurationMs, WorkloadTrace};

/// Histogram bucket of the job-size mix.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeBucket {
    /// Inclusive lower bound on map-task count.
    pub min_maps: usize,
    /// Inclusive upper bound on map-task count.
    pub max_maps: usize,
    /// Number of jobs in the bucket.
    pub jobs: usize,
}

/// Full statistical characterization of a workload trace.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Number of jobs.
    pub jobs: usize,
    /// Total task count.
    pub tasks: usize,
    /// Serial work in milliseconds.
    pub serial_work_ms: u128,
    /// Job-size mix over map counts (powers-of-ten-ish buckets).
    pub size_mix: Vec<SizeBucket>,
    /// Map-task duration summary (ms).
    pub map_durations: Summary,
    /// Typical-shuffle duration summary (ms).
    pub shuffle_durations: Summary,
    /// Reduce-phase duration summary (ms).
    pub reduce_durations: Summary,
    /// Median map duration (ms).
    pub map_p50: f64,
    /// 95th percentile map duration (ms).
    pub map_p95: f64,
    /// Best-fit distribution of map durations (§V-C methodology), when one
    /// can be fitted.
    pub map_fit: Option<FitReport>,
    /// Mean job inter-arrival time (ms); `None` with fewer than two jobs.
    pub mean_interarrival_ms: Option<f64>,
}

const BUCKET_EDGES: [usize; 7] = [1, 2, 10, 50, 200, 1000, 5000];

/// Characterizes a trace.
pub fn characterize(trace: &WorkloadTrace) -> WorkloadProfile {
    let mut map_durs: Vec<f64> = Vec::new();
    let mut shuffle_durs: Vec<f64> = Vec::new();
    let mut reduce_durs: Vec<f64> = Vec::new();
    for job in &trace.jobs {
        map_durs.extend(job.template.map_durations.iter().map(|&d| d as f64));
        shuffle_durs.extend(job.template.typical_shuffle_durations.iter().map(|&d| d as f64));
        reduce_durs.extend(job.template.reduce_durations.iter().map(|&d| d as f64));
    }

    let mut size_mix: Vec<SizeBucket> = BUCKET_EDGES
        .windows(2)
        .map(|w| SizeBucket { min_maps: w[0], max_maps: w[1] - 1, jobs: 0 })
        .collect();
    size_mix.push(SizeBucket {
        min_maps: *BUCKET_EDGES.last().expect("edges non-empty"),
        max_maps: usize::MAX,
        jobs: 0,
    });
    for job in &trace.jobs {
        let n = job.template.num_maps;
        let bucket = size_mix
            .iter_mut()
            .find(|b| n >= b.min_maps && n <= b.max_maps)
            .expect("buckets cover 1..=MAX");
        bucket.jobs += 1;
    }

    let mean_interarrival_ms = if trace.jobs.len() >= 2 {
        let mut arrivals: Vec<DurationMs> =
            trace.jobs.iter().map(|j| j.arrival.as_millis()).collect();
        arrivals.sort_unstable();
        let span = arrivals.last().expect("non-empty") - arrivals[0];
        Some(span as f64 / (arrivals.len() - 1) as f64)
    } else {
        None
    };

    WorkloadProfile {
        jobs: trace.len(),
        tasks: trace.total_tasks(),
        serial_work_ms: trace.total_serial_work_ms(),
        size_mix,
        map_durations: Summary::of(&map_durs),
        shuffle_durations: Summary::of(&shuffle_durs),
        reduce_durations: Summary::of(&reduce_durs),
        map_p50: percentile(&map_durs, 50.0).unwrap_or(0.0),
        map_p95: percentile(&map_durs, 95.0).unwrap_or(0.0),
        // a fit over a handful of samples is statistically meaningless
        map_fit: if map_durs.len() >= 10 { fit_best(&map_durs).into_iter().next() } else { None },
        mean_interarrival_ms,
    }
}

impl WorkloadProfile {
    /// Renders a human-readable report (the `simmr stats` output).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "jobs:            {}", self.jobs);
        let _ = writeln!(out, "tasks:           {}", self.tasks);
        let _ = writeln!(out, "serial work:     {:.1} hours", self.serial_work_ms as f64 / 3.6e6);
        if let Some(ia) = self.mean_interarrival_ms {
            let _ = writeln!(out, "mean interarrival: {:.1} s", ia / 1000.0);
        }
        let _ = writeln!(out, "\njob-size mix (by map count):");
        for b in &self.size_mix {
            if b.jobs == 0 {
                continue;
            }
            let label = if b.max_maps == usize::MAX {
                format!(">= {}", b.min_maps)
            } else {
                format!("{}..{}", b.min_maps, b.max_maps)
            };
            let pct = b.jobs as f64 / self.jobs.max(1) as f64 * 100.0;
            let _ = writeln!(out, "  {label:>10} maps: {:>5} jobs ({pct:>5.1}%)", b.jobs);
        }
        let phase = |name: &str, s: &Summary| {
            format!(
                "  {name:<8} n={:<7} mean={:>9.1}ms  std={:>9.1}ms  max={:>9.1}ms",
                s.count, s.mean, s.std, s.max
            )
        };
        let _ = writeln!(out, "\ntask durations:");
        let _ = writeln!(out, "{}", phase("map", &self.map_durations));
        let _ = writeln!(out, "{}", phase("shuffle", &self.shuffle_durations));
        let _ = writeln!(out, "{}", phase("reduce", &self.reduce_durations));
        let _ = writeln!(out, "  map p50 = {:.1}ms, p95 = {:.1}ms", self.map_p50, self.map_p95);
        if let Some(fit) = &self.map_fit {
            let _ = writeln!(out, "  best map-duration fit: {:?} (K-S = {:.4})", fit.dist, fit.ks);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::FacebookWorkload;
    use simmr_types::{JobSpec, JobTemplate, SimTime};

    #[test]
    fn characterizes_facebook_workload() {
        let trace = FacebookWorkload { mean_interarrival_ms: 10_000.0 }.generate(300, 1);
        let p = characterize(&trace);
        assert_eq!(p.jobs, 300);
        assert!(p.tasks > 300);
        // the size mix must be dominated by tiny jobs (the Table 3 shape)
        let tiny: usize = p.size_mix.iter().filter(|b| b.max_maps <= 9).map(|b| b.jobs).sum();
        assert!(tiny as f64 > 0.5 * p.jobs as f64, "tiny={tiny}");
        // best fit should be the generating LogNormal
        match p.map_fit.expect("fit exists").dist {
            simmr_stats::Dist::LogNormal { mu, .. } => assert!((mu - 9.9511).abs() < 0.2),
            other => panic!("unexpected fit {other:?}"),
        }
        // mean inter-arrival close to the generator's parameter
        let ia = p.mean_interarrival_ms.unwrap();
        assert!((ia / 10_000.0 - 1.0).abs() < 0.3, "ia={ia}");
        // all jobs land in exactly one bucket
        let total: usize = p.size_mix.iter().map(|b| b.jobs).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn render_contains_key_lines() {
        let trace = FacebookWorkload { mean_interarrival_ms: 5_000.0 }.generate(50, 2);
        let text = characterize(&trace).render();
        assert!(text.contains("jobs:            50"));
        assert!(text.contains("job-size mix"));
        assert!(text.contains("best map-duration fit"));
    }

    #[test]
    fn single_job_edge_cases() {
        let mut trace = simmr_types::WorkloadTrace::new("one", "test");
        trace.push(JobSpec::new(
            JobTemplate::new("j", vec![100], vec![], vec![], vec![]).unwrap(),
            SimTime::ZERO,
        ));
        let p = characterize(&trace);
        assert_eq!(p.jobs, 1);
        assert_eq!(p.mean_interarrival_ms, None);
        assert_eq!(p.shuffle_durations.count, 0);
        // too few samples for a meaningful fit
        assert!(p.map_fit.is_none());
        let _ = p.render();
    }

    #[test]
    fn empty_trace() {
        let p = characterize(&simmr_types::WorkloadTrace::default());
        assert_eq!(p.jobs, 0);
        assert_eq!(p.tasks, 0);
        let _ = p.render();
    }
}
