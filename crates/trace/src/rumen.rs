//! A Rumen-flavoured trace extractor.
//!
//! Rumen (§IV-A) processes Hadoop job-history logs into detailed per-task
//! trace files that Mumak replays. Where our MRProfiler *"is selective and
//! stores only the task durations"*, Rumen keeps considerably more per-task
//! detail. This module mirrors that split: [`RumenTask`] carries the full
//! phase boundaries and placement of every attempt, and the Mumak baseline
//! (`simmr-mumak`) replays [`RumenTrace`]s — crucially *without* using the
//! shuffle boundary, just like the real Mumak.

use serde::impl_serde_struct;
use simmr_types::{parse_history, HistoryLine, HistoryParseError, SimTime, TaskKind};

/// One task attempt in a Rumen trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumenTask {
    /// Map or reduce.
    pub kind: TaskKind,
    /// Task index within its stage.
    pub idx: u32,
    /// Attempt start.
    pub start: SimTime,
    /// Shuffle phase end (reduces only).
    pub shuffle_end: Option<SimTime>,
    /// Sort phase end (reduces only).
    pub sort_end: Option<SimTime>,
    /// Attempt end.
    pub end: SimTime,
    /// Executing node.
    pub node: u32,
}

impl_serde_struct!(RumenTask { kind, idx, start, shuffle_end, sort_end, end, node });

impl RumenTask {
    /// Total attempt runtime.
    pub fn runtime_ms(&self) -> u64 {
        self.end.since(self.start)
    }

    /// Runtime of the reduce phase alone (`end − sort_end`), which is the
    /// only part of a reduce task Mumak models.
    pub fn reduce_phase_ms(&self) -> u64 {
        match self.sort_end.or(self.shuffle_end) {
            Some(se) => self.end.since(se),
            None => self.runtime_ms(),
        }
    }
}

/// One job in a Rumen trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RumenJob {
    /// Job sequence number.
    pub id: u32,
    /// Job name.
    pub name: String,
    /// Submission time.
    pub submit: SimTime,
    /// Recorded completion time (ground truth for accuracy comparisons).
    pub finish: SimTime,
    /// Every task attempt of the job.
    pub tasks: Vec<RumenTask>,
}

impl_serde_struct!(RumenJob { id, name, submit, finish, tasks });

impl RumenJob {
    /// Map attempts in start order.
    pub fn maps(&self) -> Vec<&RumenTask> {
        let mut v: Vec<&RumenTask> =
            self.tasks.iter().filter(|t| t.kind == TaskKind::Map).collect();
        v.sort_by_key(|t| (t.start, t.idx));
        v
    }

    /// Reduce attempts in start order.
    pub fn reduces(&self) -> Vec<&RumenTask> {
        let mut v: Vec<&RumenTask> =
            self.tasks.iter().filter(|t| t.kind == TaskKind::Reduce).collect();
        v.sort_by_key(|t| (t.start, t.idx));
        v
    }
}

/// A full Rumen trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RumenTrace {
    /// Jobs sorted by id.
    pub jobs: Vec<RumenJob>,
}

impl_serde_struct!(RumenTrace { jobs });

impl RumenTrace {
    /// Extracts a Rumen trace from a history log.
    pub fn from_history(log_text: &str) -> Result<Self, HistoryParseError> {
        let lines = parse_history(log_text)?;
        let mut jobs: Vec<RumenJob> = Vec::new();
        for line in &lines {
            if let HistoryLine::Job(j) = line {
                jobs.push(RumenJob {
                    id: j.id,
                    name: j.name.clone(),
                    submit: j.submit,
                    finish: j.finish,
                    tasks: Vec::new(),
                });
            }
        }
        jobs.sort_by_key(|j| j.id);
        for line in &lines {
            if let HistoryLine::Task(t) = line {
                if let Ok(pos) = jobs.binary_search_by_key(&t.job, |j| j.id) {
                    jobs[pos].tasks.push(RumenTask {
                        kind: t.kind,
                        idx: t.idx,
                        start: t.start,
                        shuffle_end: t.shuffle_end,
                        sort_end: t.sort_end,
                        end: t.end,
                        node: t.node,
                    });
                }
            }
        }
        Ok(RumenTrace { jobs })
    }

    /// Total task count across all jobs.
    pub fn total_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.tasks.len()).sum()
    }

    /// Synthesizes a Rumen trace from a replayable workload trace.
    ///
    /// Mumak only consumes per-task durations and submit times, so the
    /// synthesized phase boundaries are laid out back-to-back from the
    /// job's arrival: a reduce task spans `[arrival, arrival + shuffle +
    /// reduce]` with `sort_end` at the shuffle/reduce boundary. This is how
    /// the Figure 6 harness feeds *generated* workloads (no history log
    /// exists for them) to the Mumak baseline.
    pub fn from_workload(trace: &simmr_types::WorkloadTrace) -> Self {
        let jobs = trace
            .jobs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let t = &spec.template;
                let mut tasks = Vec::with_capacity(t.num_maps + t.num_reduces);
                for m in 0..t.num_maps {
                    let d = t.map_duration(m);
                    tasks.push(RumenTask {
                        kind: TaskKind::Map,
                        idx: m as u32,
                        start: spec.arrival,
                        shuffle_end: None,
                        sort_end: None,
                        end: spec.arrival + d,
                        node: 0,
                    });
                }
                for r in 0..t.num_reduces {
                    let sh = t.typical_shuffle_duration(r);
                    let red = t.reduce_duration(r);
                    let boundary = spec.arrival + sh;
                    tasks.push(RumenTask {
                        kind: TaskKind::Reduce,
                        idx: r as u32,
                        start: spec.arrival,
                        shuffle_end: Some(boundary),
                        sort_end: Some(boundary),
                        end: boundary + red,
                        node: 0,
                    });
                }
                RumenJob {
                    id: i as u32,
                    name: t.name.to_string(),
                    submit: spec.arrival,
                    finish: tasks.iter().map(|t| t.end).max().unwrap_or(spec.arrival),
                    tasks,
                }
            })
            .collect();
        RumenTrace { jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "\
JOB id=0 name=j submit=0 launch=10 finish=400 maps=2 reduces=1
TASK job=0 kind=map idx=1 start=20 end=200 node=1
TASK job=0 kind=map idx=0 start=10 end=100 node=0
TASK job=0 kind=reduce idx=0 start=120 shuffle_end=230 sort_end=240 end=300 node=2
";

    #[test]
    fn extraction_and_ordering() {
        let trace = RumenTrace::from_history(LOG).unwrap();
        assert_eq!(trace.jobs.len(), 1);
        assert_eq!(trace.total_tasks(), 3);
        let maps = trace.jobs[0].maps();
        assert_eq!(maps[0].idx, 0); // ordered by start
        assert_eq!(maps[1].idx, 1);
        assert_eq!(trace.jobs[0].reduces().len(), 1);
    }

    #[test]
    fn reduce_phase_extraction() {
        let trace = RumenTrace::from_history(LOG).unwrap();
        let r = trace.jobs[0].reduces()[0];
        assert_eq!(r.runtime_ms(), 180);
        assert_eq!(r.reduce_phase_ms(), 60); // 300 - 240
    }

    #[test]
    fn map_task_phase_fallback() {
        let t = RumenTask {
            kind: TaskKind::Map,
            idx: 0,
            start: SimTime::from_millis(10),
            shuffle_end: None,
            sort_end: None,
            end: SimTime::from_millis(50),
            node: 0,
        };
        assert_eq!(t.reduce_phase_ms(), 40);
    }

    #[test]
    fn tasks_for_unknown_jobs_dropped() {
        let log = "\
JOB id=0 name=j submit=0 launch=0 finish=10 maps=0 reduces=0
TASK job=5 kind=map idx=0 start=0 end=1 node=0
";
        let trace = RumenTrace::from_history(log).unwrap();
        assert_eq!(trace.total_tasks(), 0);
    }

    #[test]
    fn from_workload_synthesis() {
        use simmr_types::{JobSpec, JobTemplate, WorkloadTrace};
        let mut wt = WorkloadTrace::new("t", "test");
        wt.push(JobSpec::new(
            JobTemplate::new("j", vec![100, 200], vec![10], vec![30], vec![40]).unwrap(),
            SimTime::from_millis(5),
        ));
        let rumen = RumenTrace::from_workload(&wt);
        assert_eq!(rumen.jobs.len(), 1);
        assert_eq!(rumen.total_tasks(), 3);
        let maps = rumen.jobs[0].maps();
        assert_eq!(maps[0].runtime_ms(), 100);
        assert_eq!(maps[1].runtime_ms(), 200);
        let r = rumen.jobs[0].reduces()[0];
        assert_eq!(r.reduce_phase_ms(), 40);
        assert_eq!(r.runtime_ms(), 70);
        assert_eq!(rumen.jobs[0].submit, SimTime::from_millis(5));
    }

    #[test]
    fn serde_round_trip() {
        let trace = RumenTrace::from_history(LOG).unwrap();
        let json = serde_json::to_string(&trace).unwrap();
        let back: RumenTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}
