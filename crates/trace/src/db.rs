//! The Trace Database (§III-A).
//!
//! *"We store job traces persistently in a Trace database (for efficient
//! lookup and storage) using a job template."* Ours is a directory of JSON
//! files, one per trace, with an in-memory name index.

use simmr_types::WorkloadTrace;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// A directory-backed store of named workload traces.
#[derive(Debug)]
pub struct TraceDatabase {
    root: PathBuf,
}

/// Database operation errors.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Lookup of a trace that does not exist.
    NotFound(String),
    /// Rejected trace name (must be non-empty, `[A-Za-z0-9._-]`).
    BadName(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "trace db I/O error: {e}"),
            DbError::Json(e) => write!(f, "trace db serialization error: {e}"),
            DbError::NotFound(n) => write!(f, "trace `{n}` not found"),
            DbError::BadName(n) => write!(f, "invalid trace name `{n}`"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}

impl From<serde_json::Error> for DbError {
    fn from(e: serde_json::Error) -> Self {
        DbError::Json(e)
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

impl TraceDatabase {
    /// Opens (creating if needed) a database rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, DbError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(TraceDatabase { root })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.trace.json"))
    }

    /// Stores a trace under `name`, overwriting any previous version.
    pub fn store(&self, name: &str, trace: &WorkloadTrace) -> Result<(), DbError> {
        if !valid_name(name) {
            return Err(DbError::BadName(name.into()));
        }
        let json = serde_json::to_string(trace)?;
        std::fs::write(self.path_of(name), json)?;
        Ok(())
    }

    /// Loads the trace stored under `name`.
    pub fn load(&self, name: &str) -> Result<WorkloadTrace, DbError> {
        if !valid_name(name) {
            return Err(DbError::BadName(name.into()));
        }
        let path = self.path_of(name);
        if !path.exists() {
            return Err(DbError::NotFound(name.into()));
        }
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Removes a stored trace; `Ok(false)` when it did not exist.
    pub fn remove(&self, name: &str) -> Result<bool, DbError> {
        if !valid_name(name) {
            return Err(DbError::BadName(name.into()));
        }
        let path = self.path_of(name);
        if !path.exists() {
            return Ok(false);
        }
        std::fs::remove_file(path)?;
        Ok(true)
    }

    /// Lists stored traces with their job counts, sorted by name.
    pub fn list(&self) -> Result<BTreeMap<String, usize>, DbError> {
        let mut out = BTreeMap::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let fname = entry.file_name();
            let Some(name) = fname.to_str().and_then(|f| f.strip_suffix(".trace.json")) else {
                continue;
            };
            if let Ok(trace) = self.load(name) {
                out.insert(name.to_string(), trace.len());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_types::{JobSpec, JobTemplate, SimTime};

    fn sample_trace(n: usize) -> WorkloadTrace {
        let mut t = WorkloadTrace::new("db test", "unit");
        for i in 0..n {
            t.push(JobSpec::new(
                JobTemplate::new(format!("j{i}"), vec![10], vec![], vec![], vec![]).unwrap(),
                SimTime::from_millis(i as u64),
            ));
        }
        t
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simmr-db-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_round_trip() {
        let db = TraceDatabase::open(tmpdir("rt")).unwrap();
        let trace = sample_trace(3);
        db.store("mixed-6apps", &trace).unwrap();
        assert_eq!(db.load("mixed-6apps").unwrap(), trace);
    }

    #[test]
    fn list_and_remove() {
        let db = TraceDatabase::open(tmpdir("list")).unwrap();
        db.store("a", &sample_trace(1)).unwrap();
        db.store("b", &sample_trace(2)).unwrap();
        let listing = db.list().unwrap();
        assert_eq!(listing.get("a"), Some(&1));
        assert_eq!(listing.get("b"), Some(&2));
        assert!(db.remove("a").unwrap());
        assert!(!db.remove("a").unwrap());
        assert!(!db.list().unwrap().contains_key("a"));
    }

    #[test]
    fn missing_trace_errors() {
        let db = TraceDatabase::open(tmpdir("missing")).unwrap();
        assert!(matches!(db.load("nope"), Err(DbError::NotFound(_))));
    }

    #[test]
    fn bad_names_rejected() {
        let db = TraceDatabase::open(tmpdir("names")).unwrap();
        for bad in ["", "../evil", "a b", "x/y"] {
            assert!(matches!(db.store(bad, &sample_trace(1)), Err(DbError::BadName(_))), "{bad}");
            assert!(matches!(db.load(bad), Err(DbError::BadName(_))));
        }
    }

    #[test]
    fn overwrite_replaces() {
        let db = TraceDatabase::open(tmpdir("ow")).unwrap();
        db.store("t", &sample_trace(1)).unwrap();
        db.store("t", &sample_trace(5)).unwrap();
        assert_eq!(db.load("t").unwrap().len(), 5);
    }
}
