//! The Trace Database (§III-A).
//!
//! *"We store job traces persistently in a Trace database (for efficient
//! lookup and storage) using a job template."* Ours is a directory of
//! trace files, one per trace, in either of two formats:
//!
//! * `{name}.trace.json` — human-inspectable JSON ([`Self::store`]);
//! * `{name}.trace.bin` — the compact SIMMRBIN format
//!   ([`Self::store_bin`], see [`crate::binfmt`]), preferred at scale.
//!
//! [`Self::load`] auto-detects the format (binary preferred when both
//! exist). All writes go through a temp-file-plus-rename so a crash
//! mid-write can never shadow the previous version with a torn file, and
//! [`Self::list`] reports unreadable traces as [`TraceStatus::Corrupt`]
//! instead of silently dropping them.

use crate::binfmt::{self, BinError};
use crate::digest::{digest_trace, TraceDigest};
use simmr_types::{SimTime, WorkloadTrace};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// A directory-backed store of named workload traces.
#[derive(Debug)]
pub struct TraceDatabase {
    root: PathBuf,
}

/// Database operation errors.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Binary codec failure.
    Bin(BinError),
    /// Lookup of a trace that does not exist.
    NotFound(String),
    /// Rejected trace name (must be non-empty, `[A-Za-z0-9._-]`).
    BadName(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "trace db I/O error: {e}"),
            DbError::Json(e) => write!(f, "trace db serialization error: {e}"),
            DbError::Bin(e) => write!(f, "trace db binary codec error: {e}"),
            DbError::NotFound(n) => write!(f, "trace `{n}` not found"),
            DbError::BadName(n) => write!(f, "invalid trace name `{n}`"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}

impl From<serde_json::Error> for DbError {
    fn from(e: serde_json::Error) -> Self {
        DbError::Json(e)
    }
}

impl From<BinError> for DbError {
    fn from(e: BinError) -> Self {
        DbError::Bin(e)
    }
}

/// On-disk representation of a stored trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// `{name}.trace.json`.
    Json,
    /// `{name}.trace.bin` (SIMMRBIN).
    Bin,
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFormat::Json => write!(f, "json"),
            TraceFormat::Bin => write!(f, "bin"),
        }
    }
}

/// One row of a [`TraceDatabase::list`] listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStatus {
    /// The trace parses; `jobs` is its job count.
    Ok {
        /// Stored format (binary wins when both files exist).
        format: TraceFormat,
        /// Number of jobs in the trace.
        jobs: usize,
        /// Earliest and latest job arrival (`None` for an empty trace)
        /// — the listing's at-a-glance arrival span.
        span: Option<(SimTime, SimTime)>,
        /// Stable content digest (see [`crate::digest`]) — the
        /// serve-layer cache key component for this trace.
        digest: TraceDigest,
    },
    /// The file exists but does not parse — surfaced, not hidden, so a
    /// corrupted store is visible in listings.
    Corrupt {
        /// Format implied by the file extension.
        format: TraceFormat,
        /// Human-readable parse failure.
        error: String,
    },
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Writes `bytes` to `path` atomically: a temp file in the same directory
/// (same filesystem, so the rename cannot cross devices) is written,
/// flushed, and renamed over the target. A crash mid-write leaves only
/// the temp file behind; the previous version stays intact.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().and_then(|f| f.to_str()).unwrap_or("trace");
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    let write = (|| {
        use io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

impl TraceDatabase {
    /// Opens (creating if needed) a database rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, DbError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(TraceDatabase { root })
    }

    fn path_of(&self, name: &str, format: TraceFormat) -> PathBuf {
        match format {
            TraceFormat::Json => self.root.join(format!("{name}.trace.json")),
            TraceFormat::Bin => self.root.join(format!("{name}.trace.bin")),
        }
    }

    /// Stores a trace as JSON under `name`, atomically overwriting any
    /// previous JSON version. A binary file of the same name (which would
    /// shadow this one on load) is removed.
    pub fn store(&self, name: &str, trace: &WorkloadTrace) -> Result<(), DbError> {
        if !valid_name(name) {
            return Err(DbError::BadName(name.into()));
        }
        let json = serde_json::to_string(trace)?;
        write_atomic(&self.path_of(name, TraceFormat::Json), json.as_bytes())?;
        let shadow = self.path_of(name, TraceFormat::Bin);
        if shadow.exists() {
            std::fs::remove_file(shadow)?;
        }
        Ok(())
    }

    /// Stores a trace in the SIMMRBIN binary format under `name`,
    /// atomically overwriting any previous binary version and removing a
    /// now-stale JSON file of the same name.
    pub fn store_bin(&self, name: &str, trace: &WorkloadTrace) -> Result<(), DbError> {
        if !valid_name(name) {
            return Err(DbError::BadName(name.into()));
        }
        let bytes = binfmt::encode_trace(trace)?;
        write_atomic(&self.path_of(name, TraceFormat::Bin), &bytes)?;
        let stale = self.path_of(name, TraceFormat::Json);
        if stale.exists() {
            std::fs::remove_file(stale)?;
        }
        Ok(())
    }

    /// The stored format of `name`, if present (binary wins when both
    /// files exist, matching [`Self::load`]).
    pub fn format_of(&self, name: &str) -> Result<Option<TraceFormat>, DbError> {
        if !valid_name(name) {
            return Err(DbError::BadName(name.into()));
        }
        if self.path_of(name, TraceFormat::Bin).exists() {
            Ok(Some(TraceFormat::Bin))
        } else if self.path_of(name, TraceFormat::Json).exists() {
            Ok(Some(TraceFormat::Json))
        } else {
            Ok(None)
        }
    }

    /// Path of the stored trace (for streaming binary traces straight
    /// into the engine without materializing them).
    pub fn path(&self, name: &str) -> Result<PathBuf, DbError> {
        match self.format_of(name)? {
            Some(format) => Ok(self.path_of(name, format)),
            None => Err(DbError::NotFound(name.into())),
        }
    }

    /// Loads the trace stored under `name`, auto-detecting the format.
    pub fn load(&self, name: &str) -> Result<WorkloadTrace, DbError> {
        match self.format_of(name)? {
            Some(TraceFormat::Bin) => {
                let bytes = std::fs::read(self.path_of(name, TraceFormat::Bin))?;
                Ok(binfmt::decode_trace(&bytes)?)
            }
            Some(TraceFormat::Json) => {
                let json = std::fs::read_to_string(self.path_of(name, TraceFormat::Json))?;
                Ok(serde_json::from_str(&json)?)
            }
            None => Err(DbError::NotFound(name.into())),
        }
    }

    /// Removes a stored trace (both formats); `Ok(false)` when neither
    /// file existed.
    pub fn remove(&self, name: &str) -> Result<bool, DbError> {
        if !valid_name(name) {
            return Err(DbError::BadName(name.into()));
        }
        let mut removed = false;
        for format in [TraceFormat::Json, TraceFormat::Bin] {
            let path = self.path_of(name, format);
            if path.exists() {
                std::fs::remove_file(path)?;
                removed = true;
            }
        }
        Ok(removed)
    }

    /// Lists stored traces sorted by name, with format and job count —
    /// or a [`TraceStatus::Corrupt`] marker for files that no longer
    /// parse. Leftover `.tmp` files from interrupted writes are skipped.
    pub fn list(&self) -> Result<BTreeMap<String, TraceStatus>, DbError> {
        let mut out = BTreeMap::new();
        for entry in std::fs::read_dir(&self.root)? {
            let fname = entry?.file_name();
            let Some(fname) = fname.to_str() else {
                continue;
            };
            let (name, format) = if let Some(n) = fname.strip_suffix(".trace.json") {
                (n, TraceFormat::Json)
            } else if let Some(n) = fname.strip_suffix(".trace.bin") {
                (n, TraceFormat::Bin)
            } else {
                continue;
            };
            // When both formats exist the binary one shadows the JSON on
            // load; report the one load() would pick.
            if format == TraceFormat::Json && self.path_of(name, TraceFormat::Bin).exists() {
                continue;
            }
            let status = match self.load(name).and_then(|trace| {
                let digest = digest_trace(&trace)?;
                Ok((trace, digest))
            }) {
                Ok((trace, digest)) => TraceStatus::Ok {
                    format,
                    jobs: trace.len(),
                    span: trace.first_arrival().zip(trace.last_arrival()),
                    digest,
                },
                Err(e) => TraceStatus::Corrupt { format, error: e.to_string() },
            };
            out.insert(name.to_string(), status);
        }
        Ok(out)
    }

    /// Content digest of the trace stored under `name`.
    pub fn digest_of(&self, name: &str) -> Result<TraceDigest, DbError> {
        Ok(digest_trace(&self.load(name)?)?)
    }

    /// Finds a stored trace by content digest (the serve layer's
    /// digest-addressed trace refs). Scans the store; corrupt entries
    /// are skipped. Returns the first matching name in listing order.
    pub fn find_by_digest(&self, digest: TraceDigest) -> Result<Option<String>, DbError> {
        for (name, status) in self.list()? {
            if matches!(status, TraceStatus::Ok { digest: d, .. } if d == digest) {
                return Ok(Some(name));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_types::{JobSpec, JobTemplate, SimTime};

    fn sample_trace(n: usize) -> WorkloadTrace {
        let mut t = WorkloadTrace::new("db test", "unit");
        for i in 0..n {
            t.push(JobSpec::new(
                JobTemplate::new(format!("j{i}"), vec![10], vec![], vec![], vec![]).unwrap(),
                SimTime::from_millis(i as u64),
            ));
        }
        t
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simmr-db-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_round_trip() {
        let db = TraceDatabase::open(tmpdir("rt")).unwrap();
        let trace = sample_trace(3);
        db.store("mixed-6apps", &trace).unwrap();
        assert_eq!(db.load("mixed-6apps").unwrap(), trace);
    }

    #[test]
    fn bin_store_load_round_trip() {
        let db = TraceDatabase::open(tmpdir("binrt")).unwrap();
        let trace = sample_trace(3);
        db.store_bin("packed", &trace).unwrap();
        assert_eq!(db.format_of("packed").unwrap(), Some(TraceFormat::Bin));
        // binary canonicalizes to arrival order; sample arrivals are sorted
        assert_eq!(db.load("packed").unwrap(), trace);
        // re-storing as JSON replaces the binary file
        db.store("packed", &trace).unwrap();
        assert_eq!(db.format_of("packed").unwrap(), Some(TraceFormat::Json));
    }

    #[test]
    fn list_and_remove() {
        let db = TraceDatabase::open(tmpdir("list")).unwrap();
        db.store("a", &sample_trace(1)).unwrap();
        db.store_bin("b", &sample_trace(2)).unwrap();
        let listing = db.list().unwrap();
        let digest_of = |n| digest_trace(&sample_trace(n)).unwrap();
        // sample arrivals are 0..n-1 ms, so the span is (0, n-1)
        let span_of = |n: u64| Some((SimTime::ZERO, SimTime::from_millis(n - 1)));
        assert_eq!(
            listing.get("a"),
            Some(&TraceStatus::Ok {
                format: TraceFormat::Json,
                jobs: 1,
                span: span_of(1),
                digest: digest_of(1)
            })
        );
        assert_eq!(
            listing.get("b"),
            Some(&TraceStatus::Ok {
                format: TraceFormat::Bin,
                jobs: 2,
                span: span_of(2),
                digest: digest_of(2)
            })
        );
        // digests are queryable directly and addressable in reverse
        assert_eq!(db.digest_of("a").unwrap(), digest_of(1));
        assert_eq!(db.find_by_digest(digest_of(2)).unwrap(), Some("b".into()));
        assert_eq!(db.find_by_digest(TraceDigest(0xdead_beef)).unwrap(), None);
        assert!(db.remove("a").unwrap());
        assert!(!db.remove("a").unwrap());
        assert!(db.remove("b").unwrap());
        assert!(db.list().unwrap().is_empty());
    }

    #[test]
    fn missing_trace_errors() {
        let db = TraceDatabase::open(tmpdir("missing")).unwrap();
        assert!(matches!(db.load("nope"), Err(DbError::NotFound(_))));
        assert!(matches!(db.path("nope"), Err(DbError::NotFound(_))));
    }

    #[test]
    fn bad_names_rejected() {
        let db = TraceDatabase::open(tmpdir("names")).unwrap();
        for bad in ["", "../evil", "a b", "x/y"] {
            assert!(matches!(db.store(bad, &sample_trace(1)), Err(DbError::BadName(_))), "{bad}");
            assert!(matches!(db.store_bin(bad, &sample_trace(1)), Err(DbError::BadName(_))));
            assert!(matches!(db.load(bad), Err(DbError::BadName(_))));
        }
    }

    #[test]
    fn overwrite_replaces() {
        let db = TraceDatabase::open(tmpdir("ow")).unwrap();
        db.store("t", &sample_trace(1)).unwrap();
        db.store("t", &sample_trace(5)).unwrap();
        assert_eq!(db.load("t").unwrap().len(), 5);
    }

    #[test]
    fn partial_write_never_shadows_previous_version() {
        // Regression for the non-atomic store: a torn write (simulated by
        // the leftover temp file of an interrupted store) must leave the
        // previous version loadable and invisible to listings.
        let db = TraceDatabase::open(tmpdir("atomic")).unwrap();
        let v1 = sample_trace(4);
        db.store("t", &v1).unwrap();
        let tmp = db.root.join("t.trace.json.tmp");
        std::fs::write(&tmp, b"{\"meta\": truncated mid-wri").unwrap();
        assert_eq!(db.load("t").unwrap(), v1, "temp file must not shadow the stored trace");
        assert_eq!(
            db.list().unwrap().get("t"),
            Some(&TraceStatus::Ok {
                format: TraceFormat::Json,
                jobs: 4,
                span: Some((SimTime::ZERO, SimTime::from_millis(3))),
                digest: digest_trace(&v1).unwrap()
            })
        );
        assert!(tmp.exists(), "simulated leftover should still be on disk for this test");
    }

    #[test]
    fn corrupt_traces_surface_in_listing() {
        let db = TraceDatabase::open(tmpdir("corrupt")).unwrap();
        db.store("good", &sample_trace(2)).unwrap();
        std::fs::write(db.root.join("mangled.trace.json"), b"{not json").unwrap();
        let mut bin = crate::binfmt::encode_trace(&sample_trace(2)).unwrap();
        let last = bin.len() - 1;
        bin[last] ^= 0xFF; // flip one body byte: checksum mismatch
        std::fs::write(db.root.join("flipped.trace.bin"), &bin).unwrap();
        let listing = db.list().unwrap();
        assert_eq!(
            listing.get("good"),
            Some(&TraceStatus::Ok {
                format: TraceFormat::Json,
                jobs: 2,
                span: Some((SimTime::ZERO, SimTime::from_millis(1))),
                digest: digest_trace(&sample_trace(2)).unwrap()
            })
        );
        assert!(
            matches!(
                listing.get("mangled"),
                Some(TraceStatus::Corrupt { format: TraceFormat::Json, .. })
            ),
            "corrupt JSON must appear in the listing: {:?}",
            listing.get("mangled")
        );
        assert!(
            matches!(
                listing.get("flipped"),
                Some(TraceStatus::Corrupt { format: TraceFormat::Bin, .. })
            ),
            "corrupt binary must appear in the listing: {:?}",
            listing.get("flipped")
        );
        // corrupt entries still load as typed errors, never panics
        assert!(db.load("mangled").is_err());
        assert!(matches!(db.load("flipped"), Err(DbError::Bin(BinError::ChecksumMismatch { .. }))));
    }
}
