//! Synthetic TraceGen (§III-A, §V-C).
//!
//! Generates replayable workloads from statistical descriptions instead of
//! recorded logs — *"this can help evaluate hypothetical workloads and
//! consider what-if scenarios"*. Two layers:
//!
//! * [`SyntheticWorkload`] — fully parametric: distributions for map /
//!   shuffle / reduce durations, job shapes, and an exponential arrival
//!   process;
//! * [`FacebookWorkload`] — the paper's §V-C instantiation: per-task
//!   durations follow the LogNormals fitted to the Facebook production
//!   workload of Zaharia et al. (map `LN(9.9511, 1.6764)` ms, reduce
//!   `LN(12.375, 1.6262)` ms), with job sizes drawn from a binned
//!   approximation of their Table 3 job-size mix.

use std::io;

use simmr_stats::{Dist, Distribution, SeededRng};
use simmr_types::{JobSpec, JobTemplate, SimTime, TraceMeta, WorkloadTrace};

use crate::binfmt::{BinError, BinTraceWriter};

/// Shape of one synthetic job class.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticJobSpec {
    /// Class label (becomes part of the job name).
    pub name: String,
    /// Number of map tasks.
    pub num_maps: usize,
    /// Number of reduce tasks.
    pub num_reduces: usize,
    /// Relative frequency of this class in the mix.
    pub weight: f64,
}

/// A parametric workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorkload {
    /// Job classes and their mix weights.
    pub classes: Vec<SyntheticJobSpec>,
    /// Per-map-task duration distribution (milliseconds).
    pub map_ms: Dist,
    /// Per-reduce-task *total* duration distribution (milliseconds); split
    /// into shuffle and reduce phases by `shuffle_fraction`.
    pub reduce_ms: Dist,
    /// Fraction of a reduce task's duration spent in the shuffle phase.
    pub shuffle_fraction: f64,
    /// Mean of the exponential job inter-arrival time (milliseconds).
    pub mean_interarrival_ms: f64,
}

impl SyntheticWorkload {
    /// Generates `num_jobs` jobs.
    pub fn generate(&self, num_jobs: usize, seed: u64) -> WorkloadTrace {
        assert!(!self.classes.is_empty(), "workload needs at least one job class");
        let mut rng = SeededRng::new(seed);
        let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();
        let arrival_dist = Dist::Exponential { mean: self.mean_interarrival_ms.max(0.0) };
        let frac = self.shuffle_fraction.clamp(0.0, 1.0);

        let mut trace = WorkloadTrace {
            meta: TraceMeta {
                description: format!(
                    "synthetic workload ({} classes, mean inter-arrival {} ms)",
                    self.classes.len(),
                    self.mean_interarrival_ms
                ),
                source: "synthetic".into(),
                seed: Some(seed),
            },
            jobs: Vec::with_capacity(num_jobs),
        };
        let mut clock = SimTime::ZERO;
        for i in 0..num_jobs {
            let class = &self.classes[rng.weighted_index(&weights)];
            let template =
                self.sample_template(class, format!("{}-{:04}", class.name, i), frac, &mut rng);
            trace.push(JobSpec::new(template, clock));
            if self.mean_interarrival_ms > 0.0 {
                clock += arrival_dist.sample(&mut rng).max(0.0) as u64;
            }
        }
        trace
    }

    /// Samples one concrete template for `class` from the duration
    /// distributions.
    fn sample_template(
        &self,
        class: &SyntheticJobSpec,
        name: String,
        shuffle_fraction: f64,
        rng: &mut SeededRng,
    ) -> JobTemplate {
        let map_durations: Vec<u64> =
            (0..class.num_maps.max(1)).map(|_| self.map_ms.sample(rng).max(1.0) as u64).collect();
        let mut typical = Vec::with_capacity(class.num_reduces);
        let mut first = Vec::with_capacity(class.num_reduces);
        let mut reduce = Vec::with_capacity(class.num_reduces);
        for _ in 0..class.num_reduces {
            let total = self.reduce_ms.sample(rng).max(1.0);
            let shuffle = (total * shuffle_fraction).round() as u64;
            typical.push(shuffle.max(1));
            // first-wave non-overlapping shuffle: roughly half of the
            // typical shuffle remains after the map stage ends
            first.push((shuffle / 2).max(1));
            reduce.push((total as u64).saturating_sub(shuffle).max(1));
        }
        JobTemplate::new(name, map_durations, first, typical, reduce)
            .expect("generated template is structurally valid")
    }

    /// Builds the pooled template table: `variants_per_class` concrete
    /// templates sampled per class, named `{class}-v{variant:02}`.
    ///
    /// Unlike [`Self::generate`] — which samples a fresh template for every
    /// job and therefore defeats the binary format's template interning —
    /// a pool bounds the number of distinct templates regardless of trace
    /// length, so a million-job binary trace stores each class variant once
    /// and every job record is a fixed-stride few-dozen-byte row.
    ///
    /// The pool is drawn from a dedicated RNG stream, so re-generating a
    /// trace with a different job count reuses the identical pool.
    pub fn template_pool(&self, variants_per_class: usize, seed: u64) -> Vec<JobTemplate> {
        assert!(!self.classes.is_empty(), "workload needs at least one job class");
        assert!(variants_per_class > 0, "pool needs at least one variant per class");
        let mut rng = SeededRng::new(seed).fork(POOL_STREAM);
        let frac = self.shuffle_fraction.clamp(0.0, 1.0);
        let mut pool = Vec::with_capacity(self.classes.len() * variants_per_class);
        for class in &self.classes {
            for v in 0..variants_per_class {
                pool.push(self.sample_template(
                    class,
                    format!("{}-v{:02}", class.name, v),
                    frac,
                    &mut rng,
                ));
            }
        }
        pool
    }

    /// Drives the pooled job schedule: for each job, picks a class by mix
    /// weight and a variant uniformly, and advances the exponential arrival
    /// clock. Shared by [`Self::generate_pooled`] and [`Self::write_bin`]
    /// so the materialized and streamed forms of a seed are identical.
    fn each_pooled_job(
        &self,
        num_jobs: usize,
        variants_per_class: usize,
        seed: u64,
        mut emit: impl FnMut(usize, SimTime),
    ) {
        let mut rng = SeededRng::new(seed);
        let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();
        let arrival_dist = Dist::Exponential { mean: self.mean_interarrival_ms.max(0.0) };
        let mut clock = SimTime::ZERO;
        for _ in 0..num_jobs {
            let class = rng.weighted_index(&weights);
            let variant = rng.index(variants_per_class);
            emit(class * variants_per_class + variant, clock);
            if self.mean_interarrival_ms > 0.0 {
                clock += arrival_dist.sample(&mut rng).max(0.0) as u64;
            }
        }
    }

    /// Default metadata for pooled generation.
    fn pooled_meta(&self, variants_per_class: usize, seed: u64) -> TraceMeta {
        TraceMeta {
            description: format!(
                "pooled synthetic workload ({} classes x {variants_per_class} variants, \
                 mean inter-arrival {} ms)",
                self.classes.len(),
                self.mean_interarrival_ms
            ),
            source: "synthetic-pooled".into(),
            seed: Some(seed),
        }
    }

    /// Generates `num_jobs` jobs drawn from a bounded template pool,
    /// materialized as a [`WorkloadTrace`].
    ///
    /// Byte-for-byte equivalent to decoding the output of
    /// [`Self::write_bin`] with the same arguments.
    pub fn generate_pooled(
        &self,
        num_jobs: usize,
        variants_per_class: usize,
        seed: u64,
    ) -> WorkloadTrace {
        let pool = self.template_pool(variants_per_class, seed);
        let mut trace = WorkloadTrace {
            meta: self.pooled_meta(variants_per_class, seed),
            jobs: Vec::with_capacity(num_jobs),
        };
        self.each_pooled_job(num_jobs, variants_per_class, seed, |idx, arrival| {
            trace.push(JobSpec::new(pool[idx].clone(), arrival));
        });
        trace
    }

    /// Streams `num_jobs` pooled jobs straight into the binary trace format
    /// without ever materializing the trace: memory use is O(pool), not
    /// O(jobs), which is what makes million-job trace generation cheap.
    ///
    /// Pass `meta: None` for the default pooled metadata. Returns the
    /// writer's output (positioned after the trailing record).
    pub fn write_bin<W: io::Write + io::Seek>(
        &self,
        num_jobs: usize,
        variants_per_class: usize,
        seed: u64,
        meta: Option<&TraceMeta>,
        out: W,
    ) -> Result<W, BinError> {
        let pool = self.template_pool(variants_per_class, seed);
        let default_meta = self.pooled_meta(variants_per_class, seed);
        let mut writer = BinTraceWriter::new(out, meta.unwrap_or(&default_meta));
        let ids: Vec<u32> =
            pool.iter().map(|t| writer.intern_template(t)).collect::<Result<_, BinError>>()?;
        let mut failed = None;
        self.each_pooled_job(num_jobs, variants_per_class, seed, |idx, arrival| {
            if failed.is_none() {
                if let Err(e) = writer.push_job(ids[idx], arrival, None) {
                    failed = Some(e);
                }
            }
        });
        match failed {
            Some(e) => Err(e),
            None => writer.finish(),
        }
    }
}

/// Dedicated RNG stream for sampling the template pool, so the pool is
/// independent of the per-job schedule stream.
const POOL_STREAM: u64 = 2;

/// The §V-C Facebook-like workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacebookWorkload {
    /// Mean exponential inter-arrival time in milliseconds.
    pub mean_interarrival_ms: f64,
}

impl FacebookWorkload {
    /// Job-size mix approximating Table 3 of Zaharia et al. (EuroSys'10):
    /// `(maps, reduces, % of jobs)`. Small jobs dominate; the tail is huge.
    pub const JOB_MIX: [(usize, usize, f64); 9] = [
        (1, 0, 38.0),
        (2, 0, 16.0),
        (10, 3, 14.0),
        (50, 10, 9.0),
        (100, 20, 6.0),
        (200, 50, 6.0),
        (400, 80, 5.0),
        (800, 120, 4.0),
        (2400, 180, 2.0),
    ];

    /// Builds the underlying parametric description.
    pub fn workload(&self) -> SyntheticWorkload {
        SyntheticWorkload {
            classes: Self::JOB_MIX
                .iter()
                .map(|&(m, r, w)| SyntheticJobSpec {
                    name: format!("fb-{m}x{r}"),
                    num_maps: m,
                    num_reduces: r,
                    weight: w,
                })
                .collect(),
            map_ms: Dist::FACEBOOK_MAP_MS,
            reduce_ms: Dist::FACEBOOK_REDUCE_MS,
            // reduce tasks spend most of their time shuffling in the
            // Facebook mix (large fan-in, small reduce functions)
            shuffle_fraction: 0.6,
            mean_interarrival_ms: self.mean_interarrival_ms,
        }
    }

    /// Generates `num_jobs` Facebook-like jobs.
    pub fn generate(&self, num_jobs: usize, seed: u64) -> WorkloadTrace {
        let mut trace = self.workload().generate(num_jobs, seed);
        trace.meta.description = format!(
            "Facebook-like LogNormal workload (mean inter-arrival {} ms)",
            self.mean_interarrival_ms
        );
        trace.meta.source = "synthetic-facebook".into();
        trace
    }

    /// Metadata shared by [`Self::generate_pooled`] and [`Self::write_bin`].
    pub fn pooled_meta(&self, variants_per_class: usize, seed: u64) -> TraceMeta {
        TraceMeta {
            description: format!(
                "pooled Facebook-like LogNormal workload \
                 ({variants_per_class} variants/class, mean inter-arrival {} ms)",
                self.mean_interarrival_ms
            ),
            source: "synthetic-facebook-pooled".into(),
            seed: Some(seed),
        }
    }

    /// Generates `num_jobs` Facebook-like jobs from a bounded template pool
    /// (see [`SyntheticWorkload::template_pool`]).
    pub fn generate_pooled(
        &self,
        num_jobs: usize,
        variants_per_class: usize,
        seed: u64,
    ) -> WorkloadTrace {
        let mut trace = self.workload().generate_pooled(num_jobs, variants_per_class, seed);
        trace.meta = self.pooled_meta(variants_per_class, seed);
        trace
    }

    /// Streams `num_jobs` pooled Facebook-like jobs into the binary trace
    /// format with O(pool) memory. Decodes to exactly the trace
    /// [`Self::generate_pooled`] materializes.
    pub fn write_bin<W: io::Write + io::Seek>(
        &self,
        num_jobs: usize,
        variants_per_class: usize,
        seed: u64,
        out: W,
    ) -> Result<W, BinError> {
        self.workload().write_bin(
            num_jobs,
            variants_per_class,
            seed,
            Some(&self.pooled_meta(variants_per_class, seed)),
            out,
        )
    }
}

/// A multi-tenant workload: Facebook-like jobs tagged with tenant prefixes.
///
/// Each generated job is assigned to a tenant by a seeded weighted choice
/// drawn from a dedicated RNG stream (so adding or re-weighting tenants
/// never perturbs the job shapes or arrivals), and the tenant's name is
/// prepended to the job name. The prefixes line up with the leaf routing
/// of the hierarchical pool-tree policy (`simmr-sched`'s `hier:` spec):
/// a tenant named `prod-etl` produces jobs like `prod-etl-fb-10x3-0042`,
/// which route to the `etl` leaf of `hier:prod{etl,serving},adhoc`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantWorkload {
    /// `(tenant prefix, relative share of jobs)` — weights need not sum
    /// to anything in particular.
    pub tenants: Vec<(String, f64)>,
    /// Mean exponential inter-arrival time in milliseconds.
    pub mean_interarrival_ms: f64,
}

/// Dedicated RNG stream for the tenant assignment.
const TENANT_STREAM: u64 = 1;

impl MultiTenantWorkload {
    /// The three-tenant mix used by the `multi_tenant` example and the
    /// hierarchy acceptance tests: two production tenants plus a noisy
    /// ad-hoc tenant submitting half of all jobs.
    pub fn three_tenant(mean_interarrival_ms: f64) -> Self {
        MultiTenantWorkload {
            tenants: vec![
                ("prod-etl".into(), 3.0),
                ("prod-serving".into(), 2.0),
                ("adhoc".into(), 5.0),
            ],
            mean_interarrival_ms,
        }
    }

    /// Generates `num_jobs` tenant-tagged Facebook-like jobs.
    pub fn generate(&self, num_jobs: usize, seed: u64) -> WorkloadTrace {
        assert!(!self.tenants.is_empty(), "multi-tenant workload needs at least one tenant");
        let mut trace = FacebookWorkload { mean_interarrival_ms: self.mean_interarrival_ms }
            .generate(num_jobs, seed);
        let mut rng = SeededRng::new(seed).fork(TENANT_STREAM);
        let weights: Vec<f64> = self.tenants.iter().map(|&(_, w)| w).collect();
        for job in trace.jobs.iter_mut() {
            let (tenant, _) = &self.tenants[rng.weighted_index(&weights)];
            job.template.name = format!("{tenant}-{}", job.template.name).into();
        }
        trace.meta.description = format!(
            "{} tenants ({}) over a {}",
            self.tenants.len(),
            self.tenants.iter().map(|(t, _)| t.as_str()).collect::<Vec<_>>().join(", "),
            trace.meta.description
        );
        trace.meta.source = "synthetic-multi-tenant".into();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_stats::{fit_lognormal, EmpiricalCdf};

    #[test]
    fn generates_requested_count_and_validates() {
        let trace = FacebookWorkload { mean_interarrival_ms: 1000.0 }.generate(100, 1);
        assert_eq!(trace.len(), 100);
        trace.validate().unwrap();
        assert_eq!(trace.meta.seed, Some(1));
    }

    #[test]
    fn deterministic_per_seed() {
        let w = FacebookWorkload { mean_interarrival_ms: 500.0 };
        assert_eq!(w.generate(50, 9), w.generate(50, 9));
        assert_ne!(w.generate(50, 9), w.generate(50, 10));
    }

    #[test]
    fn arrivals_monotone_with_expected_spacing() {
        let trace = FacebookWorkload { mean_interarrival_ms: 2000.0 }.generate(400, 3);
        let mut arrivals: Vec<SimTime> = trace.jobs.iter().map(|j| j.arrival).collect();
        let sorted = {
            let mut s = arrivals.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(arrivals, sorted, "generator emits jobs in arrival order");
        let span = arrivals.pop().unwrap().as_millis() as f64;
        let mean_gap = span / 399.0;
        assert!((mean_gap / 2000.0 - 1.0).abs() < 0.25, "mean gap {mean_gap}");
    }

    #[test]
    fn map_durations_follow_the_fitted_lognormal() {
        let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(300, 5);
        let all_maps: Vec<f64> = trace
            .jobs
            .iter()
            .flat_map(|j| j.template.map_durations.iter().map(|&d| d as f64))
            .collect();
        assert!(all_maps.len() > 1000);
        match fit_lognormal(&all_maps).unwrap() {
            Dist::LogNormal { mu, sigma } => {
                assert!((mu - 9.9511).abs() < 0.15, "mu={mu}");
                assert!((sigma - 1.6764).abs() < 0.15, "sigma={sigma}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn small_jobs_dominate_the_mix() {
        let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(1000, 6);
        let tiny = trace.jobs.iter().filter(|j| j.template.num_maps <= 2).count();
        let frac = tiny as f64 / 1000.0;
        assert!((0.46..0.62).contains(&frac), "tiny-job fraction {frac}");
    }

    #[test]
    fn shuffle_reduce_split() {
        let w = SyntheticWorkload {
            classes: vec![SyntheticJobSpec {
                name: "c".into(),
                num_maps: 1,
                num_reduces: 4,
                weight: 1.0,
            }],
            map_ms: Dist::Constant { value: 100.0 },
            reduce_ms: Dist::Constant { value: 1000.0 },
            shuffle_fraction: 0.6,
            mean_interarrival_ms: 0.0,
        };
        let trace = w.generate(1, 0);
        let t = &trace.jobs[0].template;
        assert_eq!(t.typical_shuffle_durations, vec![600; 4]);
        assert_eq!(t.first_shuffle_durations, vec![300; 4]);
        assert_eq!(t.reduce_durations, vec![400; 4]);
    }

    #[test]
    fn zero_interarrival_means_batch() {
        let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(10, 2);
        assert!(trace.jobs.iter().all(|j| j.arrival == SimTime::ZERO));
    }

    #[test]
    fn multi_tenant_tags_every_job_with_a_tenant_prefix() {
        let w = MultiTenantWorkload::three_tenant(1000.0);
        let trace = w.generate(200, 4);
        assert_eq!(trace.len(), 200);
        trace.validate().unwrap();
        let mut counts = [0usize; 3];
        for job in &trace.jobs {
            let i = w
                .tenants
                .iter()
                .position(|(t, _)| job.template.name.starts_with(&format!("{t}-fb-")))
                .unwrap_or_else(|| panic!("untagged job {}", job.template.name));
            counts[i] += 1;
        }
        // adhoc holds half the weight; a 200-job sample lands near it
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!((0.35..0.65).contains(&(counts[2] as f64 / 200.0)), "{counts:?}");
    }

    #[test]
    fn multi_tenant_deterministic_and_shape_preserving() {
        let w = MultiTenantWorkload::three_tenant(500.0);
        assert_eq!(w.generate(60, 9), w.generate(60, 9));
        // the tenant stream is separate: job shapes and arrivals match the
        // underlying Facebook workload exactly
        let tagged = w.generate(60, 9);
        let plain = FacebookWorkload { mean_interarrival_ms: 500.0 }.generate(60, 9);
        for (t, p) in tagged.jobs.iter().zip(&plain.jobs) {
            assert_eq!(t.arrival, p.arrival);
            assert_eq!(t.template.map_durations, p.template.map_durations);
            assert!(t.template.name.ends_with(&*p.template.name));
        }
    }

    #[test]
    fn pooled_generation_bounds_distinct_templates() {
        let w = FacebookWorkload { mean_interarrival_ms: 1000.0 };
        let trace = w.generate_pooled(500, 4, 11);
        assert_eq!(trace.len(), 500);
        trace.validate().unwrap();
        let distinct: std::collections::BTreeSet<&str> =
            trace.jobs.iter().map(|j| &*j.template.name).collect();
        assert!(
            distinct.len() <= FacebookWorkload::JOB_MIX.len() * 4,
            "{} distinct templates",
            distinct.len()
        );
        assert!(distinct.len() > FacebookWorkload::JOB_MIX.len(), "variants are used");
    }

    #[test]
    fn pooled_generation_deterministic_per_seed() {
        let w = FacebookWorkload { mean_interarrival_ms: 700.0 };
        assert_eq!(w.generate_pooled(80, 3, 5), w.generate_pooled(80, 3, 5));
        assert_ne!(w.generate_pooled(80, 3, 5), w.generate_pooled(80, 3, 6));
    }

    #[test]
    fn streamed_bin_decodes_to_the_materialized_pooled_trace() {
        let w = FacebookWorkload { mean_interarrival_ms: 400.0 };
        let cursor = w.write_bin(250, 4, 13, std::io::Cursor::new(Vec::new())).unwrap();
        let decoded = crate::binfmt::decode_trace(&cursor.into_inner()).unwrap();
        assert_eq!(decoded, w.generate_pooled(250, 4, 13));
    }

    #[test]
    fn pool_is_independent_of_job_count() {
        let w = FacebookWorkload { mean_interarrival_ms: 300.0 }.workload();
        assert_eq!(w.template_pool(3, 21), w.template_pool(3, 21));
        let short = w.generate_pooled(20, 3, 21);
        let long = w.generate_pooled(60, 3, 21);
        assert_eq!(&long.jobs[..20], &short.jobs[..]);
    }

    #[test]
    fn facebook_cdf_matches_reference_lognormal() {
        // the generated reduce durations should track LN(12.375, 1.6262)
        let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(600, 7);
        let all: Vec<f64> = trace
            .jobs
            .iter()
            .flat_map(|j| {
                j.template
                    .typical_shuffle_durations
                    .iter()
                    .zip(&j.template.reduce_durations)
                    .map(|(&s, &r)| (s + r) as f64)
            })
            .collect();
        if all.len() < 500 {
            return; // unlucky mix seed; other tests cover the mix
        }
        let cdf = EmpiricalCdf::new(&all);
        let median = cdf.quantile(0.5).unwrap();
        let expected = 12.375f64.exp();
        assert!((median / expected).ln().abs() < 0.35, "median {median} vs expected {expected}");
    }
}
