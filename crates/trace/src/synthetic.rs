//! Synthetic TraceGen (§III-A, §V-C).
//!
//! Generates replayable workloads from statistical descriptions instead of
//! recorded logs — *"this can help evaluate hypothetical workloads and
//! consider what-if scenarios"*. Two layers:
//!
//! * [`SyntheticWorkload`] — fully parametric: distributions for map /
//!   shuffle / reduce durations, job shapes, and an exponential arrival
//!   process;
//! * [`FacebookWorkload`] — the paper's §V-C instantiation: per-task
//!   durations follow the LogNormals fitted to the Facebook production
//!   workload of Zaharia et al. (map `LN(9.9511, 1.6764)` ms, reduce
//!   `LN(12.375, 1.6262)` ms), with job sizes drawn from a binned
//!   approximation of their Table 3 job-size mix.

use simmr_stats::{Dist, Distribution, SeededRng};
use simmr_types::{JobSpec, JobTemplate, SimTime, TraceMeta, WorkloadTrace};

/// Shape of one synthetic job class.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticJobSpec {
    /// Class label (becomes part of the job name).
    pub name: String,
    /// Number of map tasks.
    pub num_maps: usize,
    /// Number of reduce tasks.
    pub num_reduces: usize,
    /// Relative frequency of this class in the mix.
    pub weight: f64,
}

/// A parametric workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorkload {
    /// Job classes and their mix weights.
    pub classes: Vec<SyntheticJobSpec>,
    /// Per-map-task duration distribution (milliseconds).
    pub map_ms: Dist,
    /// Per-reduce-task *total* duration distribution (milliseconds); split
    /// into shuffle and reduce phases by `shuffle_fraction`.
    pub reduce_ms: Dist,
    /// Fraction of a reduce task's duration spent in the shuffle phase.
    pub shuffle_fraction: f64,
    /// Mean of the exponential job inter-arrival time (milliseconds).
    pub mean_interarrival_ms: f64,
}

impl SyntheticWorkload {
    /// Generates `num_jobs` jobs.
    pub fn generate(&self, num_jobs: usize, seed: u64) -> WorkloadTrace {
        assert!(!self.classes.is_empty(), "workload needs at least one job class");
        let mut rng = SeededRng::new(seed);
        let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();
        let arrival_dist = Dist::Exponential { mean: self.mean_interarrival_ms.max(0.0) };
        let frac = self.shuffle_fraction.clamp(0.0, 1.0);

        let mut trace = WorkloadTrace {
            meta: TraceMeta {
                description: format!(
                    "synthetic workload ({} classes, mean inter-arrival {} ms)",
                    self.classes.len(),
                    self.mean_interarrival_ms
                ),
                source: "synthetic".into(),
                seed: Some(seed),
            },
            jobs: Vec::with_capacity(num_jobs),
        };
        let mut clock = SimTime::ZERO;
        for i in 0..num_jobs {
            let class = &self.classes[rng.weighted_index(&weights)];
            let map_durations: Vec<u64> = (0..class.num_maps.max(1))
                .map(|_| self.map_ms.sample(&mut rng).max(1.0) as u64)
                .collect();
            let mut typical = Vec::with_capacity(class.num_reduces);
            let mut first = Vec::with_capacity(class.num_reduces);
            let mut reduce = Vec::with_capacity(class.num_reduces);
            for _ in 0..class.num_reduces {
                let total = self.reduce_ms.sample(&mut rng).max(1.0);
                let shuffle = (total * frac).round() as u64;
                typical.push(shuffle.max(1));
                // first-wave non-overlapping shuffle: roughly half of the
                // typical shuffle remains after the map stage ends
                first.push((shuffle / 2).max(1));
                reduce.push((total as u64).saturating_sub(shuffle).max(1));
            }
            let template = JobTemplate::new(
                format!("{}-{:04}", class.name, i),
                map_durations,
                first,
                typical,
                reduce,
            )
            .expect("generated template is structurally valid");
            trace.push(JobSpec::new(template, clock));
            if self.mean_interarrival_ms > 0.0 {
                clock += arrival_dist.sample(&mut rng).max(0.0) as u64;
            }
        }
        trace
    }
}

/// The §V-C Facebook-like workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacebookWorkload {
    /// Mean exponential inter-arrival time in milliseconds.
    pub mean_interarrival_ms: f64,
}

impl FacebookWorkload {
    /// Job-size mix approximating Table 3 of Zaharia et al. (EuroSys'10):
    /// `(maps, reduces, % of jobs)`. Small jobs dominate; the tail is huge.
    pub const JOB_MIX: [(usize, usize, f64); 9] = [
        (1, 0, 38.0),
        (2, 0, 16.0),
        (10, 3, 14.0),
        (50, 10, 9.0),
        (100, 20, 6.0),
        (200, 50, 6.0),
        (400, 80, 5.0),
        (800, 120, 4.0),
        (2400, 180, 2.0),
    ];

    /// Builds the underlying parametric description.
    pub fn workload(&self) -> SyntheticWorkload {
        SyntheticWorkload {
            classes: Self::JOB_MIX
                .iter()
                .map(|&(m, r, w)| SyntheticJobSpec {
                    name: format!("fb-{m}x{r}"),
                    num_maps: m,
                    num_reduces: r,
                    weight: w,
                })
                .collect(),
            map_ms: Dist::FACEBOOK_MAP_MS,
            reduce_ms: Dist::FACEBOOK_REDUCE_MS,
            // reduce tasks spend most of their time shuffling in the
            // Facebook mix (large fan-in, small reduce functions)
            shuffle_fraction: 0.6,
            mean_interarrival_ms: self.mean_interarrival_ms,
        }
    }

    /// Generates `num_jobs` Facebook-like jobs.
    pub fn generate(&self, num_jobs: usize, seed: u64) -> WorkloadTrace {
        let mut trace = self.workload().generate(num_jobs, seed);
        trace.meta.description = format!(
            "Facebook-like LogNormal workload (mean inter-arrival {} ms)",
            self.mean_interarrival_ms
        );
        trace.meta.source = "synthetic-facebook".into();
        trace
    }
}

/// A multi-tenant workload: Facebook-like jobs tagged with tenant prefixes.
///
/// Each generated job is assigned to a tenant by a seeded weighted choice
/// drawn from a dedicated RNG stream (so adding or re-weighting tenants
/// never perturbs the job shapes or arrivals), and the tenant's name is
/// prepended to the job name. The prefixes line up with the leaf routing
/// of the hierarchical pool-tree policy (`simmr-sched`'s `hier:` spec):
/// a tenant named `prod-etl` produces jobs like `prod-etl-fb-10x3-0042`,
/// which route to the `etl` leaf of `hier:prod{etl,serving},adhoc`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantWorkload {
    /// `(tenant prefix, relative share of jobs)` — weights need not sum
    /// to anything in particular.
    pub tenants: Vec<(String, f64)>,
    /// Mean exponential inter-arrival time in milliseconds.
    pub mean_interarrival_ms: f64,
}

/// Dedicated RNG stream for the tenant assignment.
const TENANT_STREAM: u64 = 1;

impl MultiTenantWorkload {
    /// The three-tenant mix used by the `multi_tenant` example and the
    /// hierarchy acceptance tests: two production tenants plus a noisy
    /// ad-hoc tenant submitting half of all jobs.
    pub fn three_tenant(mean_interarrival_ms: f64) -> Self {
        MultiTenantWorkload {
            tenants: vec![
                ("prod-etl".into(), 3.0),
                ("prod-serving".into(), 2.0),
                ("adhoc".into(), 5.0),
            ],
            mean_interarrival_ms,
        }
    }

    /// Generates `num_jobs` tenant-tagged Facebook-like jobs.
    pub fn generate(&self, num_jobs: usize, seed: u64) -> WorkloadTrace {
        assert!(!self.tenants.is_empty(), "multi-tenant workload needs at least one tenant");
        let mut trace = FacebookWorkload { mean_interarrival_ms: self.mean_interarrival_ms }
            .generate(num_jobs, seed);
        let mut rng = SeededRng::new(seed).fork(TENANT_STREAM);
        let weights: Vec<f64> = self.tenants.iter().map(|&(_, w)| w).collect();
        for job in trace.jobs.iter_mut() {
            let (tenant, _) = &self.tenants[rng.weighted_index(&weights)];
            job.template.name = format!("{tenant}-{}", job.template.name).into();
        }
        trace.meta.description = format!(
            "{} tenants ({}) over a {}",
            self.tenants.len(),
            self.tenants.iter().map(|(t, _)| t.as_str()).collect::<Vec<_>>().join(", "),
            trace.meta.description
        );
        trace.meta.source = "synthetic-multi-tenant".into();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_stats::{fit_lognormal, EmpiricalCdf};

    #[test]
    fn generates_requested_count_and_validates() {
        let trace = FacebookWorkload { mean_interarrival_ms: 1000.0 }.generate(100, 1);
        assert_eq!(trace.len(), 100);
        trace.validate().unwrap();
        assert_eq!(trace.meta.seed, Some(1));
    }

    #[test]
    fn deterministic_per_seed() {
        let w = FacebookWorkload { mean_interarrival_ms: 500.0 };
        assert_eq!(w.generate(50, 9), w.generate(50, 9));
        assert_ne!(w.generate(50, 9), w.generate(50, 10));
    }

    #[test]
    fn arrivals_monotone_with_expected_spacing() {
        let trace = FacebookWorkload { mean_interarrival_ms: 2000.0 }.generate(400, 3);
        let mut arrivals: Vec<SimTime> = trace.jobs.iter().map(|j| j.arrival).collect();
        let sorted = {
            let mut s = arrivals.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(arrivals, sorted, "generator emits jobs in arrival order");
        let span = arrivals.pop().unwrap().as_millis() as f64;
        let mean_gap = span / 399.0;
        assert!((mean_gap / 2000.0 - 1.0).abs() < 0.25, "mean gap {mean_gap}");
    }

    #[test]
    fn map_durations_follow_the_fitted_lognormal() {
        let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(300, 5);
        let all_maps: Vec<f64> = trace
            .jobs
            .iter()
            .flat_map(|j| j.template.map_durations.iter().map(|&d| d as f64))
            .collect();
        assert!(all_maps.len() > 1000);
        match fit_lognormal(&all_maps).unwrap() {
            Dist::LogNormal { mu, sigma } => {
                assert!((mu - 9.9511).abs() < 0.15, "mu={mu}");
                assert!((sigma - 1.6764).abs() < 0.15, "sigma={sigma}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn small_jobs_dominate_the_mix() {
        let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(1000, 6);
        let tiny = trace.jobs.iter().filter(|j| j.template.num_maps <= 2).count();
        let frac = tiny as f64 / 1000.0;
        assert!((0.46..0.62).contains(&frac), "tiny-job fraction {frac}");
    }

    #[test]
    fn shuffle_reduce_split() {
        let w = SyntheticWorkload {
            classes: vec![SyntheticJobSpec {
                name: "c".into(),
                num_maps: 1,
                num_reduces: 4,
                weight: 1.0,
            }],
            map_ms: Dist::Constant { value: 100.0 },
            reduce_ms: Dist::Constant { value: 1000.0 },
            shuffle_fraction: 0.6,
            mean_interarrival_ms: 0.0,
        };
        let trace = w.generate(1, 0);
        let t = &trace.jobs[0].template;
        assert_eq!(t.typical_shuffle_durations, vec![600; 4]);
        assert_eq!(t.first_shuffle_durations, vec![300; 4]);
        assert_eq!(t.reduce_durations, vec![400; 4]);
    }

    #[test]
    fn zero_interarrival_means_batch() {
        let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(10, 2);
        assert!(trace.jobs.iter().all(|j| j.arrival == SimTime::ZERO));
    }

    #[test]
    fn multi_tenant_tags_every_job_with_a_tenant_prefix() {
        let w = MultiTenantWorkload::three_tenant(1000.0);
        let trace = w.generate(200, 4);
        assert_eq!(trace.len(), 200);
        trace.validate().unwrap();
        let mut counts = [0usize; 3];
        for job in &trace.jobs {
            let i = w
                .tenants
                .iter()
                .position(|(t, _)| job.template.name.starts_with(&format!("{t}-fb-")))
                .unwrap_or_else(|| panic!("untagged job {}", job.template.name));
            counts[i] += 1;
        }
        // adhoc holds half the weight; a 200-job sample lands near it
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!((0.35..0.65).contains(&(counts[2] as f64 / 200.0)), "{counts:?}");
    }

    #[test]
    fn multi_tenant_deterministic_and_shape_preserving() {
        let w = MultiTenantWorkload::three_tenant(500.0);
        assert_eq!(w.generate(60, 9), w.generate(60, 9));
        // the tenant stream is separate: job shapes and arrivals match the
        // underlying Facebook workload exactly
        let tagged = w.generate(60, 9);
        let plain = FacebookWorkload { mean_interarrival_ms: 500.0 }.generate(60, 9);
        for (t, p) in tagged.jobs.iter().zip(&plain.jobs) {
            assert_eq!(t.arrival, p.arrival);
            assert_eq!(t.template.map_durations, p.template.map_durations);
            assert!(t.template.name.ends_with(&*p.template.name));
        }
    }

    #[test]
    fn facebook_cdf_matches_reference_lognormal() {
        // the generated reduce durations should track LN(12.375, 1.6262)
        let trace = FacebookWorkload { mean_interarrival_ms: 0.0 }.generate(600, 7);
        let all: Vec<f64> = trace
            .jobs
            .iter()
            .flat_map(|j| {
                j.template
                    .typical_shuffle_durations
                    .iter()
                    .zip(&j.template.reduce_durations)
                    .map(|(&s, &r)| (s + r) as f64)
            })
            .collect();
        if all.len() < 500 {
            return; // unlucky mix seed; other tests cover the mix
        }
        let cdf = EmpiricalCdf::new(&all);
        let median = cdf.quantile(0.5).unwrap();
        let expected = 12.375f64.exp();
        assert!((median / expected).ln().abs() < 0.35, "median {median} vs expected {expected}");
    }
}
