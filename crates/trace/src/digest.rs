//! Stable trace content digests.
//!
//! The serve-layer memo cache keys on *(trace digest, policy spec, seed,
//! …)*, so it needs one digest per trace that is identical however the
//! trace is stored (pretty JSON, compact JSON, SIMMRBIN) or how its job
//! list happens to be ordered on disk. The SIMMRBIN encoder already
//! defines exactly that canonical form: records sorted by `(arrival,
//! index)`, templates content-interned in first-appearance order, meta
//! length-prefixed (see [`crate::binfmt`]). A trace digest is therefore
//! the **CRC-64 of the canonical SIMMRBIN encoding** — extending the
//! format's CRC-32 body-checksum machinery to a width where accidental
//! collisions are negligible for cache keying.
//!
//! CRC-64 uses the ECMA-182 polynomial in reflected form (the
//! `CRC-64/XZ` parameterization: init and xor-out all-ones), table-driven
//! like the CRC-32 in [`crate::binfmt`].
//!
//! ```
//! use simmr_trace::TraceDigestExt;
//! use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};
//!
//! let mut t = WorkloadTrace::new("demo", "doc");
//! t.push(JobSpec::new(
//!     JobTemplate::new("wc", vec![100], vec![], vec![], vec![]).unwrap(),
//!     SimTime::ZERO,
//! ));
//! let d = t.digest().unwrap();
//! assert_eq!(d.to_string().len(), 16); // 16 hex digits
//! assert_eq!(d, t.digest().unwrap());  // stable
//! ```

use crate::binfmt::{encode_trace, BinError};
use simmr_types::WorkloadTrace;
use std::fmt;
use std::str::FromStr;

// CRC-64/XZ: ECMA-182 polynomial 0x42F0E1EBA9EA3693, reflected.
const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u64;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xC96C_5795_D787_0F42 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming CRC-64 (the 64-bit sibling of the SIMMRBIN CRC-32).
#[derive(Debug, Clone)]
pub struct Crc64(u64);

impl Crc64 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Crc64(u64::MAX)
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC64_TABLE[((c ^ b as u64) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u64 {
        self.0 ^ u64::MAX
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Crc64::new()
    }
}

/// A stable 64-bit content digest of a workload trace.
///
/// Displayed (and serialized) as 16 lowercase hex digits. Two traces
/// have equal digests iff their canonical SIMMRBIN encodings are
/// byte-identical — same meta, same job set in arrival order, same
/// templates — regardless of the on-disk format they came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceDigest(pub u64);

impl fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for TraceDigest {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 16 {
            return Err(format!("trace digest must be 16 hex digits, got {:?}", s));
        }
        u64::from_str_radix(s, 16)
            .map(TraceDigest)
            .map_err(|_| format!("trace digest is not hex: {s:?}"))
    }
}

impl serde::Serialize for TraceDigest {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for TraceDigest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => s.parse().map_err(serde::DeError::new),
            other => Err(serde::DeError::new(format!("expected digest string, got {other:?}"))),
        }
    }
}

/// Computes the content digest of a trace: CRC-64 over its canonical
/// SIMMRBIN encoding. Fails only where the encoder does (a trace too
/// large for the format's length fields).
pub fn digest_trace(trace: &WorkloadTrace) -> Result<TraceDigest, BinError> {
    let bytes = encode_trace(trace)?;
    let mut crc = Crc64::new();
    crc.update(&bytes);
    Ok(TraceDigest(crc.finish()))
}

/// Adds [`WorkloadTrace::digest`]-style sugar: `trace.digest()`.
pub trait TraceDigestExt {
    /// The trace's stable content digest (see [`digest_trace`]).
    fn digest(&self) -> Result<TraceDigest, BinError>;
}

impl TraceDigestExt for WorkloadTrace {
    fn digest(&self) -> Result<TraceDigest, BinError> {
        digest_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binfmt::decode_trace;
    use simmr_types::{JobSpec, JobTemplate, SimTime};

    fn job(name: &str, arrival: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new(name, vec![100, 200], vec![50], vec![60], vec![30]).unwrap(),
            SimTime::from_millis(arrival),
        )
    }

    fn sample() -> WorkloadTrace {
        let mut t = WorkloadTrace::new("digest test", "unit");
        t.push(job("a", 0));
        t.push(job("b", 500));
        t
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ("123456789") = 0x995DC9BBDF1939FA
        let mut c = Crc64::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let t = sample();
        assert_eq!(t.digest().unwrap(), t.digest().unwrap());
        let mut other = sample();
        other.push(job("c", 900));
        assert_ne!(t.digest().unwrap(), other.digest().unwrap());
    }

    #[test]
    fn digest_survives_format_round_trips() {
        let t = sample();
        let d = t.digest().unwrap();
        // JSON round trip
        let json = serde_json::to_string(&t).unwrap();
        let back: WorkloadTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.digest().unwrap(), d);
        // binary round trip
        let bin = encode_trace(&t).unwrap();
        assert_eq!(decode_trace(&bin).unwrap().digest().unwrap(), d);
    }

    #[test]
    fn digest_ignores_on_disk_job_order() {
        // the canonical encoding sorts records by arrival, so a permuted
        // job vector digests identically
        let mut shuffled = WorkloadTrace::new("digest test", "unit");
        shuffled.push(job("b", 500));
        shuffled.push(job("a", 0));
        assert_eq!(shuffled.digest().unwrap(), sample().digest().unwrap());
    }

    #[test]
    fn display_parse_round_trip() {
        let d = sample().digest().unwrap();
        assert_eq!(d.to_string().parse::<TraceDigest>().unwrap(), d);
        assert!("zz".parse::<TraceDigest>().is_err());
        assert!("00112233445566zz".parse::<TraceDigest>().is_err());
    }
}
