//! # simmr-trace
//!
//! The SimMR **Trace Generator** (§III-A of the paper) and friends:
//!
//! * [`mrprofiler`] — parses JobTracker-style history logs into replayable
//!   [`simmr_types::JobTemplate`]s, including the first-shuffle /
//!   typical-shuffle split;
//! * [`rumen`] — a Rumen-flavoured extractor producing the richer per-task
//!   records the Mumak baseline replays;
//! * [`synthetic`] — Synthetic TraceGen: parametric workloads, including
//!   the Facebook-like LogNormal workload of §V-C;
//! * [`db`] — the persistent Trace Database (JSON files on disk);
//! * [`scaling`] — the paper's *future work* trace-scaling technique:
//!   derive the trace of a larger-dataset run from a small-dataset run;
//! * [`mod@characterize`] — workload characterization (§V-C methodology):
//!   job-size mix, per-phase statistics, best-fit distributions.

pub mod characterize;
pub mod db;
pub mod mrprofiler;
pub mod rumen;
pub mod scaling;
pub mod synthetic;

pub use characterize::{characterize, WorkloadProfile};
pub use db::TraceDatabase;
pub use mrprofiler::{profile_history, trace_from_history, ProfiledJob};
pub use rumen::{RumenJob, RumenTask, RumenTrace};
pub use scaling::scale_template;
pub use synthetic::{FacebookWorkload, MultiTenantWorkload, SyntheticJobSpec, SyntheticWorkload};
