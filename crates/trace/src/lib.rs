//! # simmr-trace
//!
//! The SimMR **Trace Generator** (§III-A of the paper) and friends:
//!
//! * [`mrprofiler`] — parses JobTracker-style history logs into replayable
//!   [`simmr_types::JobTemplate`]s, including the first-shuffle /
//!   typical-shuffle split;
//! * [`rumen`] — a Rumen-flavoured extractor producing the richer per-task
//!   records the Mumak baseline replays;
//! * [`synthetic`] — Synthetic TraceGen: parametric workloads, including
//!   the Facebook-like LogNormal workload of §V-C;
//! * [`binfmt`] — the compact binary trace format (`SIMMRBIN`): interned
//!   template tables, fixed-stride per-job records, a CRC-32 checksum, a
//!   zero-copy reader and a streaming [`simmr_core::JobSource`];
//! * [`db`] — the persistent Trace Database (JSON and binary files on
//!   disk, with atomic writes and corruption surfaced in listings);
//! * [`scaling`] — the paper's *future work* trace-scaling technique:
//!   derive the trace of a larger-dataset run from a small-dataset run;
//! * [`mod@characterize`] — workload characterization (§V-C methodology):
//!   job-size mix, per-phase statistics, best-fit distributions.

pub mod binfmt;
pub mod characterize;
pub mod db;
pub mod digest;
pub mod mrprofiler;
pub mod rumen;
pub mod scaling;
pub mod synthetic;

pub use binfmt::{
    decode_trace, encode_trace, is_binary_trace, BinError, BinTraceReader, BinTraceSource,
    BinTraceWriter,
};
pub use characterize::{characterize, WorkloadProfile};
pub use db::{DbError, TraceDatabase, TraceFormat, TraceStatus};
pub use digest::{digest_trace, Crc64, TraceDigest, TraceDigestExt};
pub use mrprofiler::{profile_history, trace_from_history, ProfiledJob};
pub use rumen::{RumenJob, RumenTask, RumenTrace};
pub use scaling::scale_template;
pub use synthetic::{FacebookWorkload, MultiTenantWorkload, SyntheticJobSpec, SyntheticWorkload};
