//! MRProfiler: job-history logs → replayable job templates.
//!
//! The profiler extracts, per job (§III-A):
//!
//! * `(N_M, N_R)` — task counts;
//! * `MapDurations` — per-map `end − start`;
//! * `FirstShuffleDurations` — for reduce tasks whose shuffle *started
//!   before the job's map stage ended* (first wave), the **non-overlapping**
//!   portion: `shuffle_end − maps_end` (clamped at 0);
//! * `TypicalShuffleDurations` — full `shuffle_end − start` for reduce
//!   tasks started after the map stage;
//! * `ReduceDurations` — the reduce phase `end − sort_end`.
//!
//! The shuffle and sort phases are interleaved in Hadoop, so like the paper
//! we treat `[start, sort_end]` as one combined "shuffle" phase; the log's
//! `sort_end` is its boundary.

use simmr_types::{
    parse_history, HistoryLine, HistoryParseError, JobSpec, JobTemplate, SimTime,
    TaskHistoryRecord, TaskKind, TraceMeta, WorkloadTrace,
};
use std::collections::BTreeMap;

/// One job extracted from a history log.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledJob {
    /// Job sequence number in the log.
    pub id: u32,
    /// Submission time recorded in the log.
    pub submit: SimTime,
    /// Completion time recorded in the log.
    pub finish: SimTime,
    /// The replayable template.
    pub template: JobTemplate,
}

impl ProfiledJob {
    /// The job's recorded duration.
    pub fn duration_ms(&self) -> u64 {
        self.finish.since(self.submit)
    }
}

/// Errors from profiling a history log.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The log text failed to parse.
    Parse(HistoryParseError),
    /// A task record references a job with no `JOB` line.
    OrphanTask {
        /// The job id the task referenced.
        job: u32,
    },
    /// A job's extracted arrays were structurally invalid.
    BadTemplate {
        /// The job id.
        job: u32,
        /// Underlying template error.
        error: simmr_types::TemplateError,
    },
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Parse(e) => write!(f, "{e}"),
            ProfileError::OrphanTask { job } => {
                write!(f, "task record references unknown job {job}")
            }
            ProfileError::BadTemplate { job, error } => {
                write!(f, "job {job}: invalid extracted template: {error}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// Profiles a raw history log into per-job templates, sorted by job id.
pub fn profile_history(log_text: &str) -> Result<Vec<ProfiledJob>, ProfileError> {
    let lines = parse_history(log_text).map_err(ProfileError::Parse)?;
    let mut jobs: BTreeMap<u32, (simmr_types::JobHistoryRecord, Vec<TaskHistoryRecord>)> =
        BTreeMap::new();
    for line in &lines {
        if let HistoryLine::Job(j) = line {
            jobs.insert(j.id, (j.clone(), Vec::new()));
        }
    }
    for line in &lines {
        if let HistoryLine::Task(t) = line {
            jobs.get_mut(&t.job).ok_or(ProfileError::OrphanTask { job: t.job })?.1.push(*t);
        }
    }

    let mut out = Vec::with_capacity(jobs.len());
    for (id, (job, tasks)) in jobs {
        let maps: Vec<&TaskHistoryRecord> =
            tasks.iter().filter(|t| t.kind == TaskKind::Map).collect();
        let reduces: Vec<&TaskHistoryRecord> =
            tasks.iter().filter(|t| t.kind == TaskKind::Reduce).collect();

        let maps_end = maps.iter().map(|t| t.end).max().unwrap_or(SimTime::ZERO);

        let mut map_durations: Vec<u64> = maps.iter().map(|t| t.end.since(t.start)).collect();
        // keep replay order deterministic: sort map tasks by start time
        let mut order: Vec<usize> = (0..maps.len()).collect();
        order.sort_by_key(|&i| (maps[i].start, maps[i].idx));
        map_durations = order.iter().map(|&i| map_durations[i]).collect();

        let mut first_shuffle = Vec::new();
        let mut typical_shuffle = Vec::new();
        let mut reduce_durations = Vec::new();
        let mut rsorted: Vec<&&TaskHistoryRecord> = reduces.iter().collect();
        rsorted.sort_by_key(|t| (t.start, t.idx));
        for t in rsorted {
            let shuffle_end = t.sort_end.or(t.shuffle_end).unwrap_or(t.start);
            reduce_durations.push(t.end.since(shuffle_end));
            if t.start < maps_end {
                // first wave: record only the non-overlapping portion
                first_shuffle.push(shuffle_end.since(maps_end));
            } else {
                typical_shuffle.push(shuffle_end.since(t.start));
            }
        }
        // a job replayed with fewer slots may need more waves than were
        // observed; guarantee both shuffle sample sets are non-empty
        if !reduce_durations.is_empty() {
            if first_shuffle.is_empty() {
                first_shuffle = typical_shuffle.clone();
            }
            if typical_shuffle.is_empty() {
                typical_shuffle = first_shuffle.clone();
            }
        }

        let template = JobTemplate::new(
            job.name.clone(),
            map_durations,
            first_shuffle,
            typical_shuffle,
            reduce_durations,
        )
        .map_err(|error| ProfileError::BadTemplate { job: id, error })?;
        out.push(ProfiledJob { id, submit: job.submit, finish: job.finish, template });
    }
    Ok(out)
}

/// Profiles a log and assembles a replayable [`WorkloadTrace`] preserving
/// the recorded submit times.
pub fn trace_from_history(
    log_text: &str,
    description: &str,
) -> Result<WorkloadTrace, ProfileError> {
    let jobs = profile_history(log_text)?;
    Ok(WorkloadTrace {
        meta: TraceMeta {
            description: description.into(),
            source: "mrprofiler".into(),
            seed: None,
        },
        jobs: jobs.into_iter().map(|p| JobSpec::new(p.template, p.submit)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-written log: 2 maps (end at 100, 200), 2 reduces — one first
    /// wave (starts at 120 < 200), one typical (starts at 260).
    const LOG: &str = "\
JOB id=0 name=unit-job submit=0 launch=10 finish=400 maps=2 reduces=2
TASK job=0 kind=map idx=0 start=10 end=100 node=0
TASK job=0 kind=map idx=1 start=20 end=200 node=1
TASK job=0 kind=reduce idx=0 start=120 shuffle_end=230 sort_end=240 end=300 node=2
TASK job=0 kind=reduce idx=1 start=260 shuffle_end=320 sort_end=330 end=400 node=3
";

    #[test]
    fn extracts_phase_arrays() {
        let jobs = profile_history(LOG).unwrap();
        assert_eq!(jobs.len(), 1);
        let t = &jobs[0].template;
        assert_eq!(t.num_maps, 2);
        assert_eq!(t.num_reduces, 2);
        assert_eq!(t.map_durations, vec![90, 180]);
        // first wave reduce: sort_end 240 - maps_end 200 = 40 (non-overlap)
        assert_eq!(t.first_shuffle_durations, vec![40]);
        // typical: sort_end 330 - start 260 = 70
        assert_eq!(t.typical_shuffle_durations, vec![70]);
        // reduce phases: 300-240, 400-330
        assert_eq!(t.reduce_durations, vec![60, 70]);
        assert_eq!(jobs[0].duration_ms(), 400);
    }

    #[test]
    fn first_shuffle_clamped_nonnegative() {
        // reduce finishes its shuffle before the last map ends
        let log = "\
JOB id=0 name=j submit=0 launch=0 finish=500 maps=2 reduces=1
TASK job=0 kind=map idx=0 start=0 end=100 node=0
TASK job=0 kind=map idx=1 start=0 end=400 node=1
TASK job=0 kind=reduce idx=0 start=110 shuffle_end=390 sort_end=395 end=500 node=2
";
        let jobs = profile_history(log).unwrap();
        assert_eq!(jobs[0].template.first_shuffle_durations, vec![0]);
    }

    #[test]
    fn all_first_wave_backfills_typical() {
        let log = "\
JOB id=0 name=j submit=0 launch=0 finish=300 maps=1 reduces=1
TASK job=0 kind=map idx=0 start=0 end=200 node=0
TASK job=0 kind=reduce idx=0 start=50 shuffle_end=250 sort_end=250 end=300 node=1
";
        let t = &profile_history(log).unwrap()[0].template;
        assert_eq!(t.first_shuffle_durations, vec![50]);
        assert_eq!(t.typical_shuffle_durations, vec![50]); // backfilled
    }

    #[test]
    fn map_only_job() {
        let log = "\
JOB id=0 name=j submit=5 launch=5 finish=100 maps=1 reduces=0
TASK job=0 kind=map idx=0 start=5 end=100 node=0
";
        let jobs = profile_history(log).unwrap();
        assert_eq!(jobs[0].template.num_reduces, 0);
        assert_eq!(jobs[0].submit, SimTime::from_millis(5));
    }

    #[test]
    fn multi_job_logs_sorted_by_id() {
        let log = "\
JOB id=1 name=b submit=100 launch=100 finish=300 maps=1 reduces=0
JOB id=0 name=a submit=0 launch=0 finish=200 maps=1 reduces=0
TASK job=1 kind=map idx=0 start=100 end=300 node=0
TASK job=0 kind=map idx=0 start=0 end=200 node=0
";
        let jobs = profile_history(log).unwrap();
        assert_eq!(&*jobs[0].template.name, "a");
        assert_eq!(&*jobs[1].template.name, "b");
    }

    #[test]
    fn orphan_task_rejected() {
        let log = "TASK job=9 kind=map idx=0 start=0 end=1 node=0\n";
        assert!(matches!(profile_history(log), Err(ProfileError::OrphanTask { job: 9 })));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(matches!(profile_history("BOGUS\n"), Err(ProfileError::Parse(_))));
    }

    #[test]
    fn trace_assembly_preserves_arrivals() {
        let trace = trace_from_history(LOG, "test trace").unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.jobs[0].arrival, SimTime::ZERO);
        assert_eq!(trace.meta.source, "mrprofiler");
        trace.validate().unwrap();
    }

    #[test]
    fn round_trip_with_cluster_logs() {
        // end-to-end within the crate family: testbed log -> profile
        use simmr_types::{write_history, HistoryLine, JobHistoryRecord, TaskHistoryRecord};
        let lines = vec![
            HistoryLine::Job(JobHistoryRecord {
                id: 0,
                name: "rt".into(),
                submit: SimTime::ZERO,
                launch: SimTime::from_millis(3),
                finish: SimTime::from_millis(50),
                maps: 1,
                reduces: 1,
            }),
            HistoryLine::Task(TaskHistoryRecord {
                job: 0,
                kind: TaskKind::Map,
                idx: 0,
                start: SimTime::from_millis(3),
                shuffle_end: None,
                sort_end: None,
                end: SimTime::from_millis(20),
                node: 0,
            }),
            HistoryLine::Task(TaskHistoryRecord {
                job: 0,
                kind: TaskKind::Reduce,
                idx: 0,
                start: SimTime::from_millis(25),
                shuffle_end: Some(SimTime::from_millis(40)),
                sort_end: Some(SimTime::from_millis(42)),
                end: SimTime::from_millis(50),
                node: 0,
            }),
        ];
        let jobs = profile_history(&write_history(&lines)).unwrap();
        let t = &jobs[0].template;
        assert_eq!(t.map_durations, vec![17]);
        assert_eq!(t.typical_shuffle_durations, vec![17]); // 42-25
        assert_eq!(t.reduce_durations, vec![8]);
    }
}
