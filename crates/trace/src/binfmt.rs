//! Compact binary trace format (`.trace.bin`).
//!
//! The JSON trace files are convenient to inspect but hopeless at the
//! million-job scale the ROADMAP targets: a Facebook-mix job template is
//! several KB of JSON, and loading requires materializing the whole job
//! vector. This module defines **SIMMRBIN v1**, a length-prefixed,
//! versioned, checksummed layout in which job templates are written once
//! into an interning table and every job is a fixed 21-byte record —
//! pennies per job, and streamable.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "SIMMRBIN"
//!      8     2  version (currently 1)
//!     10     2  reserved (zero)
//!     12     8  job_count
//!     20     8  first_arrival in ms (u64::MAX when job_count == 0)
//!     28     4  meta_len      — byte length of the meta section
//!     32     4  template_count
//!     36     8  template_bytes — byte length of the template table
//!     44     4  crc32 (IEEE) over meta ++ templates ++ records
//!     48     …  meta section, template table, then job records
//! ```
//!
//! *Meta section*: `description` and `source` as `u32` length-prefixed
//! UTF-8, then a seed flag byte and the `u64` seed.
//!
//! *Template table*: `template_count` entries, each a length-prefixed
//! name, four `u32` array lengths (map, first-shuffle, typical-shuffle,
//! reduce) and the four duration arrays as raw `u64`s. Identical
//! templates are interned: the table stores one copy, records refer to it
//! by index.
//!
//! *Job records*: `job_count` fixed-stride 21-byte entries sorted by
//! `(arrival, insertion order)` — `template_index: u32`, `arrival: u64`,
//! a deadline flag byte, `deadline: u64`. The sort makes the file
//! directly streamable into the engine's arrival-ordered
//! [`simmr_core::JobSource`] contract.
//!
//! Readers: [`BinTraceReader`] parses an in-memory byte slice (checksum
//! verified once, records then read zero-copy by index) and
//! [`BinTraceSource`] streams a file through a small buffer without ever
//! materializing the job vector. Writers: [`BinTraceWriter`] streams
//! records to any `Write + Seek` sink with flat memory;
//! [`encode_trace`]/[`decode_trace`] convert a materialized
//! [`WorkloadTrace`].

use simmr_core::{JobSource, SourceError, SourcedJob};
use simmr_types::{JobSpec, JobTemplate, SimTime, TemplateError, TraceMeta, WorkloadTrace};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// File magic: the first 8 bytes of every binary trace.
pub const MAGIC: [u8; 8] = *b"SIMMRBIN";
/// Current format version.
pub const VERSION: u16 = 1;
/// Header size in bytes.
pub const HEADER_BYTES: usize = 48;
/// Fixed job-record stride in bytes.
pub const RECORD_BYTES: usize = 21;

/// Errors raised by the binary codec. Every corruption mode maps to a
/// typed variant — decoding never panics on hostile input.
#[derive(Debug)]
pub enum BinError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// The input ends before a section or record it promises.
    Truncated,
    /// Body checksum does not match the header.
    ChecksumMismatch {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC computed over the body.
        actual: u32,
    },
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8,
    /// A job record names a template past the table.
    BadTemplateIndex {
        /// Index found in the record.
        index: u32,
        /// Number of templates in the table.
        count: u32,
    },
    /// A template fails [`JobTemplate::validate`].
    InvalidTemplate(TemplateError),
    /// Job records are not sorted by arrival (writer misuse, or a file
    /// whose body was rewritten around the checksum).
    ArrivalOrder,
    /// [`BinTraceWriter::intern_template`] called after the first
    /// `push_job` — the template table is already on disk.
    TemplatesSealed,
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "binary trace I/O error: {e}"),
            BinError::BadMagic => write!(f, "not a SIMMRBIN trace (bad magic)"),
            BinError::BadVersion(v) => {
                write!(f, "unsupported SIMMRBIN version {v} (expected {VERSION})")
            }
            BinError::Truncated => write!(f, "binary trace is truncated"),
            BinError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: header {expected:#010x}, body {actual:#010x}")
            }
            BinError::BadUtf8 => write!(f, "binary trace holds invalid UTF-8"),
            BinError::BadTemplateIndex { index, count } => {
                write!(f, "job record names template {index} but the table holds {count}")
            }
            BinError::InvalidTemplate(e) => write!(f, "invalid job template: {e}"),
            BinError::ArrivalOrder => write!(f, "job records are not sorted by arrival"),
            BinError::TemplatesSealed => {
                write!(f, "cannot intern templates after the first job record")
            }
        }
    }
}

impl std::error::Error for BinError {}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

impl From<TemplateError> for BinError {
    fn from(e: TemplateError) -> Self {
        BinError::InvalidTemplate(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental IEEE CRC32.
#[derive(Debug, Clone)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

// ---------------------------------------------------------------------------
// Little-endian section encoding helpers.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_durations(out: &mut Vec<u8>, ds: &[u64]) {
    for &d in ds {
        put_u64(out, d);
    }
}

fn encode_meta(meta: &TraceMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(meta.description.len() + meta.source.len() + 17);
    put_str(&mut out, &meta.description);
    put_str(&mut out, &meta.source);
    out.push(meta.seed.is_some() as u8);
    put_u64(&mut out, meta.seed.unwrap_or(0));
    out
}

/// Lossless byte encoding of one template — also the interning key, so
/// templates with identical content share one table entry.
fn encode_template(t: &JobTemplate) -> Vec<u8> {
    let arrays = t.num_maps
        + t.first_shuffle_durations.len()
        + t.typical_shuffle_durations.len()
        + t.num_reduces;
    let mut out = Vec::with_capacity(4 + t.name.len() + 16 + arrays * 8);
    put_str(&mut out, &t.name);
    put_u32(&mut out, t.map_durations.len() as u32);
    put_u32(&mut out, t.first_shuffle_durations.len() as u32);
    put_u32(&mut out, t.typical_shuffle_durations.len() as u32);
    put_u32(&mut out, t.reduce_durations.len() as u32);
    put_durations(&mut out, &t.map_durations);
    put_durations(&mut out, &t.first_shuffle_durations);
    put_durations(&mut out, &t.typical_shuffle_durations);
    put_durations(&mut out, &t.reduce_durations);
    out
}

fn encode_record(template_index: u32, arrival: SimTime, deadline: Option<SimTime>) -> [u8; 21] {
    let mut rec = [0u8; RECORD_BYTES];
    rec[0..4].copy_from_slice(&template_index.to_le_bytes());
    rec[4..12].copy_from_slice(&arrival.as_millis().to_le_bytes());
    rec[12] = deadline.is_some() as u8;
    rec[13..21].copy_from_slice(&deadline.map_or(0, SimTime::as_millis).to_le_bytes());
    rec
}

// ---------------------------------------------------------------------------
// Section decoding: a bounds-checked cursor over a byte slice.

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        let end = self.pos.checked_add(n).ok_or(BinError::Truncated)?;
        if end > self.bytes.len() {
            return Err(BinError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    fn str(&mut self) -> Result<&'a str, BinError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| BinError::BadUtf8)
    }

    fn durations(&mut self, count: usize) -> Result<Vec<u64>, BinError> {
        let raw = self.take(count.checked_mul(8).ok_or(BinError::Truncated)?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_meta(bytes: &[u8]) -> Result<TraceMeta, BinError> {
    let mut c = Cursor::new(bytes);
    let description = c.str()?.to_owned();
    let source = c.str()?.to_owned();
    let has_seed = c.u8()? != 0;
    let seed = c.u64()?;
    if !c.exhausted() {
        return Err(BinError::Truncated);
    }
    Ok(TraceMeta { description, source, seed: has_seed.then_some(seed) })
}

fn decode_templates(bytes: &[u8], count: u32) -> Result<Vec<Arc<JobTemplate>>, BinError> {
    let mut c = Cursor::new(bytes);
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name: Arc<str> = c.str()?.into();
        let maps = c.u32()? as usize;
        let firsts = c.u32()? as usize;
        let typicals = c.u32()? as usize;
        let reduces = c.u32()? as usize;
        let template = JobTemplate {
            name,
            num_maps: maps,
            num_reduces: reduces,
            map_durations: c.durations(maps)?,
            first_shuffle_durations: c.durations(firsts)?,
            typical_shuffle_durations: c.durations(typicals)?,
            reduce_durations: c.durations(reduces)?,
        };
        template.validate()?;
        out.push(Arc::new(template));
    }
    if !c.exhausted() {
        return Err(BinError::Truncated);
    }
    Ok(out)
}

/// One decoded job record (the template stays in the table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinRecord {
    /// Index into the template table.
    pub template_index: u32,
    /// Job submission time.
    pub arrival: SimTime,
    /// Optional absolute deadline.
    pub deadline: Option<SimTime>,
}

fn decode_record(rec: &[u8]) -> BinRecord {
    debug_assert_eq!(rec.len(), RECORD_BYTES);
    BinRecord {
        template_index: u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
        arrival: SimTime::from_millis(u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"))),
        deadline: (rec[12] != 0).then(|| {
            SimTime::from_millis(u64::from_le_bytes(rec[13..21].try_into().expect("8 bytes")))
        }),
    }
}

/// The parsed header of a binary trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    job_count: u64,
    first_arrival: u64,
    meta_len: u32,
    template_count: u32,
    template_bytes: u64,
    crc: u32,
}

impl Header {
    fn parse(bytes: &[u8]) -> Result<Header, BinError> {
        if bytes.len() < HEADER_BYTES {
            // an empty or tiny file is "not this format" only when even the
            // magic is absent; a good magic with a short header is truncation
            if bytes.len() >= 8 && bytes[..8] == MAGIC {
                return Err(BinError::Truncated);
            }
            return Err(BinError::BadMagic);
        }
        let mut c = Cursor::new(bytes);
        if c.take(8)? != MAGIC {
            return Err(BinError::BadMagic);
        }
        let version = u16::from_le_bytes(c.take(2)?.try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(BinError::BadVersion(version));
        }
        c.take(2)?; // reserved
        Ok(Header {
            job_count: c.u64()?,
            first_arrival: c.u64()?,
            meta_len: c.u32()?,
            template_count: c.u32()?,
            template_bytes: c.u64()?,
            crc: c.u32()?,
        })
    }

    fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..10].copy_from_slice(&VERSION.to_le_bytes());
        out[12..20].copy_from_slice(&self.job_count.to_le_bytes());
        out[20..28].copy_from_slice(&self.first_arrival.to_le_bytes());
        out[28..32].copy_from_slice(&self.meta_len.to_le_bytes());
        out[32..36].copy_from_slice(&self.template_count.to_le_bytes());
        out[36..44].copy_from_slice(&self.template_bytes.to_le_bytes());
        out[44..48].copy_from_slice(&self.crc.to_le_bytes());
        out
    }

    fn record_bytes(&self) -> Result<u64, BinError> {
        self.job_count.checked_mul(RECORD_BYTES as u64).ok_or(BinError::Truncated)
    }

    /// Body length: meta + templates + records.
    fn body_bytes(&self) -> Result<u64, BinError> {
        (self.meta_len as u64)
            .checked_add(self.template_bytes)
            .and_then(|n| n.checked_add(self.record_bytes().ok()?))
            .ok_or(BinError::Truncated)
    }
}

// ---------------------------------------------------------------------------
// Writer

/// Streaming binary-trace writer over any `Write + Seek` sink.
///
/// Usage: intern every template first, then push jobs **in arrival
/// order**; `finish` back-patches the header. Memory stays flat in the
/// job count — only the meta and template sections are buffered (they
/// precede the records on disk but their sizes are unknown until the
/// first push seals them).
#[derive(Debug)]
pub struct BinTraceWriter<W: Write + Seek> {
    out: W,
    meta_bytes: Vec<u8>,
    template_bytes: Vec<u8>,
    interned: HashMap<Vec<u8>, u32>,
    template_count: u32,
    sealed: bool,
    crc: Crc32,
    job_count: u64,
    first_arrival: Option<SimTime>,
    last_arrival: SimTime,
}

impl<W: Write + Seek> BinTraceWriter<W> {
    /// Starts a trace with the given provenance metadata.
    pub fn new(out: W, meta: &TraceMeta) -> Self {
        BinTraceWriter {
            out,
            meta_bytes: encode_meta(meta),
            template_bytes: Vec::new(),
            interned: HashMap::new(),
            template_count: 0,
            sealed: false,
            crc: Crc32::new(),
            job_count: 0,
            first_arrival: None,
            last_arrival: SimTime::ZERO,
        }
    }

    /// Adds `template` to the interning table (or finds its existing
    /// entry) and returns its record index. Must precede the first
    /// [`Self::push_job`].
    pub fn intern_template(&mut self, template: &JobTemplate) -> Result<u32, BinError> {
        if self.sealed {
            return Err(BinError::TemplatesSealed);
        }
        template.validate()?;
        let key = encode_template(template);
        if let Some(&id) = self.interned.get(&key) {
            return Ok(id);
        }
        let id = self.template_count;
        self.template_bytes.extend_from_slice(&key);
        self.interned.insert(key, id);
        self.template_count += 1;
        Ok(id)
    }

    /// Writes the placeholder header plus the meta and template sections;
    /// after this no more templates can be interned.
    fn seal(&mut self) -> Result<(), BinError> {
        self.out.write_all(&[0u8; HEADER_BYTES])?;
        self.out.write_all(&self.meta_bytes)?;
        self.out.write_all(&self.template_bytes)?;
        self.crc.update(&self.meta_bytes);
        self.crc.update(&self.template_bytes);
        self.sealed = true;
        self.interned = HashMap::new(); // the dedup map is dead weight now
        Ok(())
    }

    /// Appends one job record. Arrivals must be non-decreasing.
    pub fn push_job(
        &mut self,
        template_index: u32,
        arrival: SimTime,
        deadline: Option<SimTime>,
    ) -> Result<(), BinError> {
        if !self.sealed {
            self.seal()?;
        }
        if template_index >= self.template_count {
            return Err(BinError::BadTemplateIndex {
                index: template_index,
                count: self.template_count,
            });
        }
        if arrival < self.last_arrival {
            return Err(BinError::ArrivalOrder);
        }
        let rec = encode_record(template_index, arrival, deadline);
        self.crc.update(&rec);
        self.out.write_all(&rec)?;
        self.job_count += 1;
        self.first_arrival.get_or_insert(arrival);
        self.last_arrival = arrival;
        Ok(())
    }

    /// Back-patches the real header and returns the sink.
    pub fn finish(mut self) -> Result<W, BinError> {
        if !self.sealed {
            self.seal()?;
        }
        let header = Header {
            job_count: self.job_count,
            first_arrival: self.first_arrival.map_or(u64::MAX, SimTime::as_millis),
            meta_len: self.meta_bytes.len() as u32,
            template_count: self.template_count,
            template_bytes: self.template_bytes.len() as u64,
            crc: self.crc.finish(),
        };
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(&header.encode())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Encodes a materialized trace to SIMMRBIN bytes. Jobs are canonically
/// reordered by `(arrival, original position)`; templates with identical
/// content collapse into one table entry.
pub fn encode_trace(trace: &WorkloadTrace) -> Result<Vec<u8>, BinError> {
    let mut order: Vec<(SimTime, usize)> =
        trace.jobs.iter().enumerate().map(|(i, j)| (j.arrival, i)).collect();
    order.sort_unstable();
    let mut w = BinTraceWriter::new(io::Cursor::new(Vec::new()), &trace.meta);
    let mut ids = Vec::with_capacity(order.len());
    for &(_, i) in &order {
        ids.push(w.intern_template(&trace.jobs[i].template)?);
    }
    for (&(arrival, i), &id) in order.iter().zip(&ids) {
        w.push_job(id, arrival, trace.jobs[i].deadline)?;
    }
    Ok(w.finish()?.into_inner())
}

// ---------------------------------------------------------------------------
// Readers

/// Zero-copy reader over an in-memory (or memory-mapped) binary trace.
///
/// `parse` verifies the magic, version, section lengths and checksum
/// once and decodes the small meta/template tables; individual job
/// records are then read straight out of the byte slice by index without
/// materializing a job vector.
#[derive(Debug)]
pub struct BinTraceReader<'a> {
    meta: TraceMeta,
    templates: Vec<Arc<JobTemplate>>,
    records: &'a [u8],
    job_count: usize,
    first_arrival: Option<SimTime>,
}

impl<'a> BinTraceReader<'a> {
    /// Parses and fully validates a binary trace.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, BinError> {
        let header = Header::parse(bytes)?;
        let body_len = header.body_bytes()?;
        let expect_len = (HEADER_BYTES as u64).checked_add(body_len).ok_or(BinError::Truncated)?;
        if (bytes.len() as u64) < expect_len {
            return Err(BinError::Truncated);
        }
        let body = &bytes[HEADER_BYTES..expect_len as usize];
        let mut crc = Crc32::new();
        crc.update(body);
        let actual = crc.finish();
        if actual != header.crc {
            return Err(BinError::ChecksumMismatch { expected: header.crc, actual });
        }
        let meta_end = header.meta_len as usize;
        let templates_end = meta_end + header.template_bytes as usize;
        let meta = decode_meta(&body[..meta_end])?;
        let templates = decode_templates(&body[meta_end..templates_end], header.template_count)?;
        Ok(BinTraceReader {
            meta,
            templates,
            records: &body[templates_end..],
            job_count: header.job_count as usize,
            first_arrival: (header.job_count > 0)
                .then(|| SimTime::from_millis(header.first_arrival)),
        })
    }

    /// Number of job records.
    pub fn job_count(&self) -> usize {
        self.job_count
    }

    /// Earliest arrival (None for an empty trace).
    pub fn first_arrival(&self) -> Option<SimTime> {
        self.first_arrival
    }

    /// Trace provenance.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The interned template table.
    pub fn templates(&self) -> &[Arc<JobTemplate>] {
        &self.templates
    }

    /// Reads record `i` straight from the underlying bytes.
    pub fn record(&self, i: usize) -> Result<BinRecord, BinError> {
        let start = i * RECORD_BYTES;
        let rec = decode_record(&self.records[start..start + RECORD_BYTES]);
        if rec.template_index as usize >= self.templates.len() {
            return Err(BinError::BadTemplateIndex {
                index: rec.template_index,
                count: self.templates.len() as u32,
            });
        }
        Ok(rec)
    }

    /// Materializes job `i` (clones its template out of the table).
    pub fn job(&self, i: usize) -> Result<JobSpec, BinError> {
        let rec = self.record(i)?;
        Ok(JobSpec {
            template: (*self.templates[rec.template_index as usize]).clone(),
            arrival: rec.arrival,
            deadline: rec.deadline,
        })
    }

    /// Materializes the whole trace.
    pub fn to_trace(&self) -> Result<WorkloadTrace, BinError> {
        let mut jobs = Vec::with_capacity(self.job_count);
        for i in 0..self.job_count {
            jobs.push(self.job(i)?);
        }
        Ok(WorkloadTrace { meta: self.meta.clone(), jobs })
    }
}

/// Decodes SIMMRBIN bytes into a materialized trace.
pub fn decode_trace(bytes: &[u8]) -> Result<WorkloadTrace, BinError> {
    BinTraceReader::parse(bytes)?.to_trace()
}

/// True when `bytes` starts with the SIMMRBIN magic (format sniffing).
pub fn is_binary_trace(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && bytes[..8] == MAGIC
}

/// Streaming file reader: a [`JobSource`] whose resident memory is the
/// template table plus one buffered read — independent of the job count.
///
/// `open` makes one sequential checksum pass over the body (so a
/// truncated or corrupted file is rejected up front, before the engine
/// starts), then rewinds and yields arrival-ordered records on demand.
#[derive(Debug)]
pub struct BinTraceSource {
    reader: BufReader<File>,
    meta: TraceMeta,
    templates: Vec<Arc<JobTemplate>>,
    job_count: u64,
    yielded: u64,
    first_arrival: Option<SimTime>,
    last_arrival: SimTime,
}

impl BinTraceSource {
    /// Opens and validates `path`, leaving the cursor at the first record.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, BinError> {
        let mut reader = BufReader::new(File::open(path)?);
        let mut header_bytes = [0u8; HEADER_BYTES];
        let got = read_up_to(&mut reader, &mut header_bytes)?;
        let header = Header::parse(&header_bytes[..got])?;
        let body_len = header.body_bytes()?;

        // Checksum pass: stream the body once through a scratch buffer.
        let mut crc = Crc32::new();
        let mut remaining = body_len;
        let mut buf = [0u8; 64 * 1024];
        while remaining > 0 {
            let want = remaining.min(buf.len() as u64) as usize;
            reader.read_exact(&mut buf[..want]).map_err(truncated_eof)?;
            crc.update(&buf[..want]);
            remaining -= want as u64;
        }
        let actual = crc.finish();
        if actual != header.crc {
            return Err(BinError::ChecksumMismatch { expected: header.crc, actual });
        }

        // Rewind and decode the small sections; records then stream.
        reader.seek(SeekFrom::Start(HEADER_BYTES as u64))?;
        let mut meta_bytes = vec![0u8; header.meta_len as usize];
        reader.read_exact(&mut meta_bytes).map_err(truncated_eof)?;
        let mut template_bytes = vec![0u8; header.template_bytes as usize];
        reader.read_exact(&mut template_bytes).map_err(truncated_eof)?;
        Ok(BinTraceSource {
            reader,
            meta: decode_meta(&meta_bytes)?,
            templates: decode_templates(&template_bytes, header.template_count)?,
            job_count: header.job_count,
            yielded: 0,
            first_arrival: (header.job_count > 0)
                .then(|| SimTime::from_millis(header.first_arrival)),
            last_arrival: SimTime::ZERO,
        })
    }

    /// Trace provenance.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The interned template table.
    pub fn templates(&self) -> &[Arc<JobTemplate>] {
        &self.templates
    }

    fn next_record(&mut self) -> Result<Option<SourcedJob>, BinError> {
        if self.yielded == self.job_count {
            return Ok(None);
        }
        let mut rec = [0u8; RECORD_BYTES];
        self.reader.read_exact(&mut rec).map_err(truncated_eof)?;
        let rec = decode_record(&rec);
        let template = self.templates.get(rec.template_index as usize).cloned().ok_or(
            BinError::BadTemplateIndex {
                index: rec.template_index,
                count: self.templates.len() as u32,
            },
        )?;
        if rec.arrival < self.last_arrival {
            return Err(BinError::ArrivalOrder);
        }
        self.last_arrival = rec.arrival;
        self.yielded += 1;
        Ok(Some(SourcedJob { template, arrival: rec.arrival, deadline: rec.deadline }))
    }
}

impl JobSource for BinTraceSource {
    fn job_count(&self) -> usize {
        self.job_count as usize
    }

    fn first_arrival(&self) -> Option<SimTime> {
        self.first_arrival
    }

    fn next_job(&mut self) -> Result<Option<SourcedJob>, SourceError> {
        self.next_record().map_err(|e| SourceError::new(e.to_string()))
    }
}

fn truncated_eof(e: io::Error) -> BinError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        BinError::Truncated
    } else {
        BinError::Io(e)
    }
}

/// `read_exact` that tolerates a short file (returns the byte count).
fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, BinError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(BinError::Io(e)),
        }
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_types::TraceMeta;

    fn template(name: &str, maps: Vec<u64>, reduces: Vec<u64>) -> JobTemplate {
        let (first, typical) =
            if reduces.is_empty() { (vec![], vec![]) } else { (vec![5], vec![7, 9]) };
        JobTemplate::new(name, maps, first, typical, reduces).unwrap()
    }

    fn sample_trace() -> WorkloadTrace {
        let mut tr = WorkloadTrace::new("bin unit", "test");
        tr.meta.seed = Some(0xBEEF);
        let a = template("alpha", vec![10, 20], vec![30]);
        let b = template("beta", vec![u64::MAX], vec![]);
        tr.push(JobSpec::new(a.clone(), SimTime::from_secs(1)));
        tr.push(JobSpec::new(b, SimTime::from_secs(2)).with_deadline(SimTime::from_secs(9)));
        tr.push(JobSpec::new(a, SimTime::from_secs(3)));
        tr
    }

    #[test]
    fn round_trip_and_interning() {
        let tr = sample_trace();
        let bytes = encode_trace(&tr).unwrap();
        let reader = BinTraceReader::parse(&bytes).unwrap();
        // jobs 0 and 2 share one template entry
        assert_eq!(reader.templates().len(), 2);
        assert_eq!(reader.job_count(), 3);
        assert_eq!(reader.first_arrival(), Some(SimTime::from_secs(1)));
        assert_eq!(reader.to_trace().unwrap(), tr);
    }

    #[test]
    fn canonical_arrival_order() {
        let mut tr = WorkloadTrace::new("order", "test");
        tr.push(JobSpec::new(template("t", vec![1], vec![]), SimTime::from_secs(5)));
        tr.push(JobSpec::new(template("t", vec![2], vec![]), SimTime::from_secs(2)));
        tr.push(JobSpec::new(template("t", vec![3], vec![]), SimTime::from_secs(2)));
        let back = decode_trace(&encode_trace(&tr).unwrap()).unwrap();
        assert_eq!(back.jobs[0].template.map_durations, vec![2]); // ties keep input order
        assert_eq!(back.jobs[1].template.map_durations, vec![3]);
        assert_eq!(back.jobs[2].template.map_durations, vec![1]);
    }

    #[test]
    fn empty_trace_round_trips() {
        let tr = WorkloadTrace::new("empty", "test");
        let bytes = encode_trace(&tr).unwrap();
        let reader = BinTraceReader::parse(&bytes).unwrap();
        assert_eq!(reader.job_count(), 0);
        assert_eq!(reader.first_arrival(), None);
        assert_eq!(reader.to_trace().unwrap(), tr);
    }

    #[test]
    fn corruption_is_typed_not_panicky() {
        let bytes = encode_trace(&sample_trace()).unwrap();
        // bad magic
        assert!(matches!(BinTraceReader::parse(b"NOTATRACE").unwrap_err(), BinError::BadMagic));
        // wrong version
        let mut v = bytes.clone();
        v[8] = 0x7F;
        assert!(matches!(BinTraceReader::parse(&v).unwrap_err(), BinError::BadVersion(0x7F)));
        // truncation at every prefix length
        for cut in 0..bytes.len() {
            let err = BinTraceReader::parse(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, BinError::Truncated | BinError::BadMagic), "cut at {cut}: {err}");
        }
        // single flipped body byte → checksum mismatch
        let mut f = bytes.clone();
        let last = f.len() - 1;
        f[last] ^= 0xFF;
        assert!(matches!(
            BinTraceReader::parse(&f).unwrap_err(),
            BinError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn writer_enforces_contract() {
        let meta = TraceMeta::default();
        let mut w = BinTraceWriter::new(io::Cursor::new(Vec::new()), &meta);
        let t = template("t", vec![1], vec![]);
        let id = w.intern_template(&t).unwrap();
        assert_eq!(w.intern_template(&t).unwrap(), id); // dedup
        w.push_job(id, SimTime::from_secs(2), None).unwrap();
        // interning is sealed after the first record
        assert!(matches!(w.intern_template(&t), Err(BinError::TemplatesSealed)));
        // arrivals must be monotone
        assert!(matches!(w.push_job(id, SimTime::from_secs(1), None), Err(BinError::ArrivalOrder)));
        // unknown template index
        assert!(matches!(
            w.push_job(9, SimTime::from_secs(3), None),
            Err(BinError::BadTemplateIndex { index: 9, count: 1 })
        ));
    }

    #[test]
    fn streaming_source_matches_reader() {
        let tr = sample_trace();
        let bytes = encode_trace(&tr).unwrap();
        let path =
            std::env::temp_dir().join(format!("simmr-binfmt-src-{}.trace.bin", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mut src = BinTraceSource::open(&path).unwrap();
        assert_eq!(src.job_count(), 3);
        assert_eq!(src.first_arrival(), Some(SimTime::from_secs(1)));
        let mut seen = Vec::new();
        while let Some(job) = src.next_job().unwrap() {
            seen.push((job.template.name.to_string(), job.arrival, job.deadline));
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], ("alpha".into(), SimTime::from_secs(1), None));
        assert_eq!(seen[1].2, Some(SimTime::from_secs(9)));
        // a truncated file fails at open, not mid-stream
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(BinTraceSource::open(&path).unwrap_err(), BinError::Truncated));
        let _ = std::fs::remove_file(&path);
    }
}
