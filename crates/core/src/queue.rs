//! The event priority queue.

use crate::event::{Event, EventKind};
use simmr_types::{JobId, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic min-priority queue of [`Event`]s, ordered by
/// `(time, insertion sequence)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    pushed: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// An empty queue with room for `n` in-flight events without
    /// reallocating.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(n), next_seq: 0, pushed: 0 }
    }

    /// Schedules an event; insertion order breaks same-time ties.
    pub fn push(&mut self, time: SimTime, kind: EventKind, job: JobId, task_index: u32) {
        self.push_attempt(time, kind, job, task_index, 0);
    }

    /// Schedules an event carrying a task attempt generation.
    pub fn push_attempt(
        &mut self,
        time: SimTime,
        kind: EventKind,
        job: JobId,
        task_index: u32,
        attempt: u32,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Reverse(Event { time, seq, kind, job, task_index, attempt }));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Peeks at the earliest event's time.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (the engine's event count).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// The pending events in deterministic `(time, seq)` order, plus the
    /// `(next_seq, pushed)` counters — everything a checkpoint needs to
    /// reconstruct a queue that behaves identically to this one.
    pub(crate) fn snapshot(&self) -> (Vec<Event>, u64, u64) {
        let mut events: Vec<Event> = self.heap.iter().map(|Reverse(e)| *e).collect();
        events.sort_unstable();
        (events, self.next_seq, self.pushed)
    }

    /// Rebuilds a queue from a [`Self::snapshot`]: every event keeps its
    /// original sequence number, so same-time ties break exactly as they
    /// would have in the run that produced the snapshot. The heap's
    /// internal array layout may differ, but pop order is a total order
    /// over `(time, seq)`, so the difference is unobservable.
    pub(crate) fn from_snapshot(events: Vec<Event>, next_seq: u64, pushed: u64) -> Self {
        EventQueue { heap: events.into_iter().map(Reverse).collect(), next_seq, pushed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), EventKind::JobArrival, JobId(0), 0);
        q.push(SimTime::from_millis(10), EventKind::JobArrival, JobId(1), 0);
        q.push(SimTime::from_millis(20), EventKind::JobArrival, JobId(2), 0);
        assert_eq!(q.pop().unwrap().job, JobId(1));
        assert_eq!(q.pop().unwrap().job, JobId(2));
        assert_eq!(q.pop().unwrap().job, JobId(0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.push(t, EventKind::MapTaskDeparture, JobId(i), 0);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().job, JobId(i));
        }
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, EventKind::JobArrival, JobId(0), 0);
        q.push(SimTime::ZERO, EventKind::JobArrival, JobId(1), 0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.next_time(), Some(SimTime::ZERO));
    }

    proptest! {
        /// Popped times are non-decreasing regardless of push order.
        #[test]
        fn monotone_pop(times in proptest::collection::vec(0u64..10_000, 1..300)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), EventKind::JobArrival, JobId(i as u32), 0);
            }
            let mut last = SimTime::ZERO;
            while let Some(e) = q.pop() {
                prop_assert!(e.time >= last);
                last = e.time;
            }
        }
    }
}
