//! The job-queue view and the pluggable scheduler interface.
//!
//! The engine communicates with scheduling policies *"using a very narrow
//! interface"* (§III-B): `CHOOSENEXTMAPTASK(jobQ)` and
//! `CHOOSENEXTREDUCETASK(jobQ)`, each returning the id of the job whose
//! task should be launched next. Policies see a read-only snapshot of every
//! active job ([`JobEntry`]) and keep any additional state (EDF deadlines,
//! MinEDF wanted-slot caps, fair-share deficits, ...) internally.

use simmr_types::{DurationMs, JobId, SimTime};

/// Read-only snapshot of one active job, as visible to a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobEntry {
    /// Job id.
    pub id: JobId,
    /// Submission time.
    pub arrival: SimTime,
    /// Absolute deadline, if any.
    pub deadline: Option<SimTime>,
    /// Map tasks not yet launched.
    pub pending_maps: usize,
    /// Map tasks currently occupying a slot.
    pub running_maps: usize,
    /// Map tasks completed.
    pub completed_maps: usize,
    /// Total map tasks.
    pub total_maps: usize,
    /// Reduce tasks not yet launched.
    pub pending_reduces: usize,
    /// Reduce tasks currently occupying a slot.
    pub running_reduces: usize,
    /// Reduce tasks completed.
    pub completed_reduces: usize,
    /// Total reduce tasks.
    pub total_reduces: usize,
    /// True once the job has passed its slowstart threshold, making its
    /// reduce tasks schedulable.
    pub reduce_eligible: bool,
}

impl JobEntry {
    /// True if the policy may launch a map task of this job.
    pub fn has_schedulable_map(&self) -> bool {
        self.pending_maps > 0
    }

    /// True if the policy may launch a reduce task of this job.
    pub fn has_schedulable_reduce(&self) -> bool {
        self.reduce_eligible && self.pending_reduces > 0
    }

    /// Deadline key for EDF ordering: jobs without a deadline sort last.
    pub fn edf_key(&self) -> (SimTime, SimTime, JobId) {
        (self.deadline.unwrap_or(SimTime::INFINITY), self.arrival, self.id)
    }
}

/// Snapshot of the active-job queue passed to policies.
#[derive(Debug, Default)]
pub struct JobQueue {
    entries: Vec<JobEntry>,
    /// Current simulated time at the moment of the scheduling decision.
    pub now: SimTime,
}

impl JobQueue {
    /// Builds a queue view.
    pub fn new(entries: Vec<JobEntry>, now: SimTime) -> Self {
        JobQueue { entries, now }
    }

    /// The active jobs.
    pub fn entries(&self) -> &[JobEntry] {
        &self.entries
    }

    /// Looks up a job by id.
    pub fn get(&self, id: JobId) -> Option<&JobEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Mutable lookup — used by the engine to update the snapshot after
    /// launching a task, so a scheduling loop sees its own placements.
    pub(crate) fn get_mut(&mut self, id: JobId) -> Option<&mut JobEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }
}

/// A pluggable scheduling policy (§III-C).
///
/// The two `choose_next_*` functions are the whole contract with the
/// engine; the remaining methods are optional lifecycle hooks that
/// stateful policies (e.g. MinEDF's per-job wanted-slot caps) can use.
pub trait SchedulerPolicy {
    /// Human-readable policy name, used in reports.
    fn name(&self) -> &str;

    /// Called once when a job arrives. `profile_deadline` carries the job's
    /// *relative* deadline (deadline − arrival) when present, and
    /// `template` gives policies access to the job profile for model-based
    /// decisions.
    fn on_job_arrival(
        &mut self,
        _id: JobId,
        _template: &simmr_types::JobTemplate,
        _relative_deadline: Option<DurationMs>,
        _cluster: (usize, usize),
    ) {
    }

    /// Called when a job departs, letting policies drop per-job state.
    fn on_job_departure(&mut self, _id: JobId) {}

    /// Returns the job whose next **map** task should be launched, or
    /// `None` to leave remaining map slots idle this round.
    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId>;

    /// Returns the job whose next **reduce** task should be launched, or
    /// `None` to leave remaining reduce slots idle this round.
    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId>;

    /// Called when every map slot is busy: the policy may name victim jobs
    /// whose most recently launched running map task will be **killed and
    /// requeued** (all progress lost — Hadoop kill semantics), freeing one
    /// slot per victim for more urgent work. The default (like stock
    /// Hadoop, and like every policy in the paper) never preempts — §V-B
    /// attributes the "bump" in Figure 7(a) precisely to this.
    fn map_preemptions(&mut self, _jobq: &JobQueue) -> Vec<JobId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, deadline: Option<u64>) -> JobEntry {
        JobEntry {
            id: JobId(id),
            arrival: SimTime::from_millis(id as u64),
            deadline: deadline.map(SimTime::from_millis),
            pending_maps: 1,
            running_maps: 0,
            completed_maps: 0,
            total_maps: 1,
            pending_reduces: 1,
            running_reduces: 0,
            completed_reduces: 0,
            total_reduces: 1,
            reduce_eligible: false,
        }
    }

    #[test]
    fn schedulable_predicates() {
        let mut e = entry(0, None);
        assert!(e.has_schedulable_map());
        assert!(!e.has_schedulable_reduce()); // not yet eligible
        e.reduce_eligible = true;
        assert!(e.has_schedulable_reduce());
        e.pending_reduces = 0;
        assert!(!e.has_schedulable_reduce());
        e.pending_maps = 0;
        assert!(!e.has_schedulable_map());
    }

    #[test]
    fn edf_key_orders_no_deadline_last() {
        let with = entry(1, Some(100));
        let without = entry(0, None);
        assert!(with.edf_key() < without.edf_key());
    }

    #[test]
    fn queue_lookup() {
        let q = JobQueue::new(vec![entry(3, None), entry(7, None)], SimTime::ZERO);
        assert_eq!(q.entries().len(), 2);
        assert!(q.get(JobId(7)).is_some());
        assert!(q.get(JobId(9)).is_none());
    }
}
