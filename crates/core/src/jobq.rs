//! The job-queue view and the pluggable scheduler interface.
//!
//! The engine communicates with scheduling policies *"using a very narrow
//! interface"* (§III-B): `CHOOSENEXTMAPTASK(jobQ)` and
//! `CHOOSENEXTREDUCETASK(jobQ)`, each returning the id of the job whose
//! task should be launched next. Policies see a read-only view of every
//! active job ([`JobEntry`]) and keep any additional state (EDF deadlines,
//! MinEDF wanted-slot caps, fair-share deficits, ...) internally.
//!
//! The [`JobQueue`] is maintained **incrementally** by the engine: entries
//! are inserted on job arrival, removed on job departure, and their
//! counters mutated in place as tasks launch, finish, or are preempted —
//! the queue is *not* rebuilt per event. Entries are kept sorted by
//! `(arrival, id)`: arrivals are processed in time order so insertion is a
//! plain append, and removal advances a head pointer (oldest job, the
//! FIFO-service common case, O(1)) or shifts the shorter side of the hole
//! (mid-queue). Policies may rely
//! on that order — [`FifoPolicy`](../../simmr_sched) stops at the first
//! schedulable entry instead of scanning the whole backlog — but every
//! selection must still use a total order over entry *fields* (job id as
//! the final tie-breaker), as all built-in policies do.

use simmr_types::{DurationMs, JobId, SimTime};
use std::cell::Cell;

/// Sentinel in the id→position table for jobs not currently in the queue.
const ABSENT: u32 = u32::MAX;

/// Read-only view of one active job, as visible to a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobEntry {
    /// Job id.
    pub id: JobId,
    /// Submission time.
    pub arrival: SimTime,
    /// Absolute deadline, if any.
    pub deadline: Option<SimTime>,
    /// Map tasks not yet launched.
    pub pending_maps: usize,
    /// Map tasks currently occupying a slot.
    pub running_maps: usize,
    /// Map tasks completed.
    pub completed_maps: usize,
    /// Total map tasks.
    pub total_maps: usize,
    /// Reduce tasks not yet launched.
    pub pending_reduces: usize,
    /// Reduce tasks currently occupying a slot.
    pub running_reduces: usize,
    /// Reduce tasks completed.
    pub completed_reduces: usize,
    /// Total reduce tasks.
    pub total_reduces: usize,
    /// True once the job has passed its slowstart threshold, making its
    /// reduce tasks schedulable.
    pub reduce_eligible: bool,
}

impl JobEntry {
    /// True if the policy may launch a map task of this job.
    pub fn has_schedulable_map(&self) -> bool {
        self.pending_maps > 0
    }

    /// True if the policy may launch a reduce task of this job.
    pub fn has_schedulable_reduce(&self) -> bool {
        self.reduce_eligible && self.pending_reduces > 0
    }

    /// Deadline key for EDF ordering: jobs without a deadline sort last.
    pub fn edf_key(&self) -> (SimTime, SimTime, JobId) {
        (self.deadline.unwrap_or(SimTime::INFINITY), self.arrival, self.id)
    }
}

/// The active-job queue passed to policies.
///
/// Lives for the whole simulation and is updated in place: the live view
/// is `entries[head..]`, kept sorted by `(arrival, id)`. `insert` appends
/// (arrivals come in time order); `remove` of the oldest job — the common
/// case under FIFO-like service — just advances `head` in O(1), while a
/// mid-queue removal shifts the (shorter) front segment right into the
/// hole. `get` / `get_mut` are O(1) through an id→position table. The
/// dead prefix is compacted away once it outgrows the live region, so
/// memory stays proportional to the active-job high-water mark.
#[derive(Debug, Default)]
pub struct JobQueue {
    entries: Vec<JobEntry>,
    /// Start of the live region in `entries`.
    head: usize,
    /// Absolute position of each job in `entries`, indexed by job id.
    index: Vec<u32>,
    /// No entry before this live position has a schedulable map. On a
    /// reduce-bound cluster, jobs whose maps are done pile up at the front
    /// of the queue waiting for reduce slots; this cursor lets FIFO-order
    /// selection skip that dead prefix in amortized O(1) instead of
    /// re-scanning it on every free map slot. A job only regains pending
    /// maps on preemption, which resets the cursor.
    map_hint: Cell<usize>,
    /// Same, for schedulable reduces; reset when a job's slowstart
    /// eligibility flips on (once per job).
    reduce_hint: Cell<usize>,
    /// Current simulated time at the moment of the scheduling decision.
    pub now: SimTime,
}

impl JobQueue {
    /// Builds a queue view from a ready-made entry list (sorted into the
    /// queue's canonical `(arrival, id)` order).
    pub fn new(mut entries: Vec<JobEntry>, now: SimTime) -> Self {
        entries.sort_by_key(|e| (e.arrival, e.id));
        let mut q = JobQueue { entries: Vec::with_capacity(entries.len()), now, ..Self::default() };
        for e in entries {
            q.insert(e);
        }
        q
    }

    /// An empty queue with room for `jobs` entries (ids `0..jobs`) without
    /// reallocating.
    pub fn with_capacity(jobs: usize) -> Self {
        JobQueue { entries: Vec::with_capacity(jobs), index: vec![ABSENT; jobs], ..Self::default() }
    }

    /// The active jobs, sorted by `(arrival, id)`. The order is an API
    /// guarantee: FIFO-style policies may stop at the first schedulable
    /// entry.
    pub fn entries(&self) -> &[JobEntry] {
        &self.entries[self.head..]
    }

    /// The earliest-arrived job with a schedulable map — the FIFO map
    /// choice. Amortized O(1): a cursor remembers how far the
    /// nothing-schedulable prefix reaches, and only preemption can make an
    /// entry behind the cursor schedulable again.
    pub fn first_schedulable_map(&self) -> Option<&JobEntry> {
        let live = self.entries();
        let start = self.map_hint.get().min(live.len());
        for (i, e) in live[start..].iter().enumerate() {
            if e.has_schedulable_map() {
                self.map_hint.set(start + i);
                return Some(e);
            }
        }
        self.map_hint.set(live.len());
        None
    }

    /// The earliest-arrived job with a schedulable reduce — the FIFO
    /// reduce choice. Amortized O(1), like [`Self::first_schedulable_map`].
    pub fn first_schedulable_reduce(&self) -> Option<&JobEntry> {
        let live = self.entries();
        let start = self.reduce_hint.get().min(live.len());
        for (i, e) in live[start..].iter().enumerate() {
            if e.has_schedulable_reduce() {
                self.reduce_hint.set(start + i);
                return Some(e);
            }
        }
        self.reduce_hint.set(live.len());
        None
    }

    /// A map task returned to the pending queue (preemption): entries
    /// behind the scan cursor may be schedulable again.
    pub(crate) fn reset_map_hint(&mut self) {
        self.map_hint.set(0);
    }

    /// A job's slowstart eligibility flipped on: its position may be
    /// behind the reduce scan cursor.
    pub(crate) fn reset_reduce_hint(&mut self) {
        self.reduce_hint.set(0);
    }

    /// Number of active jobs.
    pub fn len(&self) -> usize {
        self.entries.len() - self.head
    }

    /// True when no job is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a job by id.
    pub fn get(&self, id: JobId) -> Option<&JobEntry> {
        match self.index.get(id.index()) {
            Some(&pos) if pos != ABSENT => Some(&self.entries[pos as usize]),
            _ => None,
        }
    }

    /// Mutable lookup — used by the engine to update the view after
    /// launching a task, so a scheduling loop sees its own placements.
    pub(crate) fn get_mut(&mut self, id: JobId) -> Option<&mut JobEntry> {
        match self.index.get(id.index()) {
            Some(&pos) if pos != ABSENT => Some(&mut self.entries[pos as usize]),
            _ => None,
        }
    }

    /// Adds a job's entry (on arrival). Arrivals are processed in time
    /// order, so appending keeps the entries sorted by `(arrival, id)`.
    pub(crate) fn insert(&mut self, entry: JobEntry) {
        let i = entry.id.index();
        if i >= self.index.len() {
            self.index.resize(i + 1, ABSENT);
        }
        debug_assert_eq!(self.index[i], ABSENT, "job {} inserted twice", entry.id);
        debug_assert!(
            self.entries[self.head..]
                .last()
                .is_none_or(|l| (l.arrival, l.id) < (entry.arrival, entry.id)),
            "job {} inserted out of arrival order",
            entry.id
        );
        self.index[i] = self.entries.len() as u32;
        self.entries.push(entry);
    }

    /// Removes a job's entry (on departure), preserving `(arrival, id)`
    /// order by shifting whichever side of the hole is shorter. Removing
    /// the oldest active job — the common case under FIFO-like service —
    /// is O(1): the head pointer just advances.
    pub(crate) fn remove(&mut self, id: JobId) -> Option<JobEntry> {
        let i = id.index();
        let pos = match self.index.get(i) {
            Some(&pos) if pos != ABSENT => pos as usize,
            _ => return None,
        };
        self.index[i] = ABSENT;
        let entry = self.entries[pos];
        // entries after the removed one move down one live position
        let live_pos = pos - self.head;
        for hint in [&self.map_hint, &self.reduce_hint] {
            let h = hint.get();
            if live_pos < h {
                hint.set(h - 1);
            }
        }
        if pos - self.head <= self.entries.len() - 1 - pos {
            // shift the front segment right into the hole
            self.entries.copy_within(self.head..pos, self.head + 1);
            for e in &self.entries[self.head + 1..=pos] {
                self.index[e.id.index()] += 1;
            }
            self.head += 1;
            if self.head > self.entries.len() - self.head {
                self.compact();
            }
        } else {
            // shift the (shorter) tail segment left over the hole
            self.entries.copy_within(pos + 1.., pos);
            self.entries.truncate(self.entries.len() - 1);
            for e in &self.entries[pos..] {
                self.index[e.id.index()] -= 1;
            }
        }
        Some(entry)
    }

    /// Drops the dead prefix, amortized O(1) per removal: runs only when
    /// dead entries outnumber live ones, and costs O(live).
    fn compact(&mut self) {
        self.entries.drain(..self.head);
        self.head = 0;
        for (pos, e) in self.entries.iter().enumerate() {
            self.index[e.id.index()] = pos as u32;
        }
    }

    /// Empties the queue, keeping its allocations. Used by the rebuild
    /// paths that reconstruct the queue from scratch: the debug-only
    /// snapshot oracle and checkpoint restore.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.head = 0;
        self.index.fill(ABSENT);
        self.map_hint.set(0);
        self.reduce_hint.set(0);
    }
}

/// A pluggable scheduling policy (§III-C).
///
/// The two `choose_next_*` functions are the whole contract with the
/// engine; the remaining methods are optional lifecycle hooks that
/// stateful policies (e.g. MinEDF's per-job wanted-slot caps) can use.
///
/// # Determinism contract
///
/// The engine skips redundant scheduling passes: when no event since the
/// previous pass changed the job queue (or the policy's lifecycle hooks
/// fired), `choose_next_*` is **not** re-consulted. A policy's choices must
/// therefore be a pure function of the queue contents and its own state —
/// in particular `choose_next_*` must not depend on [`JobQueue::now`].
/// Time-based policies (min-share preemption timeouts) read `now` from the
/// sanctioned hooks instead: [`Self::map_preemptions`] and
/// [`Self::next_wakeup`], which the engine re-consults on every pass and
/// backs with a timer event so a deadline expiring *between* queue events
/// still fires at the right instant.
/// [`JobQueue::entries`] is guaranteed sorted by `(arrival, id)`; policies
/// may exploit that order (FIFO stops at the first schedulable entry) but
/// must select by a total order over entry fields either way. All built-in
/// policies satisfy this.
pub trait SchedulerPolicy {
    /// Human-readable policy name, used in reports.
    fn name(&self) -> &str;

    /// Called once when a job arrives. `relative_deadline` carries the
    /// job's *relative* deadline (deadline − arrival) when present,
    /// `template` gives policies access to the job profile for model-based
    /// decisions, and `cluster` names the shape the run executes on
    /// (slot pools plus host count).
    fn on_job_arrival(
        &mut self,
        _id: JobId,
        _template: &simmr_types::JobTemplate,
        _relative_deadline: Option<DurationMs>,
        _cluster: simmr_types::ClusterSpec,
    ) {
    }

    /// Called when a job departs, letting policies drop per-job state.
    fn on_job_departure(&mut self, _id: JobId) {}

    /// Called right after a job's entry joins the queue view (on arrival,
    /// after [`Self::on_job_arrival`]), with the entry exactly as the
    /// policy will first observe it. Policies that keep incremental
    /// aggregates over the queue (per-pool share counters, the EDF
    /// policies' deadline index) seed them here; the default keeps no
    /// such state.
    ///
    /// Together, this hook, [`Self::on_entry_mutated`] and
    /// [`Self::on_job_dequeued`] cover **every** entry mutation the
    /// engine performs, in order — incremental policy state may rely on
    /// observing each predicate change over an entry as an edge in this
    /// stream. (The debug-only snapshot oracle's queue rebuild is the
    /// one deliberate exception: it changes the queue's representation,
    /// never an entry's contents.)
    fn on_job_queued(&mut self, _entry: &JobEntry) {}

    /// Called right after the engine mutates a job's entry in place —
    /// task launch, task completion, preemption kill, host-failure
    /// kill/re-run, speculative duplicate — with the entry state `before`
    /// and `after` the mutation. Fired for *every* counter change,
    /// including launches made mid-pass by the engine's own scheduling
    /// loop, so incremental aggregates stay exact between two
    /// `choose_next_*` calls of the same pass. The default ignores it.
    fn on_entry_mutated(&mut self, _before: &JobEntry, _after: &JobEntry) {}

    /// Called right after a job's entry leaves the queue view (on
    /// departure, before [`Self::on_job_departure`]), with its final
    /// state so incremental aggregates can release whatever the entry
    /// still contributed. The default ignores it.
    fn on_job_dequeued(&mut self, _entry: &JobEntry) {}

    /// Returns the job whose next **map** task should be launched, or
    /// `None` to leave remaining map slots idle this round.
    fn choose_next_map_task(&mut self, jobq: &JobQueue) -> Option<JobId>;

    /// Returns the job whose next **reduce** task should be launched, or
    /// `None` to leave remaining reduce slots idle this round.
    fn choose_next_reduce_task(&mut self, jobq: &JobQueue) -> Option<JobId>;

    /// Called when every map slot is busy: the policy may push victim jobs
    /// into `victims`; each victim's most recently launched running map
    /// task will be **killed and requeued** (all progress lost — Hadoop
    /// kill semantics), freeing one slot per victim for more urgent work.
    /// `victims` arrives empty and is a scratch buffer reused across
    /// rounds. The default (like stock Hadoop, and like every policy in
    /// the paper) never preempts — §V-B attributes the "bump" in Figure
    /// 7(a) precisely to this. Unlike `choose_next_*`, this hook may read
    /// [`JobQueue::now`] (preemption timeouts are time-based by nature).
    fn map_preemptions(&mut self, _jobq: &JobQueue, _victims: &mut Vec<JobId>) {}

    /// The next instant the policy wants a scheduling pass even if no
    /// queue event occurs before then — e.g. a min-share preemption
    /// timeout expiring on an otherwise quiet cluster. Consulted at the
    /// end of every scheduling pass; a returned time in the future is
    /// backed by a timer event that re-runs the pass (and thus
    /// [`Self::map_preemptions`]) at that instant. Return `None` (the
    /// default) for purely event-driven policies. May read
    /// [`JobQueue::now`].
    fn next_wakeup(&mut self, _jobq: &JobQueue) -> Option<SimTime> {
        None
    }

    /// Policy-side self-check, called by the engine's opt-in invariant
    /// checker after every settled event batch. Implementations should
    /// re-derive their bookkeeping (queue routing tables, share
    /// accounting, starvation clocks) from the queue view and panic in
    /// the checker's `engine invariant violated [name]: ...` format on a
    /// mismatch. The default checks nothing.
    fn verify_invariants(&self, _jobq: &JobQueue) {}

    /// Serializes the policy's internal state for an engine checkpoint.
    ///
    /// Restore replays the arrival hook stream first (see
    /// [`Self::restore`]), so the blob only needs state that replay
    /// cannot reconstruct — e.g. the hierarchical policy's starvation
    /// clocks, whose exact historical timestamps drive future preemption
    /// timing. Policies whose state is fully derivable may still encode a
    /// fingerprint of it here and cross-check on restore, turning a
    /// capture/resume configuration mismatch into a typed error instead
    /// of silent divergence. The default (stateless policy) returns an
    /// empty blob.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores internal state from a [`Self::snapshot`] blob.
    ///
    /// The engine calls this at the end of a checkpoint resume, after it
    /// has replayed [`Self::on_job_arrival`] and then
    /// [`Self::on_job_queued`] for every live job in `(arrival, id)`
    /// order — exactly the order the original run fired them, restricted
    /// to still-active jobs. Derivable state (routing tables, wanted-slot
    /// caps, deadline-index membership, share counters) is therefore
    /// already rebuilt when this runs; implementations overlay or verify
    /// against it. Returns a human-readable error when the blob does not
    /// match this policy's shape or configuration. The default accepts
    /// only the empty blob a stateless policy produces.
    fn restore(&mut self, blob: &[u8]) -> Result<(), String> {
        if blob.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "policy '{}' keeps no snapshot state but the checkpoint carries a {}-byte blob",
                self.name(),
                blob.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, deadline: Option<u64>) -> JobEntry {
        JobEntry {
            id: JobId(id),
            arrival: SimTime::from_millis(id as u64),
            deadline: deadline.map(SimTime::from_millis),
            pending_maps: 1,
            running_maps: 0,
            completed_maps: 0,
            total_maps: 1,
            pending_reduces: 1,
            running_reduces: 0,
            completed_reduces: 0,
            total_reduces: 1,
            reduce_eligible: false,
        }
    }

    #[test]
    fn schedulable_predicates() {
        let mut e = entry(0, None);
        assert!(e.has_schedulable_map());
        assert!(!e.has_schedulable_reduce()); // not yet eligible
        e.reduce_eligible = true;
        assert!(e.has_schedulable_reduce());
        e.pending_reduces = 0;
        assert!(!e.has_schedulable_reduce());
        e.pending_maps = 0;
        assert!(!e.has_schedulable_map());
    }

    #[test]
    fn edf_key_orders_no_deadline_last() {
        let with = entry(1, Some(100));
        let without = entry(0, None);
        assert!(with.edf_key() < without.edf_key());
    }

    #[test]
    fn queue_lookup() {
        let q = JobQueue::new(vec![entry(3, None), entry(7, None)], SimTime::ZERO);
        assert_eq!(q.entries().len(), 2);
        assert!(q.get(JobId(7)).is_some());
        assert!(q.get(JobId(9)).is_none());
    }

    #[test]
    fn insert_remove_keeps_index_consistent() {
        let mut q = JobQueue::with_capacity(4);
        for id in 0..4 {
            q.insert(entry(id, None));
        }
        assert_eq!(q.len(), 4);
        // removing from the middle shifts the suffix left
        let removed = q.remove(JobId(1)).unwrap();
        assert_eq!(removed.id, JobId(1));
        assert_eq!(q.len(), 3);
        assert!(q.get(JobId(1)).is_none());
        for id in [0, 2, 3] {
            assert_eq!(q.get(JobId(id)).unwrap().id, JobId(id));
        }
        // double-remove is a no-op
        assert!(q.remove(JobId(1)).is_none());
        // a later arrival inserts after the survivors
        q.insert(entry(9, None));
        assert_eq!(q.get(JobId(9)).unwrap().id, JobId(9));
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn front_removals_advance_head_and_compact() {
        let mut q = JobQueue::with_capacity(8);
        for id in 0..8 {
            q.insert(entry(id, None));
        }
        // FIFO-style service: oldest jobs depart first
        for id in 0..6 {
            assert_eq!(q.remove(JobId(id)).unwrap().id, JobId(id));
            assert!(
                q.entries().windows(2).all(|w| (w[0].arrival, w[0].id) < (w[1].arrival, w[1].id)),
                "entries out of order after removing job {id}"
            );
        }
        let order: Vec<u32> = q.entries().iter().map(|e| e.id.0).collect();
        assert_eq!(order, vec![6, 7]);
        for id in [6, 7] {
            assert_eq!(q.get(JobId(id)).unwrap().id, JobId(id));
        }
        // inserts keep working after the dead prefix is compacted away
        q.insert(entry(8, None));
        assert_eq!(q.len(), 3);
        assert_eq!(q.get(JobId(8)).unwrap().id, JobId(8));
    }

    #[test]
    fn tail_removal_shifts_suffix() {
        let mut q = JobQueue::with_capacity(4);
        for id in 0..4 {
            q.insert(entry(id, None));
        }
        // newest job departs first: the tail side of the hole is shorter
        assert_eq!(q.remove(JobId(3)).unwrap().id, JobId(3));
        assert_eq!(q.remove(JobId(2)).unwrap().id, JobId(2));
        let order: Vec<u32> = q.entries().iter().map(|e| e.id.0).collect();
        assert_eq!(order, vec![0, 1]);
        for id in [0, 1] {
            assert_eq!(q.get(JobId(id)).unwrap().id, JobId(id));
        }
    }

    #[test]
    fn schedulable_cursors_follow_mutations() {
        let mut q = JobQueue::with_capacity(3);
        for id in 0..3 {
            q.insert(entry(id, None));
        }
        assert_eq!(q.first_schedulable_map().unwrap().id, JobId(0));
        q.get_mut(JobId(0)).unwrap().pending_maps = 0;
        assert_eq!(q.first_schedulable_map().unwrap().id, JobId(1));
        // preemption makes a job behind the cursor schedulable again
        q.get_mut(JobId(0)).unwrap().pending_maps = 1;
        q.reset_map_hint();
        assert_eq!(q.first_schedulable_map().unwrap().id, JobId(0));
        // slowstart eligibility flips on behind the reduce cursor
        assert!(q.first_schedulable_reduce().is_none());
        q.get_mut(JobId(1)).unwrap().reduce_eligible = true;
        q.reset_reduce_hint();
        assert_eq!(q.first_schedulable_reduce().unwrap().id, JobId(1));
        // removal ahead of the cursor keeps it aligned
        q.remove(JobId(0));
        assert_eq!(q.first_schedulable_reduce().unwrap().id, JobId(1));
        q.get_mut(JobId(1)).unwrap().pending_reduces = 0;
        q.get_mut(JobId(2)).unwrap().reduce_eligible = true;
        assert_eq!(q.first_schedulable_reduce().unwrap().id, JobId(2));
    }

    #[test]
    fn remove_preserves_arrival_order() {
        let mut q = JobQueue::with_capacity(5);
        for id in 0..5 {
            q.insert(entry(id, None));
        }
        q.remove(JobId(2));
        q.remove(JobId(0));
        let order: Vec<u32> = q.entries().iter().map(|e| e.id.0).collect();
        assert_eq!(order, vec![1, 3, 4]);
        assert!(q.entries().windows(2).all(|w| (w[0].arrival, w[0].id) < (w[1].arrival, w[1].id)));
        for id in [1, 3, 4] {
            assert_eq!(q.get(JobId(id)).unwrap().id, JobId(id));
        }
    }

    #[test]
    fn remove_last_and_clear() {
        let mut q = JobQueue::with_capacity(2);
        q.insert(entry(0, None));
        q.insert(entry(1, None));
        assert_eq!(q.remove(JobId(1)).unwrap().id, JobId(1));
        assert_eq!(q.entries().len(), 1);
        assert_eq!(q.entries()[0].id, JobId(0));
        q.clear();
        assert!(q.is_empty());
        assert!(q.get(JobId(0)).is_none());
        q.insert(entry(0, None));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn insert_beyond_capacity_grows() {
        let mut q = JobQueue::with_capacity(1);
        q.insert(entry(0, None));
        q.insert(entry(9, None)); // id beyond the pre-sized table
        assert_eq!(q.get(JobId(9)).unwrap().id, JobId(9));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut q = JobQueue::new(vec![entry(0, None)], SimTime::ZERO);
        q.get_mut(JobId(0)).unwrap().running_maps = 5;
        assert_eq!(q.get(JobId(0)).unwrap().running_maps, 5);
    }
}
