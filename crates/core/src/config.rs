//! Engine configuration.

/// Configuration of a [`crate::SimulatorEngine`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Total map slots in the simulated cluster.
    pub map_slots: usize,
    /// Total reduce slots in the simulated cluster.
    pub reduce_slots: usize,
    /// Fraction of a job's map tasks that must complete before its reduce
    /// tasks become schedulable (the paper's `minMapPercentCompleted`;
    /// Hadoop calls this "slowstart" and defaults it to 5%).
    pub min_map_percent_completed: f64,
    /// Record a per-task timeline (Figures 1–2). Off by default: recording
    /// costs memory proportional to the task count.
    pub record_timeline: bool,
    /// Run the engine's runtime invariant checker (see
    /// `crates/core/src/invariants.rs`): slot conservation, policy-view /
    /// engine-state counter consistency, event-time monotonicity, per-slot
    /// timeline disjointness and end-of-run report accounting are verified
    /// after every same-instant event batch, panicking with a field-level
    /// diagnosis on the first violation. Off by default — checking costs
    /// O(active jobs) per batch; the release hot path is untouched when
    /// disabled. The `check-invariants` cargo feature forces this on for
    /// every engine regardless of the flag.
    pub check_invariants: bool,
}

impl EngineConfig {
    /// A configuration with the given slot counts and default slowstart
    /// (5%), no timeline recording.
    pub fn new(map_slots: usize, reduce_slots: usize) -> Self {
        EngineConfig {
            map_slots,
            reduce_slots,
            min_map_percent_completed: 0.05,
            record_timeline: false,
            check_invariants: false,
        }
    }

    /// Sets the slowstart threshold (clamped to `[0, 1]`).
    pub fn with_slowstart(mut self, fraction: f64) -> Self {
        self.min_map_percent_completed = fraction.clamp(0.0, 1.0);
        self
    }

    /// Enables per-task timeline recording.
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Enables runtime invariant checking (see [`Self::check_invariants`]).
    pub fn with_invariants(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// True when this run must check invariants: the config flag, or the
    /// crate-wide `check-invariants` feature.
    pub fn invariants_enabled(&self) -> bool {
        self.check_invariants || cfg!(feature = "check-invariants")
    }

    /// Number of map tasks of an `n`-map job that must complete before its
    /// reduces may start. At least 1 when the threshold is positive, and
    /// never more than `n`.
    pub fn reduce_start_threshold(&self, num_maps: usize) -> usize {
        if self.min_map_percent_completed <= 0.0 || num_maps == 0 {
            return 0;
        }
        ((self.min_map_percent_completed * num_maps as f64).ceil() as usize).clamp(1, num_maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = EngineConfig::new(64, 64);
        assert_eq!(c.map_slots, 64);
        assert_eq!(c.min_map_percent_completed, 0.05);
        assert!(!c.record_timeline);
    }

    #[test]
    fn builder() {
        let c = EngineConfig::new(2, 2).with_slowstart(0.5).with_timeline();
        assert_eq!(c.min_map_percent_completed, 0.5);
        assert!(c.record_timeline);
        assert!(!c.check_invariants);
        assert!(c.with_invariants().check_invariants);
        assert_eq!(EngineConfig::new(1, 1).with_slowstart(7.0).min_map_percent_completed, 1.0);
        assert_eq!(EngineConfig::new(1, 1).with_slowstart(-1.0).min_map_percent_completed, 0.0);
    }

    #[test]
    fn threshold() {
        let c = EngineConfig::new(4, 4).with_slowstart(0.05);
        assert_eq!(c.reduce_start_threshold(200), 10);
        assert_eq!(c.reduce_start_threshold(1), 1);
        // zero slowstart: reduces can start immediately
        let c = c.with_slowstart(0.0);
        assert_eq!(c.reduce_start_threshold(200), 0);
        // full slowstart: all maps must finish
        let c = c.with_slowstart(1.0);
        assert_eq!(c.reduce_start_threshold(200), 200);
        assert_eq!(c.reduce_start_threshold(0), 0);
    }
}
