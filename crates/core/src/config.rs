//! Engine configuration.

use simmr_stats::Dist;
use simmr_types::ClusterSpec;

/// A seeded plan of worker-host failures (see `DESIGN.md` §2.3).
///
/// The engine derives a deterministic fault plan from this spec at
/// construction time: `count` failure times with exponentially distributed
/// inter-arrivals of mean `mean_interval_ms`, each hitting a uniformly
/// chosen host other than host 0 (which never fails, so every workload
/// stays finishable). Single-host clusters ignore the spec entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the dedicated fault-plan RNG stream.
    pub seed: u64,
    /// Number of host-failure events to plan.
    pub count: u32,
    /// Mean inter-failure interval in simulated milliseconds.
    pub mean_interval_ms: u64,
}

/// A seeded host-recovery model: failed hosts come back.
///
/// Without this spec a planned [`FaultSpec`] failure is permanent for the
/// run. With it, the engine schedules one `HostRecovery` event per planned
/// failure, delayed by an exponentially distributed downtime of mean
/// `mean_ms` drawn from a dedicated RNG stream — so arming recovery never
/// perturbs the fault or slowdown plans, and reruns are deterministic.
/// A recovered host's surviving slots rejoin the free pools (empty), and
/// the host may fail again if a later plan entry names it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoverySpec {
    /// Seed of the dedicated recovery RNG stream.
    pub seed: u64,
    /// Mean downtime in simulated milliseconds (clamped to ≥ 1).
    pub mean_ms: u64,
}

/// A per-slot execution-speed perturbation.
///
/// At engine construction one multiplicative slowdown factor is sampled
/// per slot from `dist` (clamped to ≥ 0.05) with a dedicated seeded RNG
/// stream; every task duration on that slot is scaled by the factor. A
/// mean-1 distribution (e.g. a LogNormal with `mu = -sigma²/2`) perturbs
/// durations without shifting the workload's average, which is what makes
/// stragglers for the speculation model to chase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownSpec {
    /// Distribution the per-slot factors are drawn from.
    pub dist: Dist,
    /// Seed of the dedicated slowdown RNG stream.
    pub seed: u64,
}

/// Configuration of a [`crate::SimulatorEngine`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// The cluster shape: map/reduce slot pools and the worker-host count
    /// they are striped over.
    pub cluster: ClusterSpec,
    /// Fraction of a job's map tasks that must complete before its reduce
    /// tasks become schedulable (the paper's `minMapPercentCompleted`;
    /// Hadoop calls this "slowstart" and defaults it to 5%).
    pub min_map_percent_completed: f64,
    /// Record a per-task timeline (Figures 1–2). Off by default: recording
    /// costs memory proportional to the task count.
    pub record_timeline: bool,
    /// Run the engine's runtime invariant checker (see
    /// `crates/core/src/invariants.rs`): slot conservation, policy-view /
    /// engine-state counter consistency, event-time monotonicity, per-slot
    /// timeline disjointness and end-of-run report accounting are verified
    /// after every same-instant event batch, panicking with a field-level
    /// diagnosis on the first violation. Off by default — checking costs
    /// O(active jobs) per batch; the release hot path is untouched when
    /// disabled. The `check-invariants` cargo feature forces this on for
    /// every engine regardless of the flag.
    pub check_invariants: bool,
    /// Seeded host-failure plan; `None` disables the failure model.
    pub faults: Option<FaultSpec>,
    /// Seeded host-recovery model; `None` keeps planned failures
    /// permanent for the run.
    pub recovery: Option<RecoverySpec>,
    /// Speculative-execution threshold: a map attempt running longer than
    /// `factor ×` its job's median map duration gets a duplicate attempt
    /// (first finisher wins). `None` disables speculation.
    pub speculation_factor: Option<f64>,
    /// Per-slot execution slowdown; `None` runs every slot at nominal speed.
    pub slowdown: Option<SlowdownSpec>,
    /// Collect a per-job [`simmr_types::JobResult`] (on by default). Turn
    /// off for aggregate-only runs at extreme trace scale: the report's
    /// `jobs` vector stays empty and the engine allocates nothing
    /// proportional to the job count for results.
    pub collect_job_results: bool,
}

impl EngineConfig {
    /// A single-host configuration with the given slot counts and default
    /// slowstart (5%), no timeline recording, no failures or speculation.
    pub fn new(map_slots: usize, reduce_slots: usize) -> Self {
        EngineConfig {
            cluster: ClusterSpec::new(map_slots, reduce_slots),
            min_map_percent_completed: 0.05,
            record_timeline: false,
            check_invariants: false,
            faults: None,
            recovery: None,
            speculation_factor: None,
            slowdown: None,
            collect_job_results: true,
        }
    }

    /// Replaces the whole cluster shape.
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Stripes the slot pools over `hosts` workers (clamped to ≥ 1).
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.cluster = self.cluster.with_hosts(hosts);
        self
    }

    /// Sets the slowstart threshold (clamped to `[0, 1]`).
    pub fn with_slowstart(mut self, fraction: f64) -> Self {
        self.min_map_percent_completed = fraction.clamp(0.0, 1.0);
        self
    }

    /// Enables per-task timeline recording.
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Enables runtime invariant checking (see [`Self::check_invariants`]).
    pub fn with_invariants(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Installs a seeded host-failure plan.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Installs a seeded host-recovery model (failed hosts come back
    /// after an exponential downtime of mean `mean_ms`).
    pub fn with_recovery(mut self, recovery: RecoverySpec) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Enables speculative map re-execution past `factor ×` the job's
    /// median map duration (clamped to ≥ 1).
    pub fn with_speculation(mut self, factor: f64) -> Self {
        self.speculation_factor = Some(factor.max(1.0));
        self
    }

    /// Installs a per-slot slowdown distribution.
    pub fn with_slowdown(mut self, dist: Dist, seed: u64) -> Self {
        self.slowdown = Some(SlowdownSpec { dist, seed });
        self
    }

    /// Skips per-job result collection (see [`Self::collect_job_results`]).
    pub fn without_job_results(mut self) -> Self {
        self.collect_job_results = false;
        self
    }

    /// True when this run must check invariants: the config flag, or the
    /// crate-wide `check-invariants` feature.
    pub fn invariants_enabled(&self) -> bool {
        self.check_invariants || cfg!(feature = "check-invariants")
    }

    /// Number of map tasks of an `n`-map job that must complete before its
    /// reduces may start. At least 1 when the threshold is positive, and
    /// never more than `n`.
    pub fn reduce_start_threshold(&self, num_maps: usize) -> usize {
        if self.min_map_percent_completed <= 0.0 || num_maps == 0 {
            return 0;
        }
        ((self.min_map_percent_completed * num_maps as f64).ceil() as usize).clamp(1, num_maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = EngineConfig::new(64, 64);
        assert_eq!(c.cluster, ClusterSpec::new(64, 64));
        assert_eq!(c.cluster.hosts, 1);
        assert_eq!(c.min_map_percent_completed, 0.05);
        assert!(!c.record_timeline);
        assert!(c.faults.is_none());
        assert!(c.recovery.is_none());
        assert!(c.speculation_factor.is_none());
        assert!(c.slowdown.is_none());
        assert!(c.collect_job_results);
        assert!(!c.without_job_results().collect_job_results);
    }

    #[test]
    fn builder() {
        let c = EngineConfig::new(2, 2).with_slowstart(0.5).with_timeline();
        assert_eq!(c.min_map_percent_completed, 0.5);
        assert!(c.record_timeline);
        assert!(!c.check_invariants);
        assert!(c.with_invariants().check_invariants);
        assert_eq!(EngineConfig::new(1, 1).with_slowstart(7.0).min_map_percent_completed, 1.0);
        assert_eq!(EngineConfig::new(1, 1).with_slowstart(-1.0).min_map_percent_completed, 0.0);
    }

    #[test]
    fn failure_model_builders() {
        let c = EngineConfig::new(4, 2)
            .with_hosts(3)
            .with_faults(FaultSpec { seed: 7, count: 2, mean_interval_ms: 60_000 })
            .with_recovery(RecoverySpec { seed: 7, mean_ms: 30_000 })
            .with_speculation(1.5)
            .with_slowdown(Dist::Constant { value: 1.0 }, 9);
        assert_eq!(c.cluster.hosts, 3);
        assert_eq!(c.faults.unwrap().count, 2);
        assert_eq!(c.recovery.unwrap().mean_ms, 30_000);
        assert_eq!(c.speculation_factor, Some(1.5));
        assert_eq!(c.slowdown.unwrap().seed, 9);
        // speculation factors below 1 would duplicate non-stragglers
        assert_eq!(EngineConfig::new(1, 1).with_speculation(0.2).speculation_factor, Some(1.0));
        let shaped = EngineConfig::new(1, 1).with_cluster(ClusterSpec::new(8, 4).with_hosts(4));
        assert_eq!((shaped.cluster.map_slots, shaped.cluster.hosts), (8, 4));
    }

    #[test]
    fn threshold() {
        let c = EngineConfig::new(4, 4).with_slowstart(0.05);
        assert_eq!(c.reduce_start_threshold(200), 10);
        assert_eq!(c.reduce_start_threshold(1), 1);
        // zero slowstart: reduces can start immediately
        let c = c.with_slowstart(0.0);
        assert_eq!(c.reduce_start_threshold(200), 0);
        // full slowstart: all maps must finish
        let c = c.with_slowstart(1.0);
        assert_eq!(c.reduce_start_threshold(200), 200);
        assert_eq!(c.reduce_start_threshold(0), 0);
    }
}
