//! # simmr-core
//!
//! The SimMR **Simulator Engine** (§III-B of "Play It Again, SimMR!",
//! IEEE CLUSTER 2011): a discrete-event simulator that replays job traces
//! through a faithful model of the Hadoop job master's map/reduce slot
//! allocation, under a pluggable scheduling policy.
//!
//! ## Model
//!
//! * The cluster is a pool of `map_slots` map slots and `reduce_slots`
//!   reduce slots (TaskTracker internals are deliberately *not* simulated —
//!   that is SimMR's speed advantage over Mumak and MRPerf; per-task
//!   latencies come from the replayed job profiles instead).
//! * Nine event types drive the simulation: the paper's seven (job
//!   arrivals/departures, map and reduce task arrivals/departures, and
//!   `AllMapsFinished`) plus `HostFailure` and `SpeculationDue` from the
//!   failure/speculation model.
//! * Reduce tasks launched before a job's map stage completes are **filler
//!   tasks of infinite duration**; when `AllMapsFinished` fires their
//!   duration is rewritten to the profile's *non-overlapping first-shuffle*
//!   duration plus the reduce-phase duration. Later-wave reduce tasks use
//!   *typical shuffle* + reduce durations directly. This is the shuffle
//!   modeling that Mumak lacks (§IV-A).
//! * Reduce scheduling for a job begins once `min_map_percent_completed`
//!   of its maps have finished (Hadoop's "slowstart", §III-B).
//!
//! ## Failure and speculation model
//!
//! [`EngineConfig`] optionally stripes the slot pools over worker hosts
//! ([`simmr_types::ClusterSpec::with_hosts`]) and enables three
//! perturbations (see `DESIGN.md` §2.3):
//!
//! * **Host failures** — a seeded [`FaultSpec`] (or an explicit
//!   [`HostFailure`] plan via [`SimulatorEngine::with_fault_plan`])
//!   removes hosts: their slots leave the pools, running attempts are
//!   killed and requeued, and completed map outputs stored there are
//!   re-executed while the owning job's map stage is open. An optional
//!   seeded [`RecoverySpec`] brings each failed host back after an
//!   exponential downtime (failures are otherwise permanent for the run).
//! * **Speculative execution** — [`EngineConfig::with_speculation`] arms a
//!   straggler timer per map attempt; an attempt outliving `factor ×` the
//!   job's median map duration gets a duplicate, and the first finisher
//!   wins (losers are killed).
//! * **Per-slot slowdowns** — [`SlowdownSpec`] scales every task duration
//!   on a slot by a factor sampled once per slot, which is what creates
//!   stragglers for speculation to chase.
//!
//! All three are deterministic: byte-identical reports across same-seed
//! reruns.
//!
//! ## Runtime invariant checking
//!
//! [`EngineConfig::with_invariants`] arms an opt-in checker (see
//! `crates/core/src/invariants.rs`) that re-derives the engine's redundant
//! incremental state from first principles after every settled event batch:
//! slot conservation, per-job counter consistency against the policy-visible
//! [`JobEntry`] view (with field-level diff messages on divergence),
//! event-time monotonicity, per-slot timeline disjointness, dirty-flag
//! coverage of queue mutations, and end-of-run report accounting. The
//! `check-invariants` cargo feature forces it on for every engine (CI runs
//! the test suite once that way). Disabled — the default — the hot path
//! carries only a `None` check per event batch.
//!
//! ## Scheduling interface
//!
//! The engine talks to policies through the paper's narrow two-function
//! interface ([`SchedulerPolicy::choose_next_map_task`] /
//! [`SchedulerPolicy::choose_next_reduce_task`]), receiving a snapshot of
//! the job queue and returning the job whose task should run next.
//!
//! ```
//! use simmr_core::{EngineConfig, SimulatorEngine, SchedulerPolicy, JobQueue};
//! use simmr_types::{JobId, JobSpec, JobTemplate, SimTime, WorkloadTrace};
//!
//! /// Minimal FIFO: earliest-arrived job with a pending task.
//! struct Fifo;
//! impl SchedulerPolicy for Fifo {
//!     fn name(&self) -> &'static str { "fifo" }
//!     fn choose_next_map_task(&mut self, q: &JobQueue) -> Option<JobId> {
//!         q.entries().iter().filter(|e| e.pending_maps > 0)
//!             .min_by_key(|e| (e.arrival, e.id)).map(|e| e.id)
//!     }
//!     fn choose_next_reduce_task(&mut self, q: &JobQueue) -> Option<JobId> {
//!         q.entries().iter().filter(|e| e.reduce_eligible && e.pending_reduces > 0)
//!             .min_by_key(|e| (e.arrival, e.id)).map(|e| e.id)
//!     }
//! }
//!
//! let template = JobTemplate::new("wc", vec![1000; 8], vec![500], vec![600; 4], vec![300; 4]).unwrap();
//! let mut trace = WorkloadTrace::new("demo", "doc-test");
//! trace.push(JobSpec::new(template, SimTime::ZERO));
//!
//! let report = SimulatorEngine::new(EngineConfig::new(4, 2), &trace, Box::new(Fifo)).run();
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].completion > SimTime::ZERO);
//! ```

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod event;
mod invariants;
pub mod jobq;
pub mod queue;
pub mod source;

pub use checkpoint::{
    fork_sweep, CkptError, Divergence, EngineCheckpoint, ForkSpec, CKPT_MAGIC, CKPT_VERSION,
};
pub use config::{EngineConfig, FaultSpec, RecoverySpec, SlowdownSpec};
pub use engine::{HostFailure, SimulatorEngine};
pub use event::{Event, EventKind};
pub use jobq::{JobEntry, JobQueue, SchedulerPolicy};
pub use queue::EventQueue;
pub use source::{JobSource, SourceError, SourcedJob, TraceJobSource};
