//! Time-travel checkpoints: serializable engine snapshots and scenario
//! forking.
//!
//! SimMR's value proposition is cheap replay-based what-if analysis, but a
//! sweep whose variants only diverge late in the trace still replays the
//! shared prefix once per variant. An [`EngineCheckpoint`] captures the
//! full deterministic state of a run at a settled batch boundary — the
//! event heap (with per-event insertion sequence numbers, so same-time
//! ties keep breaking identically), the clock, the job table, slot and
//! host state, the derived fault/slowdown plans, and the policy's own
//! state through [`crate::SchedulerPolicy::snapshot`]. Resuming it
//! continues the run **byte-identically** to never having stopped; a
//! [`ForkSpec`] applies a divergence at the boundary instead, and
//! [`fork_sweep`] runs the shared prefix once and fans the suffixes out in
//! parallel.
//!
//! # Binary format
//!
//! `SIMMRCKP` magic + `u16` version + little-endian body + trailing
//! CRC-64/XZ over everything before it, mirroring the SIMMRBIN trace
//! format's layout and typed-error discipline (`simmr_trace::binfmt`).
//! The CRC-64 is implemented locally because the dependency runs the
//! other way (`simmr-trace` depends on this crate). Encoding is
//! canonical: `encode(decode(bytes)) == bytes` for any accepted input,
//! which is what lets the serve layer memoize *encoded* checkpoints and
//! key caches on their digest.
//!
//! # What is *not* stored
//!
//! Live RNG state — there is none. Every seeded draw (slot slowdowns, the
//! fault plan, recovery downtimes) happens before the first event pops,
//! and the checkpoint stores the derived artifacts (factor vectors, the
//! plan, the already-queued recovery events) instead of generator state.
//! Policy state that is derivable from the queue (routing tables,
//! wanted-slot caps, deadline-index membership, share counters) is also
//! not stored: restore replays the arrival hooks over the live queue and
//! rebuilds it, and the policy blob carries only what replay cannot (see
//! [`crate::SchedulerPolicy::restore`]).

use crate::engine::{HostFailure, JobState, RunningMap, RunningReduce};
use crate::event::{Event, EventKind};
use crate::{EngineConfig, SchedulerPolicy, SimulatorEngine};
use simmr_stats::parallel_sweep;
use simmr_types::{
    HostId, JobId, JobResult, JobSpec, JobTemplate, SimTime, SimulationReport, TimelineEntry,
    TimelinePhase, WorkloadTrace,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Magic bytes opening every serialized checkpoint.
pub const CKPT_MAGIC: &[u8; 8] = b"SIMMRCKP";
/// Current checkpoint format version.
pub const CKPT_VERSION: u16 = 1;

/// Why a checkpoint failed to decode or resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The buffer does not start with [`CKPT_MAGIC`].
    BadMagic,
    /// The format version is not [`CKPT_VERSION`].
    BadVersion(u16),
    /// The buffer ends before the structure it promises.
    Truncated,
    /// The trailing CRC-64 does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the buffer.
        expected: u64,
        /// Checksum recomputed over the body.
        actual: u64,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// The bytes parse but describe an impossible state (unknown event
    /// kind, invalid template, out-of-range tag).
    Malformed(String),
    /// The checkpoint is valid but incompatible with what the caller
    /// offered at resume time (wrong cluster shape, wrong policy, a
    /// policy blob that does not match the rebuilt state).
    Mismatch(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a SIMMRCKP checkpoint (bad magic)"),
            CkptError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {CKPT_VERSION})")
            }
            CkptError::Truncated => write!(f, "checkpoint data is truncated"),
            CkptError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            CkptError::BadUtf8 => write!(f, "checkpoint contains an invalid UTF-8 string"),
            CkptError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CkptError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

// CRC-64/XZ (ECMA-182 polynomial, reflected, init/xor-out all-ones) —
// the same parameterization `simmr_trace::digest` uses for trace digests.
const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u64;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xC96C_5795_D787_0F42 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc64(bytes: &[u8]) -> u64 {
    let mut c = u64::MAX;
    for &b in bytes {
        c = CRC64_TABLE[((c ^ b as u64) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u64::MAX
}

/// A serializable snapshot of a [`SimulatorEngine`] at a settled batch
/// boundary. Captured by [`SimulatorEngine::checkpoint_at`]; resumed by
/// [`SimulatorEngine::resume_materialized`] /
/// [`SimulatorEngine::resume_with_source`]; forked by
/// [`SimulatorEngine::apply_fork`] or driven wholesale by [`fork_sweep`].
pub struct EngineCheckpoint {
    /// The requested checkpoint instant.
    pub(crate) at: SimTime,
    /// The actual boundary: time of the last settled batch ≤ `at`.
    pub(crate) clock: SimTime,
    pub(crate) map_slots: usize,
    pub(crate) reduce_slots: usize,
    pub(crate) hosts: usize,
    /// Captured from a streaming engine (resume needs a fresh source).
    pub(crate) streaming: bool,
    /// The run collects per-job results.
    pub(crate) collected: bool,
    pub(crate) jobq_dirty: bool,
    /// Pending events in `(time, seq)` order, original seqs preserved.
    pub(crate) events: Vec<Event>,
    pub(crate) next_seq: u64,
    pub(crate) pushed: u64,
    pub(crate) last_pulled_arrival: SimTime,
    pub(crate) jobs_base: usize,
    pub(crate) jobs: Vec<Option<JobState>>,
    pub(crate) free_map_slots: Vec<u32>,
    pub(crate) free_reduce_slots: Vec<u32>,
    pub(crate) dead_hosts: Vec<bool>,
    pub(crate) dead_map_slots: Vec<bool>,
    pub(crate) dead_reduce_slots: Vec<bool>,
    pub(crate) fault_plan: Vec<HostFailure>,
    pub(crate) map_slowdown: Vec<f64>,
    pub(crate) reduce_slowdown: Vec<f64>,
    pub(crate) policy_wakeup_at: Option<SimTime>,
    pub(crate) events_processed: u64,
    pub(crate) makespan: SimTime,
    pub(crate) timeline: Vec<TimelineEntry>,
    pub(crate) results: Vec<Option<JobResult>>,
    pub(crate) policy_name: String,
    pub(crate) policy_blob: Vec<u8>,
}

impl EngineCheckpoint {
    /// The requested checkpoint instant.
    pub fn at(&self) -> SimTime {
        self.at
    }

    /// The actual boundary: the last settled batch at or before
    /// [`Self::at`] (every pending event is strictly later).
    pub fn boundary(&self) -> SimTime {
        self.clock
    }

    /// Name of the policy that was scheduling when the snapshot was taken.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// Jobs admitted so far (live, departed, and — for materialized
    /// engines — future arrivals already in the table).
    pub fn jobs_admitted(&self) -> usize {
        self.jobs_base + self.jobs.len()
    }

    /// Events still pending in the snapshot's heap.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Events the run had processed up to the boundary.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// CRC-64/XZ content digest of the canonical encoding — the identity
    /// the serve layer keys warm-start cache entries on.
    pub fn digest(&self) -> u64 {
        crc64(&self.encode())
    }

    /// Serializes the checkpoint to its canonical binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.events.len() * 29 + self.jobs.len() * 64);
        out.extend_from_slice(CKPT_MAGIC);
        put_u16(&mut out, CKPT_VERSION);
        put_u64(&mut out, self.at.as_millis());
        put_u64(&mut out, self.clock.as_millis());
        put_u32(&mut out, self.map_slots as u32);
        put_u32(&mut out, self.reduce_slots as u32);
        put_u32(&mut out, self.hosts as u32);
        let flags =
            (self.streaming as u8) | (self.collected as u8) << 1 | (self.jobq_dirty as u8) << 2;
        out.push(flags);
        put_u64(&mut out, self.last_pulled_arrival.as_millis());
        put_opt_time(&mut out, self.policy_wakeup_at);
        put_u64(&mut out, self.events_processed);
        put_u64(&mut out, self.makespan.as_millis());
        put_u64(&mut out, self.next_seq);
        put_u64(&mut out, self.pushed);
        put_u32(&mut out, self.events.len() as u32);
        for e in &self.events {
            put_u64(&mut out, e.time.as_millis());
            put_u64(&mut out, e.seq);
            out.push(event_kind_tag(e.kind));
            put_u32(&mut out, e.job.0);
            put_u32(&mut out, e.task_index);
            put_u32(&mut out, e.attempt);
        }
        put_u32_vec(&mut out, &self.free_map_slots);
        put_u32_vec(&mut out, &self.free_reduce_slots);
        put_bool_vec(&mut out, &self.dead_hosts);
        put_bool_vec(&mut out, &self.dead_map_slots);
        put_bool_vec(&mut out, &self.dead_reduce_slots);
        put_u32(&mut out, self.fault_plan.len() as u32);
        for f in &self.fault_plan {
            put_u32(&mut out, f.host.0);
            put_u64(&mut out, f.at.as_millis());
        }
        put_f64_vec(&mut out, &self.map_slowdown);
        put_f64_vec(&mut out, &self.reduce_slowdown);
        // Templates are content-interned in first-appearance order over
        // the job table, so re-encoding a decoded checkpoint reproduces
        // the table byte for byte.
        let mut template_bytes: Vec<Vec<u8>> = Vec::new();
        let mut template_ids: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut job_template: Vec<u32> = Vec::with_capacity(self.jobs.len());
        for job in self.jobs.iter().flatten() {
            let enc = encode_template(&job.template);
            let next = template_bytes.len() as u32;
            let id = *template_ids.entry(enc.clone()).or_insert_with(|| {
                template_bytes.push(enc);
                next
            });
            job_template.push(id);
        }
        put_u32(&mut out, template_bytes.len() as u32);
        for t in &template_bytes {
            out.extend_from_slice(t);
        }
        put_u64(&mut out, self.jobs_base as u64);
        put_u32(&mut out, self.jobs.len() as u32);
        let mut live = 0usize;
        for job in &self.jobs {
            match job {
                None => out.push(0),
                Some(state) => {
                    out.push(1);
                    let tid = job_template[live];
                    live += 1;
                    encode_job(&mut out, state, tid);
                }
            }
        }
        put_u32(&mut out, self.timeline.len() as u32);
        for bar in &self.timeline {
            put_u32(&mut out, bar.job.0);
            out.push(bar.phase as u8);
            put_u32(&mut out, bar.slot);
            put_u64(&mut out, bar.start.as_millis());
            put_u64(&mut out, bar.end.as_millis());
        }
        put_u32(&mut out, self.results.len() as u32);
        for r in &self.results {
            match r {
                None => out.push(0),
                Some(res) => {
                    out.push(1);
                    put_u32(&mut out, res.job.0);
                    put_str(&mut out, &res.name);
                    put_u64(&mut out, res.arrival.as_millis());
                    put_opt_time(&mut out, res.first_map_start);
                    put_opt_time(&mut out, res.maps_finished);
                    put_u64(&mut out, res.completion.as_millis());
                    put_opt_time(&mut out, res.deadline);
                    put_u32(&mut out, res.num_maps as u32);
                    put_u32(&mut out, res.num_reduces as u32);
                }
            }
        }
        put_str(&mut out, &self.policy_name);
        put_u32(&mut out, self.policy_blob.len() as u32);
        out.extend_from_slice(&self.policy_blob);
        let crc = crc64(&out);
        put_u64(&mut out, crc);
        out
    }

    /// Decodes a checkpoint, verifying magic, version, and the trailing
    /// CRC-64 before parsing the body.
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        if bytes.len() < CKPT_MAGIC.len() + 2 + 8 {
            if bytes.len() >= CKPT_MAGIC.len() && &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
                return Err(CkptError::BadMagic);
            }
            return Err(CkptError::Truncated);
        }
        if &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
            return Err(CkptError::BadMagic);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let expected = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let actual = crc64(body);
        if expected != actual {
            return Err(CkptError::ChecksumMismatch { expected, actual });
        }
        let mut c = Cursor { buf: body, pos: CKPT_MAGIC.len() };
        let version = c.u16()?;
        if version != CKPT_VERSION {
            return Err(CkptError::BadVersion(version));
        }
        let at = SimTime::from_millis(c.u64()?);
        let clock = SimTime::from_millis(c.u64()?);
        let map_slots = c.u32()? as usize;
        let reduce_slots = c.u32()? as usize;
        let hosts = c.u32()? as usize;
        let flags = c.u8()?;
        if flags & !0b111 != 0 {
            return Err(CkptError::Malformed(format!("unknown flag bits {flags:#04x}")));
        }
        let streaming = flags & 1 != 0;
        let collected = flags & 2 != 0;
        let jobq_dirty = flags & 4 != 0;
        let last_pulled_arrival = SimTime::from_millis(c.u64()?);
        let policy_wakeup_at = c.opt_time()?;
        let events_processed = c.u64()?;
        let makespan = SimTime::from_millis(c.u64()?);
        let next_seq = c.u64()?;
        let pushed = c.u64()?;
        let n_events = c.len_u32()?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let time = SimTime::from_millis(c.u64()?);
            let seq = c.u64()?;
            let kind = event_kind_from_tag(c.u8()?)?;
            let job = JobId(c.u32()?);
            let task_index = c.u32()?;
            let attempt = c.u32()?;
            events.push(Event { time, seq, kind, job, task_index, attempt });
        }
        let free_map_slots = c.u32_vec()?;
        let free_reduce_slots = c.u32_vec()?;
        let dead_hosts = c.bool_vec()?;
        let dead_map_slots = c.bool_vec()?;
        let dead_reduce_slots = c.bool_vec()?;
        let n_faults = c.len_u32()?;
        let mut fault_plan = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let host = HostId(c.u32()?);
            let fat = SimTime::from_millis(c.u64()?);
            fault_plan.push(HostFailure { host, at: fat });
        }
        let map_slowdown = c.f64_vec()?;
        let reduce_slowdown = c.f64_vec()?;
        let n_templates = c.len_u32()?;
        let mut templates: Vec<Arc<JobTemplate>> = Vec::with_capacity(n_templates);
        for _ in 0..n_templates {
            templates.push(Arc::new(c.template()?));
        }
        let jobs_base = c.u64()? as usize;
        let n_jobs = c.len_u32()?;
        let mut jobs: Vec<Option<JobState>> = Vec::with_capacity(n_jobs);
        for _ in 0..n_jobs {
            match c.u8()? {
                0 => jobs.push(None),
                1 => jobs.push(Some(c.job(&templates)?)),
                t => return Err(CkptError::Malformed(format!("unknown job slot tag {t}"))),
            }
        }
        let n_bars = c.len_u32()?;
        let mut timeline = Vec::with_capacity(n_bars);
        for _ in 0..n_bars {
            let job = JobId(c.u32()?);
            let phase = match c.u8()? {
                0 => TimelinePhase::Map,
                1 => TimelinePhase::Shuffle,
                2 => TimelinePhase::Reduce,
                t => return Err(CkptError::Malformed(format!("unknown timeline phase {t}"))),
            };
            let slot = c.u32()?;
            let start = SimTime::from_millis(c.u64()?);
            let end = SimTime::from_millis(c.u64()?);
            timeline.push(TimelineEntry { job, phase, slot, start, end });
        }
        let n_results = c.len_u32()?;
        let mut results: Vec<Option<JobResult>> = Vec::with_capacity(n_results);
        for _ in 0..n_results {
            match c.u8()? {
                0 => results.push(None),
                1 => {
                    let job = JobId(c.u32()?);
                    let name: Arc<str> = Arc::from(c.str()?);
                    let arrival = SimTime::from_millis(c.u64()?);
                    let first_map_start = c.opt_time()?;
                    let maps_finished = c.opt_time()?;
                    let completion = SimTime::from_millis(c.u64()?);
                    let deadline = c.opt_time()?;
                    let num_maps = c.u32()? as usize;
                    let num_reduces = c.u32()? as usize;
                    results.push(Some(JobResult {
                        job,
                        name,
                        arrival,
                        first_map_start,
                        maps_finished,
                        completion,
                        deadline,
                        num_maps,
                        num_reduces,
                    }));
                }
                t => return Err(CkptError::Malformed(format!("unknown result tag {t}"))),
            }
        }
        let policy_name = c.str()?;
        let blob_len = c.len_u32()?;
        let policy_blob = c.take(blob_len)?.to_vec();
        if c.pos != body.len() {
            return Err(CkptError::Malformed(format!(
                "{} trailing bytes after the checkpoint body",
                body.len() - c.pos
            )));
        }
        Ok(EngineCheckpoint {
            at,
            clock,
            map_slots,
            reduce_slots,
            hosts,
            streaming,
            collected,
            jobq_dirty,
            events,
            next_seq,
            pushed,
            last_pulled_arrival,
            jobs_base,
            jobs,
            free_map_slots,
            free_reduce_slots,
            dead_hosts,
            dead_map_slots,
            dead_reduce_slots,
            fault_plan,
            map_slowdown,
            reduce_slowdown,
            policy_wakeup_at,
            events_processed,
            makespan,
            timeline,
            results,
            policy_name,
            policy_blob,
        })
    }
}

/// A divergence to apply at a fork boundary. Injected events land
/// strictly after the boundary batch; see
/// [`SimulatorEngine::apply_fork`].
pub enum Divergence {
    /// Replace the scheduling policy; the new policy adopts the live
    /// queue through the same hook replay a restore uses and starts with
    /// fresh internal clocks.
    PolicySwap(Box<dyn SchedulerPolicy>),
    /// Grow the cluster by this many extra map/reduce slots; new slots
    /// join the free pools alive and at nominal speed.
    AddSlots {
        /// Extra map slots.
        map_slots: usize,
        /// Extra reduce slots.
        reduce_slots: usize,
    },
    /// Fail a host at `at` (clamped after the boundary), permanently —
    /// the injected failure has no matching recovery.
    InjectFault {
        /// The host to fail (never host 0).
        host: HostId,
        /// When it fails.
        at: SimTime,
    },
    /// Admit extra jobs; arrivals are clamped after the boundary.
    ArrivalSurge(Vec<JobSpec>),
}

impl fmt::Debug for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::PolicySwap(p) => write!(f, "PolicySwap({:?})", p.name()),
            Divergence::AddSlots { map_slots, reduce_slots } => f
                .debug_struct("AddSlots")
                .field("map_slots", map_slots)
                .field("reduce_slots", reduce_slots)
                .finish(),
            Divergence::InjectFault { host, at } => {
                f.debug_struct("InjectFault").field("host", host).field("at", at).finish()
            }
            Divergence::ArrivalSurge(jobs) => write!(f, "ArrivalSurge({} jobs)", jobs.len()),
        }
    }
}

/// A what-if fork: divergences applied at the last settled batch at or
/// before `at`.
#[derive(Debug)]
pub struct ForkSpec {
    /// The fork instant.
    pub at: SimTime,
    /// Divergences, applied in order.
    pub divergences: Vec<Divergence>,
}

impl ForkSpec {
    /// A fork applying `divergences` at `at`.
    pub fn new(at: SimTime, divergences: Vec<Divergence>) -> Self {
        ForkSpec { at, divergences }
    }
}

/// Runs the shared prefix of `trace` once under `prefix_policy` up to
/// `at`, then fans `variants` forked suffixes out over all cores via
/// [`simmr_stats::parallel_sweep`].
///
/// `make(i)` builds variant `i` inside its worker thread: a fresh policy
/// of the *prefix* kind (checkpoints only resume under the policy that
/// captured them — swaps are a [`Divergence::PolicySwap`]) plus the fork
/// to apply. Reports come back in variant order, each byte-identical to
/// a from-scratch [`SimulatorEngine::run_forked`] of the same fork.
pub fn fork_sweep<F>(
    config: EngineConfig,
    trace: &WorkloadTrace,
    prefix_policy: Box<dyn SchedulerPolicy + '_>,
    at: SimTime,
    variants: usize,
    make: F,
) -> Result<Vec<SimulationReport>, CkptError>
where
    F: Fn(usize) -> (Box<dyn SchedulerPolicy>, ForkSpec) + Sync,
{
    let ckpt = SimulatorEngine::new(config, trace, prefix_policy)
        .checkpoint_at(at)
        .map_err(|e| CkptError::Mismatch(e.to_string()))?;
    let ckpt = &ckpt;
    parallel_sweep(variants, |i| {
        let (policy, fork) = make(i);
        let mut engine = SimulatorEngine::resume_materialized(config, ckpt, policy)?;
        engine.apply_fork(fork)?;
        engine.try_run().map_err(|e| CkptError::Mismatch(e.to_string()))
    })
    .into_iter()
    .collect()
}

fn event_kind_tag(kind: EventKind) -> u8 {
    match kind {
        EventKind::JobArrival => 0,
        EventKind::JobDeparture => 1,
        EventKind::MapTaskArrival => 2,
        EventKind::MapTaskDeparture => 3,
        EventKind::ReduceTaskArrival => 4,
        EventKind::ReduceTaskDeparture => 5,
        EventKind::AllMapsFinished => 6,
        EventKind::HostFailure => 7,
        EventKind::SpeculationDue => 8,
        EventKind::HostRecovery => 9,
        EventKind::PolicyWakeup => 10,
    }
}

fn event_kind_from_tag(tag: u8) -> Result<EventKind, CkptError> {
    Ok(match tag {
        0 => EventKind::JobArrival,
        1 => EventKind::JobDeparture,
        2 => EventKind::MapTaskArrival,
        3 => EventKind::MapTaskDeparture,
        4 => EventKind::ReduceTaskArrival,
        5 => EventKind::ReduceTaskDeparture,
        6 => EventKind::AllMapsFinished,
        7 => EventKind::HostFailure,
        8 => EventKind::SpeculationDue,
        9 => EventKind::HostRecovery,
        10 => EventKind::PolicyWakeup,
        t => return Err(CkptError::Malformed(format!("unknown event kind tag {t}"))),
    })
}

// ---- little-endian write helpers ----------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_time(out: &mut Vec<u8>, t: Option<SimTime>) {
    match t {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_u64(out, t.as_millis());
        }
    }
}

fn put_u32_vec(out: &mut Vec<u8>, v: &[u32]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u32(out, x);
    }
}

fn put_u64_vec(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u64(out, x);
    }
}

fn put_bool_vec(out: &mut Vec<u8>, v: &[bool]) {
    put_u32(out, v.len() as u32);
    out.extend(v.iter().map(|&b| b as u8));
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u64(out, x.to_bits());
    }
}

fn encode_template(t: &JobTemplate) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_str(&mut out, &t.name);
    put_u32(&mut out, t.num_maps as u32);
    put_u32(&mut out, t.num_reduces as u32);
    put_u64_vec(&mut out, &t.map_durations);
    put_u64_vec(&mut out, &t.first_shuffle_durations);
    put_u64_vec(&mut out, &t.typical_shuffle_durations);
    put_u64_vec(&mut out, &t.reduce_durations);
    out
}

fn encode_job(out: &mut Vec<u8>, s: &JobState, template_id: u32) {
    put_u32(out, template_id);
    put_u64(out, s.arrival.as_millis());
    put_opt_time(out, s.deadline);
    put_u32(out, s.maps_total as u32);
    put_u32(out, s.reduces_total as u32);
    put_u32(out, s.fresh_maps as u32);
    put_u32_vec(out, &s.requeued_maps);
    put_u32(out, s.running_map_list.len() as u32);
    for r in &s.running_map_list {
        put_u32(out, r.idx);
        put_u32(out, r.attempt);
        put_u64(out, r.start.as_millis());
        put_u32(out, r.slot);
    }
    put_u32_vec(out, &s.map_gen);
    put_bool_vec(out, &s.map_done);
    put_u32_vec(out, &s.map_done_slot);
    put_u32(out, s.maps_completed as u32);
    put_u32(out, s.fresh_reduces as u32);
    put_u32_vec(out, &s.requeued_reduces);
    put_u32(out, s.running_reduce_list.len() as u32);
    for r in &s.running_reduce_list {
        put_u32(out, r.idx);
        put_u32(out, r.attempt);
        put_u64(out, r.start.as_millis());
        put_u32(out, r.slot);
        put_u64(out, r.shuffle_end.as_millis());
    }
    put_u32_vec(out, &s.reduce_gen);
    put_u32(out, s.reduces_completed as u32);
    put_u32(out, s.reduce_threshold as u32);
    out.push(s.active as u8);
    put_opt_time(out, s.first_map_start);
    put_opt_time(out, s.maps_finished);
    put_u64(out, s.spec_threshold);
    put_bool_vec(out, &s.speculated);
    put_u32_vec(out, &s.spec_pending);
}

// ---- bounds-checked read cursor ------------------------------------------

struct Cursor<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Cursor<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated)?;
        if end > self.buf.len() {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A `u32` length prefix, sanity-capped against the bytes remaining
    /// so a corrupted length cannot trigger a huge allocation.
    fn len_u32(&mut self) -> Result<usize, CkptError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(CkptError::Truncated);
        }
        Ok(n)
    }

    fn opt_time(&mut self) -> Result<Option<SimTime>, CkptError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(SimTime::from_millis(self.u64()?))),
            t => Err(CkptError::Malformed(format!("unknown option tag {t}"))),
        }
    }

    fn str(&mut self) -> Result<String, CkptError> {
        let n = self.len_u32()?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| CkptError::BadUtf8)
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, CkptError> {
        let n = self.len_u32()?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>, CkptError> {
        let n = self.len_u32()?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn bool_vec(&mut self) -> Result<Vec<bool>, CkptError> {
        let n = self.len_u32()?;
        self.take(n)?
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                t => Err(CkptError::Malformed(format!("non-boolean byte {t}"))),
            })
            .collect()
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, CkptError> {
        let n = self.len_u32()?;
        (0..n).map(|_| Ok(f64::from_bits(self.u64()?))).collect()
    }

    fn template(&mut self) -> Result<JobTemplate, CkptError> {
        let name: Arc<str> = Arc::from(self.str()?);
        let num_maps = self.u32()? as usize;
        let num_reduces = self.u32()? as usize;
        let map_durations = self.u64_vec()?;
        let first_shuffle_durations = self.u64_vec()?;
        let typical_shuffle_durations = self.u64_vec()?;
        let reduce_durations = self.u64_vec()?;
        let t = JobTemplate {
            name,
            num_maps,
            num_reduces,
            map_durations,
            first_shuffle_durations,
            typical_shuffle_durations,
            reduce_durations,
        };
        t.validate().map_err(|e| CkptError::Malformed(format!("invalid job template: {e}")))?;
        Ok(t)
    }

    fn job(&mut self, templates: &[Arc<JobTemplate>]) -> Result<JobState, CkptError> {
        let tid = self.u32()? as usize;
        let template = templates
            .get(tid)
            .ok_or_else(|| {
                CkptError::Malformed(format!(
                    "job names template {tid} of {} interned",
                    templates.len()
                ))
            })?
            .clone();
        let arrival = SimTime::from_millis(self.u64()?);
        let deadline = self.opt_time()?;
        let maps_total = self.u32()? as usize;
        let reduces_total = self.u32()? as usize;
        let fresh_maps = self.u32()? as usize;
        let requeued_maps = self.u32_vec()?;
        let n_rm = self.len_u32()?;
        let mut running_map_list = Vec::with_capacity(n_rm);
        for _ in 0..n_rm {
            let idx = self.u32()?;
            let attempt = self.u32()?;
            let start = SimTime::from_millis(self.u64()?);
            let slot = self.u32()?;
            running_map_list.push(RunningMap { idx, attempt, start, slot });
        }
        let map_gen = self.u32_vec()?;
        let map_done = self.bool_vec()?;
        let map_done_slot = self.u32_vec()?;
        let maps_completed = self.u32()? as usize;
        let fresh_reduces = self.u32()? as usize;
        let requeued_reduces = self.u32_vec()?;
        let n_rr = self.len_u32()?;
        let mut running_reduce_list = Vec::with_capacity(n_rr);
        for _ in 0..n_rr {
            let idx = self.u32()?;
            let attempt = self.u32()?;
            let start = SimTime::from_millis(self.u64()?);
            let slot = self.u32()?;
            let shuffle_end = SimTime::from_millis(self.u64()?);
            running_reduce_list.push(RunningReduce { idx, attempt, start, slot, shuffle_end });
        }
        let reduce_gen = self.u32_vec()?;
        let reduces_completed = self.u32()? as usize;
        let reduce_threshold = self.u32()? as usize;
        let active = match self.u8()? {
            0 => false,
            1 => true,
            t => return Err(CkptError::Malformed(format!("non-boolean active byte {t}"))),
        };
        let first_map_start = self.opt_time()?;
        let maps_finished = self.opt_time()?;
        let spec_threshold = self.u64()?;
        let speculated = self.bool_vec()?;
        let spec_pending = self.u32_vec()?;
        if map_gen.len() != maps_total
            || map_done.len() != maps_total
            || map_done_slot.len() != maps_total
            || speculated.len() != maps_total
            || reduce_gen.len() != reduces_total
        {
            return Err(CkptError::Malformed(format!(
                "job task-vector lengths disagree with totals ({maps_total} maps, \
                 {reduces_total} reduces)"
            )));
        }
        Ok(JobState {
            template,
            arrival,
            deadline,
            maps_total,
            reduces_total,
            fresh_maps,
            requeued_maps,
            running_map_list,
            map_gen,
            map_done,
            map_done_slot,
            maps_completed,
            fresh_reduces,
            requeued_reduces,
            running_reduce_list,
            reduce_gen,
            reduces_completed,
            reduce_threshold,
            active,
            first_map_start,
            maps_finished,
            spec_threshold,
            speculated,
            spec_pending,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceJobSource;
    use crate::{FaultSpec, RecoverySpec};
    use simmr_stats::Dist;
    use simmr_types::{JobId, JobTemplate};

    /// Minimal FIFO — the checkpoint layer must not depend on simmr-sched.
    struct TestFifo;
    impl SchedulerPolicy for TestFifo {
        fn name(&self) -> &str {
            "test-fifo"
        }
        fn choose_next_map_task(&mut self, q: &crate::JobQueue) -> Option<JobId> {
            q.entries()
                .iter()
                .filter(|e| e.has_schedulable_map())
                .min_by_key(|e| (e.arrival, e.id))
                .map(|e| e.id)
        }
        fn choose_next_reduce_task(&mut self, q: &crate::JobQueue) -> Option<JobId> {
            q.entries()
                .iter()
                .filter(|e| e.has_schedulable_reduce())
                .min_by_key(|e| (e.arrival, e.id))
                .map(|e| e.id)
        }
    }

    fn job(maps: usize, reduces: usize, ms: u64, arrival: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new(
                "ckpt-test",
                vec![ms; maps],
                if reduces > 0 { vec![ms] } else { vec![] },
                if reduces > 0 { vec![ms / 2 + 1; reduces] } else { vec![] },
                vec![ms; reduces],
            )
            .unwrap(),
            SimTime::from_millis(arrival),
        )
    }

    fn busy_trace() -> WorkloadTrace {
        let mut trace = WorkloadTrace::new("ckpt", "test");
        for i in 0..6 {
            trace.push(job(3 + i % 3, 2, 40 + 7 * i as u64, 55 * i as u64));
        }
        trace
    }

    fn busy_config() -> EngineConfig {
        EngineConfig::new(3, 2)
            .with_hosts(4)
            .with_timeline()
            .with_invariants()
            .with_faults(FaultSpec { seed: 11, count: 2, mean_interval_ms: 120 })
            .with_recovery(RecoverySpec { seed: 12, mean_ms: 90 })
            .with_speculation(1.5)
            .with_slowdown(Dist::Exponential { mean: 1.2 }, 13)
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ check value, same parameterization as trace digests.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn encode_decode_encode_is_identity() {
        let trace = busy_trace();
        let ckpt = SimulatorEngine::new(busy_config(), &trace, Box::new(TestFifo))
            .checkpoint_at(SimTime::from_millis(150))
            .unwrap();
        let bytes = ckpt.encode();
        let decoded = EngineCheckpoint::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes);
        assert_eq!(decoded.digest(), ckpt.digest());
        assert!(ckpt.pending_events() > 0);
        assert!(ckpt.boundary() <= ckpt.at());
    }

    #[test]
    fn resume_materialized_matches_uninterrupted() {
        let trace = busy_trace();
        let config = busy_config();
        let full = SimulatorEngine::new(config, &trace, Box::new(TestFifo)).try_run().unwrap();
        for at in [0u64, 90, 151, 400, 100_000] {
            let ckpt = SimulatorEngine::new(config, &trace, Box::new(TestFifo))
                .checkpoint_at(SimTime::from_millis(at))
                .unwrap();
            // round-trip through bytes so the codec is on the hot path
            let ckpt = EngineCheckpoint::decode(&ckpt.encode()).unwrap();
            let resumed = SimulatorEngine::resume_materialized(config, &ckpt, Box::new(TestFifo))
                .unwrap()
                .try_run()
                .unwrap();
            assert_eq!(resumed, full, "divergence resuming from t={at}");
        }
    }

    #[test]
    fn resume_streaming_matches_uninterrupted() {
        let trace = busy_trace();
        let config = busy_config();
        let full = SimulatorEngine::from_source(
            config,
            Box::new(TraceJobSource::new(&trace)),
            Box::new(TestFifo),
        )
        .try_run()
        .unwrap();
        let ckpt = SimulatorEngine::from_source(
            config,
            Box::new(TraceJobSource::new(&trace)),
            Box::new(TestFifo),
        )
        .checkpoint_at(SimTime::from_millis(140))
        .unwrap();
        let ckpt = EngineCheckpoint::decode(&ckpt.encode()).unwrap();
        let resumed = SimulatorEngine::resume_with_source(
            config,
            &ckpt,
            Box::new(TraceJobSource::new(&trace)),
            Box::new(TestFifo),
        )
        .unwrap()
        .try_run()
        .unwrap();
        assert_eq!(resumed, full);
        // a materialized resume of a streaming checkpoint is refused
        let err = SimulatorEngine::resume_materialized(config, &ckpt, Box::new(TestFifo))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, CkptError::Mismatch(_)), "{err}");
    }

    #[test]
    fn fork_sweep_matches_from_scratch_forks() {
        let trace = busy_trace();
        let config = busy_config();
        let at = SimTime::from_millis(160);
        let fork_for = |i: usize| {
            ForkSpec::new(
                at,
                match i {
                    0 => vec![Divergence::AddSlots { map_slots: 2, reduce_slots: 1 }],
                    1 => vec![Divergence::InjectFault {
                        host: HostId(2),
                        at: SimTime::from_millis(10), // before the boundary: clamped
                    }],
                    _ => vec![
                        Divergence::ArrivalSurge(vec![job(4, 1, 30, 100)]),
                        Divergence::AddSlots { map_slots: 0, reduce_slots: 1 },
                    ],
                },
            )
        };
        let swept = fork_sweep(config, &trace, Box::new(TestFifo), at, 3, |i| {
            (Box::new(TestFifo) as Box<dyn SchedulerPolicy>, fork_for(i))
        })
        .unwrap();
        for (i, report) in swept.iter().enumerate() {
            let reference = SimulatorEngine::new(config, &trace, Box::new(TestFifo))
                .run_forked(fork_for(i))
                .unwrap();
            assert_eq!(report, &reference, "variant {i} diverged from its reference");
        }
        // forks actually change the outcome vs the unforked run
        let base = SimulatorEngine::new(config, &trace, Box::new(TestFifo)).try_run().unwrap();
        assert_ne!(swept[2].jobs.len(), base.jobs.len());
    }

    #[test]
    fn decode_rejects_corruption() {
        let trace = busy_trace();
        let ckpt = SimulatorEngine::new(busy_config(), &trace, Box::new(TestFifo))
            .checkpoint_at(SimTime::from_millis(100))
            .unwrap();
        let bytes = ckpt.encode();

        let decode_err = |b: &[u8]| EngineCheckpoint::decode(b).map(|_| ()).unwrap_err();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_err(&bad_magic), CkptError::BadMagic);

        assert_eq!(decode_err(&bytes[..4]), CkptError::Truncated);
        assert_eq!(
            decode_err(&bytes[..bytes.len() - 9]),
            CkptError::ChecksumMismatch {
                expected: u64::from_le_bytes(
                    bytes[bytes.len() - 17..bytes.len() - 9].try_into().unwrap()
                ),
                actual: crc64(&bytes[..bytes.len() - 17]),
            }
        );

        let mut flipped = bytes.clone();
        flipped[40] ^= 0x10;
        assert!(matches!(decode_err(&flipped), CkptError::ChecksumMismatch { .. }));

        // bump the version and re-sign: the version check must fire
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 0xFF;
        let body_len = wrong_version.len() - 8;
        let crc = crc64(&wrong_version[..body_len]);
        wrong_version[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_err(&wrong_version), CkptError::BadVersion(0x00FF));
    }

    #[test]
    fn resume_rejects_mismatched_shape() {
        let trace = busy_trace();
        let config = busy_config();
        let ckpt = SimulatorEngine::new(config, &trace, Box::new(TestFifo))
            .checkpoint_at(SimTime::from_millis(100))
            .unwrap();
        struct OtherName;
        impl SchedulerPolicy for OtherName {
            fn name(&self) -> &str {
                "other"
            }
            fn choose_next_map_task(&mut self, _q: &crate::JobQueue) -> Option<JobId> {
                None
            }
            fn choose_next_reduce_task(&mut self, _q: &crate::JobQueue) -> Option<JobId> {
                None
            }
        }
        let err = SimulatorEngine::resume_materialized(config, &ckpt, Box::new(OtherName))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, CkptError::Mismatch(_)), "{err}");
        let err = SimulatorEngine::resume_materialized(
            EngineConfig::new(9, 9),
            &ckpt,
            Box::new(TestFifo),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, CkptError::Mismatch(_)), "{err}");
    }
}
