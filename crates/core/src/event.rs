//! Discrete events.
//!
//! The paper (§III-B): *"The simulator maintains a priority queue Q for
//! seven event types: job arrivals and departures, map and reduce task
//! arrivals and departures, and an event signaling the completion of the
//! map stage. Each event is a triplet (eventTime, eventType, jobId)."*
//!
//! The failure/speculation model (§VII future work) adds two more kinds:
//! [`EventKind::HostFailure`] for the seeded fault plan and
//! [`EventKind::SpeculationDue`] for the straggler-detection timer of a
//! running map attempt; [`EventKind::HostRecovery`] restores a failed
//! host when the optional recovery model is armed, and
//! [`EventKind::PolicyWakeup`] is the policy-requested timer behind
//! time-based scheduling (min-share preemption timeouts).

use simmr_types::{JobId, SimTime};

/// The event types of the SimMR engine: the paper's seven plus the
/// failure-model and policy-timer kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A job is submitted to the job master.
    JobArrival,
    /// A job has fully completed and leaves the system.
    JobDeparture,
    /// A map task is placed on a slot.
    MapTaskArrival,
    /// A map task finishes and frees its slot.
    MapTaskDeparture,
    /// A reduce task is placed on a slot.
    ReduceTaskArrival,
    /// A reduce task finishes and frees its slot.
    ReduceTaskDeparture,
    /// The job's entire map stage has completed (triggers the first-shuffle
    /// fix-up of filler reduce tasks).
    AllMapsFinished,
    /// A worker host is lost (`task_index` carries the host id): its
    /// slots leave the pools, attempts running on them are killed and
    /// requeued, and completed map outputs stored there are re-executed
    /// while the owning job's map stage is still open. The loss is
    /// permanent for the run unless a [`HostRecovery`](Self::HostRecovery)
    /// is scheduled for the host.
    HostFailure,
    /// A running map attempt has outlived the speculation threshold
    /// (`speculation_factor ×` the job's median map duration); if it is
    /// still running, a duplicate attempt becomes schedulable.
    SpeculationDue,
    /// A failed host comes back (`task_index` carries the host id): its
    /// surviving slots rejoin the free pools, empty. Only scheduled when
    /// [`RecoverySpec`](crate::RecoverySpec) is configured.
    HostRecovery,
    /// A scheduling pass requested by the policy via
    /// [`SchedulerPolicy::next_wakeup`](crate::SchedulerPolicy::next_wakeup)
    /// — fires time-based decisions (min-share preemption timeouts) that
    /// would otherwise wait for the next queue event.
    PolicyWakeup,
}

/// One scheduled event: the paper's `(eventTime, eventType, jobId)` triplet
/// plus a task index for task events and a tie-breaking sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone sequence number assigned at push; makes ordering total and
    /// the simulation deterministic.
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
    /// The job the event belongs to.
    pub job: JobId,
    /// Task index within the job's map or reduce stage (0 for job events).
    pub task_index: u32,
    /// Attempt generation of the task (bumped when a task is preempted and
    /// relaunched; stale departure events are ignored).
    pub attempt: u32,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u64) -> Event {
        Event {
            time: SimTime::from_millis(time),
            seq,
            kind: EventKind::JobArrival,
            job: JobId(0),
            task_index: 0,
            attempt: 0,
        }
    }

    #[test]
    fn ordering_by_time_then_seq() {
        assert!(ev(1, 5) < ev(2, 0));
        assert!(ev(1, 0) < ev(1, 1));
        assert_eq!(ev(3, 3).cmp(&ev(3, 3)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn kind_is_copy_and_hashable() {
        use std::collections::HashSet;
        let kinds: HashSet<EventKind> = [
            EventKind::JobArrival,
            EventKind::JobDeparture,
            EventKind::MapTaskArrival,
            EventKind::MapTaskDeparture,
            EventKind::ReduceTaskArrival,
            EventKind::ReduceTaskDeparture,
            EventKind::AllMapsFinished,
            EventKind::HostFailure,
            EventKind::SpeculationDue,
            EventKind::HostRecovery,
            EventKind::PolicyWakeup,
        ]
        .into_iter()
        .collect();
        assert_eq!(kinds.len(), 11);
    }
}
