//! Opt-in runtime invariant checking for the simulator engine.
//!
//! PR 1 moved engine correctness onto hand-maintained incremental counters
//! (the persistent [`crate::JobQueue`], dirty-flag pass skipping, slot
//! free-lists). The snapshot oracle ([`crate::SimulatorEngine::with_snapshot_oracle`])
//! defends the *policy-visible* view, but only in debug builds and only by
//! whole-report comparison. This module is the continuous, field-level
//! defense: after every settled event batch the engine's redundant state is
//! re-derived from first principles and cross-checked, panicking with a
//! precise diagnosis on the first divergence.
//!
//! Checked invariants:
//!
//! * **Slot conservation** — per slot kind, `free + occupied + lost =
//!   configured`; free and occupied map/reduce slot ids are unique, in
//!   range, never double-booked, and never on a failed host.
//! * **Counter consistency** — every [`crate::JobEntry`] field of every
//!   active job is re-derivable from the engine's [`JobState`]; a mismatch
//!   reports the differing fields one by one (a strict generalization of
//!   the snapshot oracle, which only detects divergence after it changes a
//!   scheduling decision). Per-job task accounting (`fresh + requeued +
//!   distinct running + done = total`, with duplicate attempts only under
//!   speculation) is verified along the way, including the speculation
//!   bookkeeping (`spec_pending` entries always shadow a live primary
//!   attempt), and the queue itself must stay sorted by `(arrival, id)`
//!   and contain exactly the active jobs.
//! * **Event-time monotonicity** — popped events never go back in time,
//!   and settled batches are strictly increasing.
//! * **Timeline disjointness (online)** — every recorded bar must start at
//!   or after the previous bar recorded for the same slot ends, checked as
//!   bars are pushed (the preempted-map phantom-bar bug class).
//! * **Dirty-flag coverage** — every policy-visible queue mutation outside
//!   a scheduling pass's own launches must leave `jobq_dirty` set, so a
//!   later pass cannot no-op against a silently changed queue (the
//!   `preempt_map` bug class).
//! * **Policy-internal state** — each settled batch also calls
//!   [`crate::SchedulerPolicy::verify_invariants`], letting stateful
//!   policies cross-check their own books against the queue (the
//!   hierarchical policy re-derives per-pool share accounting: routing
//!   stability, per-leaf job counts, and starvation-clock consistency).
//! * **Report invariants (end of run)** — all slots returned, every
//!   completion ≥ its arrival, `makespan = max completion`, and
//!   `events_processed = popped events + counted launches`.
//!
//! Enabled by [`crate::EngineConfig::with_invariants`] (runtime, any build)
//! or the `check-invariants` cargo feature (forces it for every engine —
//! CI runs the whole test suite that way). Disabled, the engine carries
//! only a `None` option and a predictable branch per event; `bench_engine`
//! guards the release hot path.

use crate::engine::SimulatorEngine;
use crate::jobq::JobEntry;
use crate::EngineConfig;
use simmr_types::{SimTime, SimulationReport, TimelineEntry, TimelinePhase};

/// Mutable state of the runtime invariant checker, owned by the engine.
#[derive(Debug)]
pub(crate) struct InvariantState {
    map_slots: usize,
    reduce_slots: usize,
    /// End of the last bar recorded per map slot.
    map_bar_end: Vec<SimTime>,
    /// End of the last bar recorded per reduce slot (shuffle and reduce
    /// bars of one task are contiguous, so a plain high-water mark works).
    reduce_bar_end: Vec<SimTime>,
    /// Time of the most recently popped event.
    last_event: Option<SimTime>,
    /// Time of the most recently settled (checked) batch.
    last_batch: Option<SimTime>,
    /// Events popped from the queue, counted independently of the engine.
    events_popped: u64,
    /// Task launches reported by the scheduling fixpoint loop.
    launches: u64,
    /// Events the run had already accounted for before this checker
    /// attached — zero for a from-scratch run, the checkpoint's event
    /// count for a resumed one, so `check_report` can still reconcile the
    /// report's total against an independent count.
    baseline_events: u64,
    /// Settled batches verified (for diagnostics).
    batches_checked: u64,
}

/// Panics with a uniformly formatted invariant-violation message.
macro_rules! violation {
    ($name:expr, $($arg:tt)*) => {
        panic!("engine invariant violated [{}]: {}", $name, format!($($arg)*))
    };
}

impl InvariantState {
    pub(crate) fn new(config: &EngineConfig) -> Self {
        InvariantState {
            map_slots: config.cluster.map_slots,
            reduce_slots: config.cluster.reduce_slots,
            map_bar_end: vec![SimTime::ZERO; config.cluster.map_slots],
            reduce_bar_end: vec![SimTime::ZERO; config.cluster.reduce_slots],
            last_event: None,
            last_batch: None,
            events_popped: 0,
            launches: 0,
            baseline_events: 0,
            batches_checked: 0,
        }
    }

    /// A checker attached to an engine resumed from a checkpoint: event
    /// accounting starts from the checkpoint's count, time monotonicity
    /// from its settled boundary (every post-resume event is strictly
    /// later), and the per-slot bar high-water marks are re-derived from
    /// the recorded timeline prefix — exactly the state the original
    /// run's checker held at the boundary.
    pub(crate) fn resume(
        config: &EngineConfig,
        baseline_events: u64,
        boundary: Option<SimTime>,
        timeline: &[TimelineEntry],
    ) -> Self {
        let mut state = InvariantState::new(config);
        state.baseline_events = baseline_events;
        state.last_event = boundary;
        state.last_batch = boundary;
        for bar in timeline {
            let ends = match bar.phase {
                TimelinePhase::Map => &mut state.map_bar_end,
                TimelinePhase::Shuffle | TimelinePhase::Reduce => &mut state.reduce_bar_end,
            };
            if let Some(end) = ends.get_mut(bar.slot as usize) {
                *end = (*end).max(bar.end);
            }
        }
        state
    }

    /// The cluster grew mid-run (the fork AddSlots divergence): widen the
    /// conservation counts and bar tables; new slots start free with no
    /// bar history.
    pub(crate) fn grow_cluster(&mut self, map_slots: usize, reduce_slots: usize) {
        self.map_slots = map_slots;
        self.reduce_slots = reduce_slots;
        self.map_bar_end.resize(map_slots, SimTime::ZERO);
        self.reduce_bar_end.resize(reduce_slots, SimTime::ZERO);
    }

    /// One event popped from the priority queue at `time`.
    pub(crate) fn on_event(&mut self, time: SimTime) {
        if let Some(prev) = self.last_event {
            if time < prev {
                violation!(
                    "event-time-monotonicity",
                    "event at {time} popped after an event at {prev}"
                );
            }
        }
        self.last_event = Some(time);
        self.events_popped += 1;
    }

    /// `n` task launches performed by one scheduling pass.
    pub(crate) fn note_launches(&mut self, n: u64) {
        self.launches += n;
    }

    /// A policy-visible queue mutation just completed at `site`; the dirty
    /// flag must cover it.
    pub(crate) fn mutation_covered(&self, dirty: bool, site: &'static str) {
        if !dirty {
            violation!(
                "dirty-flag-coverage",
                "{site} mutated the policy-visible job queue but left jobq_dirty unset; \
                 a later scheduling pass could incorrectly no-op"
            );
        }
    }

    /// A timeline bar is about to be recorded: it must not overlap the
    /// previous bar on the same slot.
    pub(crate) fn check_bar(&mut self, bar: &TimelineEntry) {
        if bar.start > bar.end {
            violation!("timeline-bar-shape", "bar {bar:?} ends before it starts");
        }
        let (kind, last_end) = match bar.phase {
            TimelinePhase::Map => ("map", &mut self.map_bar_end),
            TimelinePhase::Shuffle | TimelinePhase::Reduce => ("reduce", &mut self.reduce_bar_end),
        };
        let Some(slot_end) = last_end.get_mut(bar.slot as usize) else {
            violation!(
                "timeline-slot-range",
                "bar {bar:?} names {kind} slot {} of a {}-slot cluster",
                bar.slot,
                last_end.len()
            );
        };
        if bar.start < *slot_end {
            violation!(
                "timeline-slot-disjoint",
                "{kind} slot {}: bar {bar:?} starts before the previous bar ends at {}",
                bar.slot,
                *slot_end
            );
        }
        *slot_end = bar.end;
    }

    /// Full cross-check of the engine's redundant state at a settled
    /// instant (no further events at `now`).
    pub(crate) fn check_batch(&mut self, engine: &SimulatorEngine<'_>, now: SimTime) {
        if let Some(prev) = self.last_batch {
            if now <= prev {
                violation!(
                    "batch-monotonicity",
                    "batch settled at {now}, not after the previous batch at {prev}"
                );
            }
        }
        self.last_batch = Some(now);
        self.batches_checked += 1;
        self.check_slots(engine, now);
        self.check_entries(engine, now);
        // Stateful policies (notably the hierarchical pool tree) re-derive
        // their own share accounting against the queue they scheduled from.
        engine.policy.verify_invariants(&engine.jobq);
    }

    /// Slot conservation: `free + occupied + lost = configured` per kind;
    /// every slot id is unique (no double-booking between or within the
    /// free list and the running lists) and never on a failed host.
    fn check_slots(&self, engine: &SimulatorEngine<'_>, now: SimTime) {
        // seen[slot] marks a slot claimed by the free list or a running
        // attempt; a second claim of any flavor is a violation.
        let mut map_seen = vec![false; self.map_slots];
        for &slot in &engine.free_map_slots {
            match map_seen.get_mut(slot as usize) {
                Some(seen @ false) => *seen = true,
                Some(true) => violation!(
                    "slot-conservation",
                    "map slot {slot} appears twice in the free list at t={now}"
                ),
                None => violation!(
                    "slot-conservation",
                    "free map slot {slot} out of range (cluster has {})",
                    self.map_slots
                ),
            }
            if engine.dead_map_slots[slot as usize] {
                violation!(
                    "slot-conservation",
                    "map slot {slot} of a failed host is in the free list at t={now}"
                );
            }
        }
        let mut reduce_seen = vec![false; self.reduce_slots];
        for &slot in &engine.free_reduce_slots {
            match reduce_seen.get_mut(slot as usize) {
                Some(seen @ false) => *seen = true,
                Some(true) => violation!(
                    "slot-conservation",
                    "reduce slot {slot} appears twice in the free list at t={now}"
                ),
                None => violation!(
                    "slot-conservation",
                    "free reduce slot {slot} out of range (cluster has {})",
                    self.reduce_slots
                ),
            }
            if engine.dead_reduce_slots[slot as usize] {
                violation!(
                    "slot-conservation",
                    "reduce slot {slot} of a failed host is in the free list at t={now}"
                );
            }
        }
        let mut running_maps = 0usize;
        let mut running_reduces = 0usize;
        for (i, state) in engine.jobs.iter() {
            running_maps += state.running_map_list.len();
            running_reduces += state.running_reduce_list.len();
            for r in &state.running_map_list {
                let slot = r.slot as usize;
                match map_seen.get_mut(slot) {
                    Some(seen @ false) => *seen = true,
                    Some(true) => violation!(
                        "slot-conservation",
                        "map slot {slot} double-booked (job {i} task {} at t={now})",
                        r.idx
                    ),
                    None => violation!(
                        "slot-conservation",
                        "job {i} task {} runs on out-of-range map slot {slot} at t={now}",
                        r.idx
                    ),
                }
                if engine.dead_map_slots[slot] {
                    violation!(
                        "slot-conservation",
                        "job {i} task {} still runs on dead map slot {slot} at t={now}",
                        r.idx
                    );
                }
            }
            for r in &state.running_reduce_list {
                let slot = r.slot as usize;
                match reduce_seen.get_mut(slot) {
                    Some(seen @ false) => *seen = true,
                    Some(true) => violation!(
                        "slot-conservation",
                        "reduce slot {slot} double-booked (job {i} task {} at t={now})",
                        r.idx
                    ),
                    None => violation!(
                        "slot-conservation",
                        "job {i} task {} runs on out-of-range reduce slot {slot} at t={now}",
                        r.idx
                    ),
                }
                if engine.dead_reduce_slots[slot] {
                    violation!(
                        "slot-conservation",
                        "job {i} task {} still runs on dead reduce slot {slot} at t={now}",
                        r.idx
                    );
                }
            }
        }
        let lost_maps = engine.dead_map_slots.iter().filter(|&&d| d).count();
        let lost_reduces = engine.dead_reduce_slots.iter().filter(|&&d| d).count();
        if engine.free_map_slots.len() + running_maps + lost_maps != self.map_slots {
            violation!(
                "slot-conservation",
                "map slots at t={now}: {} free + {running_maps} running + {lost_maps} lost \
                 != {} configured",
                engine.free_map_slots.len(),
                self.map_slots
            );
        }
        if engine.free_reduce_slots.len() + running_reduces + lost_reduces != self.reduce_slots {
            violation!(
                "slot-conservation",
                "reduce slots at t={now}: {} free + {running_reduces} running + {lost_reduces} \
                 lost != {} configured",
                engine.free_reduce_slots.len(),
                self.reduce_slots
            );
        }
    }

    /// Per-job counter consistency: the policy-visible entry of every
    /// active job must be re-derivable from the engine's job state, and
    /// the queue must contain exactly the active jobs in arrival order.
    fn check_entries(&self, engine: &SimulatorEngine<'_>, now: SimTime) {
        let mut active = 0usize;
        let speculation = engine.config.speculation_factor.is_some();
        for (id, state) in engine.jobs.iter() {
            // internal task accounting before the view comparison: a task
            // may have up to two live attempts under speculation, so the
            // conservation law counts *distinct* running task indices
            let mut running_idx: Vec<u32> = state.running_map_list.iter().map(|r| r.idx).collect();
            running_idx.sort_unstable();
            let mut distinct = 0usize;
            for (k, &idx) in running_idx.iter().enumerate() {
                if k > 0 && running_idx[k - 1] == idx {
                    if !speculation {
                        violation!(
                            "task-accounting",
                            "job {id} at t={now}: map task {idx} has multiple live attempts \
                             with speculation disabled"
                        );
                    }
                    continue;
                }
                distinct += 1;
                if state.map_done[idx as usize] {
                    violation!(
                        "task-accounting",
                        "job {id} at t={now}: completed map task {idx} still has a live attempt"
                    );
                }
            }
            let fresh_left = state.maps_total - state.fresh_maps;
            let placed = fresh_left + state.requeued_maps.len() + distinct + state.maps_completed;
            if placed != state.maps_total {
                violation!(
                    "task-accounting",
                    "job {id} at t={now}: {fresh_left} fresh + {} requeued + {distinct} running \
                     + {} done != {} total maps",
                    state.requeued_maps.len(),
                    state.maps_completed,
                    state.maps_total
                );
            }
            for &idx in &state.requeued_maps {
                if state.map_done[idx as usize] {
                    violation!(
                        "task-accounting",
                        "job {id} at t={now}: requeued map task {idx} is marked done"
                    );
                }
                if running_idx.binary_search(&idx).is_ok() {
                    violation!(
                        "task-accounting",
                        "job {id} at t={now}: map task {idx} is both requeued and running"
                    );
                }
            }
            // every not-yet-launched duplicate must shadow a live primary
            for &idx in &state.spec_pending {
                if !state.speculated[idx as usize]
                    || state.map_done[idx as usize]
                    || running_idx.binary_search(&idx).is_err()
                {
                    violation!(
                        "speculation-bookkeeping",
                        "job {id} at t={now}: spec_pending map task {idx} has no live primary \
                         attempt (speculated={}, done={})",
                        state.speculated[idx as usize],
                        state.map_done[idx as usize]
                    );
                }
            }
            let done_flags = state.map_done.iter().filter(|&&d| d).count();
            if done_flags != state.maps_completed {
                violation!(
                    "task-accounting",
                    "job {id} at t={now}: {done_flags} map_done flags but maps_completed = {}",
                    state.maps_completed
                );
            }
            let fresh_left_r = state.reduces_total - state.fresh_reduces;
            let placed_r = fresh_left_r
                + state.requeued_reduces.len()
                + state.running_reduce_list.len()
                + state.reduces_completed;
            if placed_r != state.reduces_total {
                violation!(
                    "task-accounting",
                    "job {id} at t={now}: {fresh_left_r} fresh + {} requeued + {} running + {} \
                     done != {} total reduces",
                    state.requeued_reduces.len(),
                    state.running_reduce_list.len(),
                    state.reduces_completed,
                    state.reduces_total
                );
            }
            if !state.active {
                if engine.jobq.get(id).is_some() {
                    violation!(
                        "queue-membership",
                        "inactive job {id} still has a queue entry at t={now}"
                    );
                }
                continue;
            }
            active += 1;
            let expected = engine.entry_of(id);
            let Some(actual) = engine.jobq.get(id) else {
                violation!("queue-membership", "active job {id} missing from the queue at t={now}");
            };
            if let Some(diff) = diff_entries(&expected, actual) {
                violation!(
                    "counter-consistency",
                    "job {id} at t={now}: incremental entry diverged from re-derived state: {diff}"
                );
            }
        }
        if engine.jobq.len() != active {
            violation!(
                "queue-membership",
                "queue holds {} entries but {active} jobs are active at t={now}",
                engine.jobq.len()
            );
        }
        for pair in engine.jobq.entries().windows(2) {
            if (pair[0].arrival, pair[0].id) >= (pair[1].arrival, pair[1].id) {
                violation!(
                    "queue-order",
                    "queue entries out of (arrival, id) order at t={now}: {:?} before {:?}",
                    (pair[0].arrival, pair[0].id),
                    (pair[1].arrival, pair[1].id)
                );
            }
        }
    }

    /// End-of-run report invariants: every surviving slot returned free,
    /// every lost slot accounted to a failed host.
    pub(crate) fn check_report(
        &self,
        report: &SimulationReport,
        free_maps: usize,
        free_reduces: usize,
        lost_maps: usize,
        lost_reduces: usize,
    ) {
        if free_maps + lost_maps != self.map_slots
            || free_reduces + lost_reduces != self.reduce_slots
        {
            violation!(
                "slot-conservation",
                "end of run: {free_maps}+{lost_maps}/{} map and {free_reduces}+{lost_reduces}/{} \
                 reduce slots returned or lost",
                self.map_slots,
                self.reduce_slots
            );
        }
        let mut max_completion = SimTime::ZERO;
        for job in &report.jobs {
            if job.completion < job.arrival {
                violation!(
                    "report-completion",
                    "job {} completed at {} before its arrival at {}",
                    job.job,
                    job.completion,
                    job.arrival
                );
            }
            max_completion = max_completion.max(job.completion);
        }
        if !report.jobs.is_empty() && report.makespan != max_completion {
            violation!(
                "report-makespan",
                "makespan {} != max completion {max_completion}",
                report.makespan
            );
        }
        let accounted = self.baseline_events + self.events_popped + self.launches;
        if report.events_processed != accounted {
            violation!(
                "event-accounting",
                "events_processed = {} but the checker counted {} baseline + {} popped + {} \
                 launched = {accounted}",
                report.events_processed,
                self.baseline_events,
                self.events_popped,
                self.launches
            );
        }
    }
}

/// Field-by-field comparison of two job entries; `None` when identical,
/// otherwise a `field: expected X, got Y` list for the panic message.
fn diff_entries(expected: &JobEntry, actual: &JobEntry) -> Option<String> {
    macro_rules! diff {
        ($($field:ident),+ $(,)?) => {{
            let mut diffs: Vec<String> = Vec::new();
            $(
                if expected.$field != actual.$field {
                    diffs.push(format!(
                        "{}: expected {:?}, got {:?}",
                        stringify!($field), expected.$field, actual.$field
                    ));
                }
            )+
            diffs
        }};
    }
    let diffs = diff!(
        id,
        arrival,
        deadline,
        pending_maps,
        running_maps,
        completed_maps,
        total_maps,
        pending_reduces,
        running_reduces,
        completed_reduces,
        total_reduces,
        reduce_eligible,
    );
    if diffs.is_empty() {
        None
    } else {
        Some(diffs.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_types::JobId;

    fn checker(maps: usize, reduces: usize) -> InvariantState {
        InvariantState::new(&EngineConfig::new(maps, reduces))
    }

    fn bar(phase: TimelinePhase, slot: u32, start: u64, end: u64) -> TimelineEntry {
        TimelineEntry {
            job: JobId(0),
            phase,
            slot,
            start: SimTime::from_millis(start),
            end: SimTime::from_millis(end),
        }
    }

    fn entry() -> JobEntry {
        JobEntry {
            id: JobId(0),
            arrival: SimTime::ZERO,
            deadline: None,
            pending_maps: 1,
            running_maps: 2,
            completed_maps: 3,
            total_maps: 6,
            pending_reduces: 1,
            running_reduces: 0,
            completed_reduces: 0,
            total_reduces: 1,
            reduce_eligible: true,
        }
    }

    #[test]
    fn event_monotonicity_accepts_equal_times() {
        let mut inv = checker(1, 1);
        inv.on_event(SimTime::from_millis(5));
        inv.on_event(SimTime::from_millis(5));
        inv.on_event(SimTime::from_millis(9));
        assert_eq!(inv.events_popped, 3);
    }

    #[test]
    #[should_panic(expected = "event-time-monotonicity")]
    fn event_going_backwards_panics() {
        let mut inv = checker(1, 1);
        inv.on_event(SimTime::from_millis(5));
        inv.on_event(SimTime::from_millis(4));
    }

    #[test]
    #[should_panic(expected = "dirty-flag-coverage")]
    fn uncovered_mutation_panics() {
        checker(1, 1).mutation_covered(false, "preempt_map");
    }

    #[test]
    fn disjoint_bars_pass_including_contiguous_shuffle_reduce() {
        let mut inv = checker(2, 2);
        inv.check_bar(&bar(TimelinePhase::Map, 0, 0, 100));
        inv.check_bar(&bar(TimelinePhase::Map, 0, 100, 130));
        inv.check_bar(&bar(TimelinePhase::Map, 1, 50, 60));
        // shuffle then reduce of the same task share the slot contiguously
        inv.check_bar(&bar(TimelinePhase::Shuffle, 0, 0, 40));
        inv.check_bar(&bar(TimelinePhase::Reduce, 0, 40, 90));
        // map and reduce slot namespaces are independent
        inv.check_bar(&bar(TimelinePhase::Shuffle, 1, 0, 10));
    }

    #[test]
    #[should_panic(expected = "timeline-slot-disjoint")]
    fn overlapping_bars_panic() {
        let mut inv = checker(2, 2);
        inv.check_bar(&bar(TimelinePhase::Map, 0, 0, 100));
        inv.check_bar(&bar(TimelinePhase::Map, 0, 99, 130));
    }

    #[test]
    #[should_panic(expected = "timeline-slot-range")]
    fn out_of_range_slot_panics() {
        checker(2, 2).check_bar(&bar(TimelinePhase::Map, 7, 0, 1));
    }

    #[test]
    #[should_panic(expected = "timeline-bar-shape")]
    fn inverted_bar_panics() {
        checker(1, 1).check_bar(&bar(TimelinePhase::Map, 0, 10, 5));
    }

    #[test]
    fn entry_diff_reports_each_field() {
        let a = entry();
        assert_eq!(diff_entries(&a, &a), None);
        let mut b = a;
        b.running_maps = 5;
        b.reduce_eligible = false;
        let diff = diff_entries(&a, &b).unwrap();
        assert!(diff.contains("running_maps: expected 2, got 5"), "{diff}");
        assert!(diff.contains("reduce_eligible: expected true, got false"), "{diff}");
        assert!(!diff.contains("pending_maps"), "{diff}");
    }

    #[test]
    #[should_panic(expected = "report-makespan")]
    fn report_makespan_mismatch_panics() {
        let inv = checker(1, 1);
        let report = SimulationReport {
            jobs: vec![simmr_types::JobResult {
                job: JobId(0),
                name: "t".into(),
                arrival: SimTime::ZERO,
                first_map_start: None,
                maps_finished: None,
                completion: SimTime::from_millis(10),
                deadline: None,
                num_maps: 1,
                num_reduces: 0,
            }],
            makespan: SimTime::from_millis(99),
            events_processed: 0,
            timeline: vec![],
        };
        inv.check_report(&report, 1, 1, 0, 0);
    }

    #[test]
    #[should_panic(expected = "event-accounting")]
    fn event_accounting_mismatch_panics() {
        let mut inv = checker(1, 1);
        inv.on_event(SimTime::ZERO);
        inv.note_launches(2);
        let report = SimulationReport {
            jobs: vec![],
            makespan: SimTime::ZERO,
            events_processed: 7,
            timeline: vec![],
        };
        inv.check_report(&report, 1, 1, 0, 0);
    }
}
