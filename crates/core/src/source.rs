//! Streaming job ingestion: the [`JobSource`] abstraction.
//!
//! [`crate::SimulatorEngine::new`] requires a fully materialized
//! [`WorkloadTrace`] — fine at bench scale, hopeless for million-job
//! traces. A `JobSource` decouples the engine from the container: it is
//! an **arrival-ordered** pull iterator plus two header facts (job count,
//! first arrival) that let the engine size nothing proportional to the
//! trace. The engine keeps exactly one arrival of lookahead in its event
//! queue, pulling the next job when the current arrival event pops, so
//! resident memory tracks the *active* job span rather than the trace
//! length.
//!
//! In-memory traces adapt through [`TraceJobSource`]; the binary trace
//! format (`simmr-trace`'s `binfmt`) streams records straight off disk.
//!
//! ## Contract
//!
//! * `next_job` yields jobs in non-decreasing arrival order; the engine
//!   verifies this and fails the run on a violation (an out-of-order
//!   arrival would silently corrupt the event clock).
//! * `job_count` is the exact number of jobs the source will yield, known
//!   up front (both trace containers record it in their headers).
//! * Templates are handed over as `Arc<JobTemplate>` so a source backed
//!   by an interned table shares one allocation across all its jobs.

use simmr_types::{JobTemplate, SimTime, WorkloadTrace};
use std::sync::Arc;

/// One job pulled from a [`JobSource`].
#[derive(Debug, Clone)]
pub struct SourcedJob {
    /// The job's replayable profile, shared with the source's table.
    pub template: Arc<JobTemplate>,
    /// Submission time (non-decreasing across the source).
    pub arrival: SimTime,
    /// Optional absolute deadline.
    pub deadline: Option<SimTime>,
}

/// A failure while pulling from a [`JobSource`] (I/O, decode, or a
/// contract violation such as out-of-order arrivals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError {
    message: String,
}

impl SourceError {
    /// Wraps a failure description.
    pub fn new(message: impl Into<String>) -> Self {
        SourceError { message: message.into() }
    }
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job source error: {}", self.message)
    }
}

impl std::error::Error for SourceError {}

/// An arrival-ordered stream of jobs with known count, feeding
/// [`crate::SimulatorEngine::from_source`].
pub trait JobSource {
    /// Exact number of jobs this source yields over its lifetime.
    fn job_count(&self) -> usize;

    /// Earliest arrival across the stream (`None` for an empty source).
    fn first_arrival(&self) -> Option<SimTime>;

    /// Pulls the next job in arrival order; `Ok(None)` when exhausted.
    fn next_job(&mut self) -> Result<Option<SourcedJob>, SourceError>;
}

/// Adapts a materialized [`WorkloadTrace`] (in any job order) to the
/// arrival-ordered [`JobSource`] contract.
///
/// Jobs are yielded sorted by `(arrival, original position)`; each pull
/// clones the job's template into a fresh `Arc`. Useful for feeding the
/// streaming engine path from JSON traces and for differential tests
/// against [`crate::SimulatorEngine::new`].
#[derive(Debug)]
pub struct TraceJobSource<'a> {
    trace: &'a WorkloadTrace,
    /// Job indices sorted by `(arrival, index)`.
    order: Vec<u32>,
    next: usize,
}

impl<'a> TraceJobSource<'a> {
    /// Builds the arrival-ordered view of `trace`.
    pub fn new(trace: &'a WorkloadTrace) -> Self {
        let mut order: Vec<u32> = (0..trace.jobs.len() as u32).collect();
        order.sort_by_key(|&i| (trace.jobs[i as usize].arrival, i));
        TraceJobSource { trace, order, next: 0 }
    }
}

impl JobSource for TraceJobSource<'_> {
    fn job_count(&self) -> usize {
        self.trace.jobs.len()
    }

    fn first_arrival(&self) -> Option<SimTime> {
        self.order.first().map(|&i| self.trace.jobs[i as usize].arrival)
    }

    fn next_job(&mut self) -> Result<Option<SourcedJob>, SourceError> {
        let Some(&i) = self.order.get(self.next) else {
            return Ok(None);
        };
        self.next += 1;
        let spec = &self.trace.jobs[i as usize];
        Ok(Some(SourcedJob {
            template: Arc::new(spec.template.clone()),
            arrival: spec.arrival,
            deadline: spec.deadline,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_types::JobSpec;

    fn job(name: &str, arrival_ms: u64) -> JobSpec {
        JobSpec::new(
            JobTemplate::new(name, vec![10], vec![], vec![], vec![]).unwrap(),
            SimTime::from_millis(arrival_ms),
        )
    }

    #[test]
    fn trace_source_yields_arrival_order() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(job("late", 500));
        trace.push(job("early", 100));
        trace.push(job("tie-a", 100));
        let mut src = TraceJobSource::new(&trace);
        assert_eq!(src.job_count(), 3);
        assert_eq!(src.first_arrival(), Some(SimTime::from_millis(100)));
        let mut names = Vec::new();
        while let Some(j) = src.next_job().unwrap() {
            names.push(j.template.name.to_string());
        }
        // ties keep original trace order
        assert_eq!(names, vec!["early", "tie-a", "late"]);
        assert!(src.next_job().unwrap().is_none());
    }

    #[test]
    fn empty_trace_source() {
        let trace = WorkloadTrace::default();
        let mut src = TraceJobSource::new(&trace);
        assert_eq!(src.job_count(), 0);
        assert_eq!(src.first_arrival(), None);
        assert!(src.next_job().unwrap().is_none());
    }
}
