//! The discrete-event Simulator Engine (§III-B).
//!
//! # Hot path
//!
//! The engine keeps a persistent, incrementally-maintained [`JobQueue`]:
//! entries are inserted on job arrival, removed on departure, and mutated
//! in place (O(1)) by every launch / completion / preemption — scheduling
//! never rebuilds a snapshot of the active jobs. A dirty flag skips the
//! scheduling pass entirely for event batches that did not change the
//! queue. Task *arrival* marker events are not pushed through the priority
//! queue either: a launch is counted directly in `events_processed` and the
//! end-of-batch scheduling loop re-runs until no further task launches at
//! the current instant, which preserves the exact fixpoint semantics the
//! markers used to provide.
//!
//! # Failure and speculation model
//!
//! Beyond the paper's failure-free engine, three opt-in mechanisms model a
//! lossy cluster (all off by default and fully deterministic under a seed):
//!
//! * **Host failures** ([`crate::FaultSpec`] / [`SimulatorEngine::with_fault_plan`]):
//!   slots are striped over [`simmr_types::ClusterSpec::hosts`] workers;
//!   when a host fails its slots leave the pools, attempts running on
//!   them are killed and requeued, and — Hadoop semantics — completed map
//!   tasks whose output lived on the lost host are re-executed while the
//!   job's map stage is still open. Host 0 never fails (it models the
//!   master's worker), so every workload stays finishable. Failures are
//!   permanent for the run unless **host recovery**
//!   ([`crate::RecoverySpec`]) is armed, which brings each failed host
//!   back after a seeded exponential downtime, its slots rejoining the
//!   pools empty.
//! * **Speculative execution** ([`EngineConfig::with_speculation`]): a map
//!   attempt running past `factor ×` its job's median map duration gets a
//!   duplicate attempt; the first finisher wins and the losers are killed.
//! * **Per-slot slowdown** ([`EngineConfig::with_slowdown`]): each slot
//!   draws a multiplicative speed factor at startup, scaling every task
//!   duration it executes — the straggler source speculation exists for.
//!
//! Task identity is `(task index, attempt)`: every launch bumps the task's
//! attempt counter, and a departure whose pair is no longer in the running
//! list is stale (killed by preemption, a host failure, or a lost
//! speculation race) and ignored.

use crate::config::EngineConfig;
use crate::event::EventKind;
use crate::invariants::InvariantState;
use crate::jobq::{JobEntry, JobQueue, SchedulerPolicy};
use crate::queue::EventQueue;
use crate::source::{JobSource, SourceError};
use simmr_stats::{Dist, Distribution, SeededRng};
use simmr_types::{
    DurationMs, HostId, JobId, JobResult, JobTemplate, SimTime, SimulationReport, TimelineEntry,
    TimelinePhase, WorkloadTrace,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// One planned host failure: `host` is lost at time `at` (permanently,
/// unless the run arms [`crate::RecoverySpec`]).
///
/// Plans are normally derived from a seeded [`crate::FaultSpec`]; tests and
/// what-if runs can install an explicit plan with
/// [`SimulatorEngine::with_fault_plan`]. Failures naming host 0 or a host
/// outside the cluster, or a host that already failed, are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostFailure {
    /// The failing host.
    pub host: HostId,
    /// When it fails.
    pub at: SimTime,
}

/// A live map attempt occupying a slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunningMap {
    pub(crate) idx: u32,
    pub(crate) attempt: u32,
    pub(crate) start: SimTime,
    pub(crate) slot: u32,
}

/// A live reduce attempt occupying a slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunningReduce {
    pub(crate) idx: u32,
    pub(crate) attempt: u32,
    pub(crate) start: SimTime,
    pub(crate) slot: u32,
    /// End of the shuffle phase; [`SimTime::INFINITY`] while the task is an
    /// unresolved first-wave filler.
    pub(crate) shuffle_end: SimTime,
}

/// Runtime state of one job inside the engine. Fields are crate-visible so
/// the invariant checker (`crate::invariants`) can re-derive the policy
/// view from first principles, and so checkpoints (`crate::checkpoint`)
/// can serialize jobs field by field.
#[derive(Debug, Clone)]
pub(crate) struct JobState {
    /// The job's replayable profile. Shared (not cloned) with a streaming
    /// source's interned template table.
    pub(crate) template: Arc<JobTemplate>,
    pub(crate) arrival: SimTime,
    pub(crate) deadline: Option<SimTime>,
    pub(crate) maps_total: usize,
    pub(crate) reduces_total: usize,
    /// Next never-launched map task index.
    pub(crate) fresh_maps: usize,
    /// Map tasks returned to the queue by a kill (LIFO relaunch).
    pub(crate) requeued_maps: Vec<u32>,
    /// Live map attempts in launch order; the last entry is the preemption
    /// victim of choice. A task has two entries while a speculative
    /// duplicate races its primary.
    pub(crate) running_map_list: Vec<RunningMap>,
    /// Monotone per-task launch counter; stamps each attempt so stale
    /// departures of killed attempts can be recognized.
    pub(crate) map_gen: Vec<u32>,
    /// Completion flags per map task.
    pub(crate) map_done: Vec<bool>,
    /// Slot whose host stores each completed map's output (the winning
    /// attempt's slot); a host failure re-runs maps whose output it held.
    pub(crate) map_done_slot: Vec<u32>,
    pub(crate) maps_completed: usize,
    /// Next never-launched reduce task index.
    pub(crate) fresh_reduces: usize,
    /// Reduce tasks returned to the queue by a host failure.
    pub(crate) requeued_reduces: Vec<u32>,
    /// Live reduce attempts (unresolved fillers carry an infinite
    /// `shuffle_end` until `AllMapsFinished`).
    pub(crate) running_reduce_list: Vec<RunningReduce>,
    /// Monotone per-task launch counter for reduces.
    pub(crate) reduce_gen: Vec<u32>,
    pub(crate) reduces_completed: usize,
    /// Map tasks completed before reduces become schedulable.
    pub(crate) reduce_threshold: usize,
    pub(crate) active: bool,
    pub(crate) first_map_start: Option<SimTime>,
    pub(crate) maps_finished: Option<SimTime>,
    /// Straggler threshold in ms (`speculation_factor ×` the job's median
    /// map duration, ≥ 1); 0 when speculation is disabled.
    pub(crate) spec_threshold: DurationMs,
    /// Per-task flag: a speculative duplicate was already requested (reset
    /// when a failure forces the task to re-run from scratch).
    pub(crate) speculated: Vec<bool>,
    /// Tasks whose speculative duplicate is awaiting a slot. Every entry
    /// still has a live primary attempt in `running_map_list`.
    pub(crate) spec_pending: Vec<u32>,
}

impl JobState {
    /// Fresh (pre-arrival) runtime state for one job.
    fn new(
        template: Arc<JobTemplate>,
        arrival: SimTime,
        deadline: Option<SimTime>,
        config: &EngineConfig,
    ) -> Self {
        let spec_threshold = match config.speculation_factor {
            Some(factor) if template.num_maps > 0 => {
                let mut ds: Vec<DurationMs> =
                    (0..template.num_maps).map(|i| template.map_duration(i)).collect();
                ds.sort_unstable();
                // upper median; clamped ≥ 1ms so zero-duration maps never
                // trigger a duplicate
                ((ds[ds.len() / 2] as f64 * factor).round() as u64).max(1)
            }
            _ => 0,
        };
        let (num_maps, num_reduces) = (template.num_maps, template.num_reduces);
        JobState {
            arrival,
            deadline,
            maps_total: num_maps,
            reduces_total: num_reduces,
            fresh_maps: 0,
            requeued_maps: Vec::new(),
            running_map_list: Vec::new(),
            map_gen: vec![0; num_maps],
            map_done: vec![false; num_maps],
            map_done_slot: vec![0; num_maps],
            maps_completed: 0,
            fresh_reduces: 0,
            requeued_reduces: Vec::new(),
            running_reduce_list: Vec::new(),
            reduce_gen: vec![0; num_reduces],
            reduces_completed: 0,
            reduce_threshold: config.reduce_start_threshold(num_maps),
            active: false,
            first_map_start: None,
            maps_finished: None,
            spec_threshold,
            speculated: vec![false; num_maps],
            spec_pending: Vec::new(),
            template,
        }
    }

    /// Map launches the policy may still request: fresh or requeued tasks
    /// plus pending speculative duplicates.
    fn pending_maps(&self) -> usize {
        (self.maps_total - self.fresh_maps) + self.requeued_maps.len() + self.spec_pending.len()
    }

    /// Reduce tasks not yet launched (fresh or requeued by a host failure).
    fn pending_reduces(&self) -> usize {
        (self.reduces_total - self.fresh_reduces) + self.requeued_reduces.len()
    }
}

/// The engine's job-state table, addressed by [`JobId`].
///
/// Jobs are appended in id order and **retired** on departure: a retired
/// slot drops its boxed state immediately and the window compacts from
/// the front, so resident memory tracks the span between the oldest live
/// job and the newest admission — not the trace length. A retired id
/// resolves to `None`, which is what makes stale in-flight events of
/// departed jobs (duplicate departures, straggler timers, killed-attempt
/// departures) cheap no-ops. Ids are never reused.
#[derive(Debug, Default)]
pub(crate) struct JobTable {
    /// Live window; index `i` holds the state of `JobId(base + i)`.
    slots: VecDeque<Option<Box<JobState>>>,
    /// Id of the oldest slot still in the window.
    base: usize,
}

impl JobTable {
    fn with_capacity(n: usize) -> Self {
        JobTable { slots: VecDeque::with_capacity(n), base: 0 }
    }

    /// Jobs ever admitted (also the next id to be assigned).
    pub(crate) fn total(&self) -> usize {
        self.base + self.slots.len()
    }

    /// The id window `[lo, hi)` that may hold live jobs.
    pub(crate) fn id_range(&self) -> (usize, usize) {
        (self.base, self.base + self.slots.len())
    }

    /// Admits a job, assigning the next id.
    fn push(&mut self, state: Box<JobState>) -> JobId {
        let id = self.total();
        self.slots.push_back(Some(state));
        JobId(id as u32)
    }

    pub(crate) fn get(&self, job: JobId) -> Option<&JobState> {
        self.slots.get(job.index().checked_sub(self.base)?)?.as_deref()
    }

    fn get_mut(&mut self, job: JobId) -> Option<&mut JobState> {
        self.slots.get_mut(job.index().checked_sub(self.base)?)?.as_deref_mut()
    }

    /// Drops a departed job's state and compacts the window front.
    fn retire(&mut self, job: JobId) {
        if let Some(i) = job.index().checked_sub(self.base) {
            if let Some(slot) = self.slots.get_mut(i) {
                *slot = None;
            }
        }
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// Iterates the live jobs in id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (JobId, &JobState)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|state| (JobId((self.base + i) as u32), state)))
    }

    /// The raw window slots (including retired holes), for checkpointing.
    pub(crate) fn raw_slots(&self) -> impl Iterator<Item = Option<&JobState>> {
        self.slots.iter().map(|s| s.as_deref())
    }

    /// Reassembles a table from a checkpoint's `(base, slots)` capture.
    pub(crate) fn from_parts(base: usize, slots: Vec<Option<Box<JobState>>>) -> Self {
        JobTable { slots: slots.into(), base }
    }
}

/// Applies a per-slot slowdown factor to a base duration.
#[inline]
fn scaled(base: DurationMs, factor: f64) -> DurationMs {
    (base as f64 * factor).round() as u64
}

/// Slot slowdown factors below this are clamped: a factor near zero would
/// make a slot's tasks effectively free.
const MIN_SLOWDOWN: f64 = 0.05;

/// RNG stream labels (forked off the user seed) for the derived plans.
/// Each plan draws from its own stream so enabling one never perturbs the
/// others.
const FAULT_STREAM: u64 = 1;
const SLOWDOWN_STREAM: u64 = 2;
const RECOVERY_STREAM: u64 = 3;

/// The SimMR Simulator Engine.
///
/// Replays a [`WorkloadTrace`] against a slot-based job-master model under a
/// pluggable [`SchedulerPolicy`]. See the crate docs for the model and an
/// end-to-end example.
pub struct SimulatorEngine<'a> {
    pub(crate) config: EngineConfig,
    /// Streaming job feed ([`Self::from_source`]); `None` for engines built
    /// from a materialized trace, whose arrivals are all pushed up front.
    source: Option<Box<dyn JobSource + 'a>>,
    /// Arrival of the most recently pulled job, for enforcing the source's
    /// ordering contract.
    last_pulled_arrival: SimTime,
    /// Visible to the invariant checker, which runs the policy's own
    /// `verify_invariants` hook against the settled queue view.
    pub(crate) policy: Box<dyn SchedulerPolicy + 'a>,
    queue: EventQueue,
    pub(crate) free_map_slots: Vec<u32>,
    pub(crate) free_reduce_slots: Vec<u32>,
    /// Hosts that have failed so far.
    pub(crate) dead_hosts: Vec<bool>,
    /// Map slots currently lost to a host failure (never free, never
    /// occupied while dead; restored only by a `HostRecovery`).
    pub(crate) dead_map_slots: Vec<bool>,
    /// Reduce slots currently lost to a host failure.
    pub(crate) dead_reduce_slots: Vec<bool>,
    /// Planned host failures, derived from `config.faults` or installed
    /// explicitly via [`Self::with_fault_plan`].
    fault_plan: Vec<HostFailure>,
    /// Per-map-slot duration multipliers; empty when slowdown is disabled
    /// (tasks then run at their exact template durations, integer-only).
    map_slowdown: Vec<f64>,
    /// Per-reduce-slot duration multipliers (shuffle and reduce phases).
    reduce_slowdown: Vec<f64>,
    pub(crate) jobs: JobTable,
    /// Persistent active-job view handed to the policy; kept in sync
    /// incrementally by every state transition.
    pub(crate) jobq: JobQueue,
    /// Set when an event changed `jobq` (or policy state) since the last
    /// completed scheduling pass; a clean queue makes `schedule` a no-op.
    pub(crate) jobq_dirty: bool,
    /// Scratch buffer for preemption victim lists, reused across rounds.
    victims: Vec<JobId>,
    /// Earliest outstanding `PolicyWakeup` timer, if any: arming is
    /// deduplicated against it, and a popped timer that does not match is
    /// stale (superseded by an earlier one) and ignored.
    policy_wakeup_at: Option<SimTime>,
    /// Time of the most recently popped event — the engine clock. After a
    /// settled batch this is the batch instant, which is what a checkpoint
    /// records as its boundary.
    clock: SimTime,
    /// Set once the initial events (arrivals, fault plan, recoveries) have
    /// been seeded; a resumed engine starts seeded (its event heap came
    /// from the checkpoint).
    seeded: bool,
    events_processed: u64,
    timeline: Vec<TimelineEntry>,
    results: Vec<Option<JobResult>>,
    makespan: SimTime,
    /// Opt-in runtime invariant checker (`None` on the production hot
    /// path). Boxed so a disabled engine pays one pointer of space and a
    /// predictable branch per event batch.
    invariants: Option<Box<InvariantState>>,
    /// Debug-only reference mode: rebuild the job view from scratch before
    /// every scheduling pass instead of trusting the incremental updates.
    #[cfg(any(test, debug_assertions))]
    snapshot_oracle: bool,
}

impl<'a> SimulatorEngine<'a> {
    /// Builds an engine for one simulation run.
    ///
    /// # Panics
    ///
    /// Panics if the trace contains a structurally invalid job template
    /// (impossible for traces built through [`simmr_types::JobTemplate::new`],
    /// possible for hand-edited serialized traces).
    pub fn new(
        config: EngineConfig,
        trace: &'a WorkloadTrace,
        policy: Box<dyn SchedulerPolicy + 'a>,
    ) -> Self {
        trace.validate().expect("workload trace contains an invalid job template");
        let mut jobs = JobTable::with_capacity(trace.jobs.len());
        for spec in &trace.jobs {
            jobs.push(Box::new(JobState::new(
                Arc::new(spec.template.clone()),
                spec.arrival,
                spec.deadline,
                &config,
            )));
        }
        let timeline_bars = if config.record_timeline {
            // one bar per map attempt (preemptions may add more) plus a
            // shuffle and a reduce bar per reduce task
            trace.jobs.iter().map(|s| s.template.num_maps + 2 * s.template.num_reduces).sum()
        } else {
            0
        };
        // in-flight events: per-job arrival/departure bookkeeping plus
        // at most one departure per occupied slot and the fault plan
        let queue_capacity = trace.jobs.len()
            + config.cluster.map_slots
            + config.cluster.reduce_slots
            + config.faults.map_or(0, |f| f.count as usize)
            + 8;
        Self::with_parts(config, None, policy, jobs, queue_capacity, timeline_bars)
    }

    /// Builds an engine fed by a streaming [`JobSource`] instead of a
    /// materialized trace.
    ///
    /// Exactly one arrival of lookahead is held in the event queue: the
    /// next job is pulled when the current arrival event pops, and a
    /// departed job's state is dropped immediately, so resident memory
    /// tracks the *active* job span rather than the source's job count.
    /// Source failures (I/O, decode, an out-of-order arrival) surface
    /// through [`Self::try_run`].
    pub fn from_source(
        config: EngineConfig,
        source: Box<dyn JobSource + 'a>,
        policy: Box<dyn SchedulerPolicy + 'a>,
    ) -> Self {
        // nothing here is sized by the source's job count
        let queue_capacity = config.cluster.map_slots
            + config.cluster.reduce_slots
            + config.faults.map_or(0, |f| f.count as usize)
            + 16;
        Self::with_parts(config, Some(source), policy, JobTable::default(), queue_capacity, 0)
    }

    fn with_parts(
        config: EngineConfig,
        source: Option<Box<dyn JobSource + 'a>>,
        policy: Box<dyn SchedulerPolicy + 'a>,
        jobs: JobTable,
        queue_capacity: usize,
        timeline_bars: usize,
    ) -> Self {
        let cluster = config.cluster;
        let (map_slowdown, reduce_slowdown) = match config.slowdown {
            Some(sd) => {
                let mut rng = SeededRng::new(sd.seed).fork(SLOWDOWN_STREAM);
                let mut draw =
                    |n: usize| (0..n).map(|_| sd.dist.sample(&mut rng).max(MIN_SLOWDOWN)).collect();
                let maps: Vec<f64> = draw(cluster.map_slots);
                let reduces: Vec<f64> = draw(cluster.reduce_slots);
                (maps, reduces)
            }
            None => (Vec::new(), Vec::new()),
        };
        let fault_plan: Vec<HostFailure> = match config.faults {
            Some(f) if cluster.hosts > 1 && f.count > 0 => {
                let mut rng = SeededRng::new(f.seed).fork(FAULT_STREAM);
                let gaps = Dist::Exponential { mean: f.mean_interval_ms.max(1) as f64 };
                let mut at = SimTime::ZERO;
                (0..f.count)
                    .map(|_| {
                        at += (gaps.sample(&mut rng).round() as u64).max(1);
                        // host 0 never fails, keeping every workload finishable
                        let host = HostId(1 + rng.index(cluster.hosts - 1) as u32);
                        HostFailure { host, at }
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        let results =
            if config.collect_job_results { vec![None; jobs.total()] } else { Vec::new() };
        SimulatorEngine {
            config,
            source,
            last_pulled_arrival: SimTime::ZERO,
            policy,
            queue: EventQueue::with_capacity(queue_capacity),
            free_map_slots: (0..cluster.map_slots as u32).rev().collect(),
            free_reduce_slots: (0..cluster.reduce_slots as u32).rev().collect(),
            dead_hosts: vec![false; cluster.hosts],
            dead_map_slots: vec![false; cluster.map_slots],
            dead_reduce_slots: vec![false; cluster.reduce_slots],
            fault_plan,
            map_slowdown,
            reduce_slowdown,
            jobq: JobQueue::with_capacity(jobs.total().min(1024)),
            jobq_dirty: false,
            victims: Vec::new(),
            policy_wakeup_at: None,
            clock: SimTime::ZERO,
            seeded: false,
            jobs,
            events_processed: 0,
            timeline: Vec::with_capacity(timeline_bars),
            results,
            makespan: SimTime::ZERO,
            invariants: config.invariants_enabled().then(|| Box::new(InvariantState::new(&config))),
            #[cfg(any(test, debug_assertions))]
            snapshot_oracle: false,
        }
    }

    /// Replaces the seeded fault plan with an explicit failure list (tests
    /// and what-if runs). Entries naming host 0, an unknown host, or an
    /// already-failed host are ignored at fire time.
    pub fn with_fault_plan(mut self, plan: Vec<HostFailure>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The host failures this run will inject, in plan order.
    pub fn fault_plan(&self) -> &[HostFailure] {
        &self.fault_plan
    }

    /// Debug-only reference mode: rebuilds the job view from the engine's
    /// per-job state before every scheduling pass (the pre-incremental
    /// behavior) and never skips a pass. Any divergence between a normal
    /// run and an oracle run is a bug in the incremental bookkeeping; the
    /// property tests compare the two report-for-report.
    #[cfg(any(test, debug_assertions))]
    pub fn with_snapshot_oracle(mut self) -> Self {
        self.snapshot_oracle = true;
        self
    }

    /// Runs the simulation to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the job source fails mid-run (impossible for engines built
    /// with [`Self::new`]); streaming callers who want the failure as a
    /// value use [`Self::try_run`].
    pub fn run(self) -> SimulationReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Pulls one job from the streaming source (if any) into the job table
    /// and schedules its arrival — the engine's one-event lookahead.
    fn pull_next_arrival(&mut self) -> Result<(), SourceError> {
        let Some(src) = self.source.as_deref_mut() else {
            return Ok(());
        };
        let Some(job) = src.next_job()? else {
            return Ok(());
        };
        if job.arrival < self.last_pulled_arrival {
            return Err(SourceError::new(format!(
                "out-of-order arrival {} after {} (sources must yield jobs in arrival order)",
                job.arrival.as_millis(),
                self.last_pulled_arrival.as_millis(),
            )));
        }
        job.template.validate().map_err(|e| SourceError::new(e.to_string()))?;
        self.last_pulled_arrival = job.arrival;
        let state = JobState::new(job.template, job.arrival, job.deadline, &self.config);
        let id = self.jobs.push(Box::new(state));
        if self.config.collect_job_results {
            self.results.push(None);
        }
        self.queue.push(job.arrival, EventKind::JobArrival, id, 0);
        Ok(())
    }

    /// Runs the simulation to completion, surfacing streaming-source
    /// failures (I/O, decode, ordering violations) as errors.
    pub fn try_run(mut self) -> Result<SimulationReport, SourceError> {
        self.seed()?;
        self.run_loop(None)?;
        Ok(self.finish())
    }

    /// Runs the shared prefix to the last settled batch at or before `t`
    /// and captures it as a checkpoint. The returned snapshot, resumed
    /// through [`Self::resume_materialized`] / [`Self::resume_with_source`],
    /// continues the run byte-identically to never having stopped.
    pub fn checkpoint_at(mut self, t: SimTime) -> Result<crate::EngineCheckpoint, SourceError> {
        self.seed()?;
        self.run_loop(Some(t))?;
        Ok(self.capture(t))
    }

    /// Runs the engine to completion with `fork`'s divergences applied at
    /// the last settled batch at or before `fork.at` — the from-scratch
    /// reference a resumed-and-forked run must match byte for byte. Both
    /// paths go through the same [`Self::apply_fork`], so divergence
    /// semantics cannot drift between them.
    pub fn run_forked(mut self, fork: crate::ForkSpec) -> Result<SimulationReport, SourceError> {
        self.seed()?;
        self.run_loop(Some(fork.at))?;
        self.apply_fork(fork).map_err(|e| SourceError::new(e.to_string()))?;
        self.run_loop(None)?;
        Ok(self.finish())
    }

    /// Seeds the initial events. Materialized engines push every arrival
    /// up front (ids in trace order, preserving the exact historical event
    /// sequence); streaming engines hold one arrival of lookahead and pull
    /// the next each time an arrival pops. The fault plan and its
    /// recoveries are seeded alongside. A no-op on resumed engines, whose
    /// event heap already carries everything still pending.
    fn seed(&mut self) -> Result<(), SourceError> {
        if self.seeded {
            return Ok(());
        }
        self.seeded = true;
        if self.source.is_some() {
            self.pull_next_arrival()?;
        } else {
            let (lo, hi) = self.jobs.id_range();
            for i in lo..hi {
                let id = JobId(i as u32);
                let arrival = self.jobs.get(id).expect("fresh job table has no holes").arrival;
                self.queue.push(arrival, EventKind::JobArrival, id, 0);
            }
        }
        for i in 0..self.fault_plan.len() {
            let f = self.fault_plan[i];
            self.queue.push(f.at, EventKind::HostFailure, JobId(0), f.host.0);
        }
        // One recovery per planned failure, after an exponential downtime
        // drawn from a dedicated stream: arming recovery never perturbs
        // the fault or slowdown plans.
        if let Some(rec) = self.config.recovery {
            let mut rng = SeededRng::new(rec.seed).fork(RECOVERY_STREAM);
            let downtime = Dist::Exponential { mean: rec.mean_ms.max(1) as f64 };
            for i in 0..self.fault_plan.len() {
                let f = self.fault_plan[i];
                let delay = (downtime.sample(&mut rng).round() as u64).max(1);
                self.queue.push(f.at + delay, EventKind::HostRecovery, JobId(0), f.host.0);
            }
        }
        Ok(())
    }

    /// The event loop. With `stop_after` set, stops at the first settled
    /// batch boundary past it: same-instant batching means the loop-top
    /// check only ever fires between batches, so a stopped engine is
    /// always in a checkpointable (fully settled) state.
    fn run_loop(&mut self, stop_after: Option<SimTime>) -> Result<(), SourceError> {
        loop {
            if let Some(stop) = stop_after {
                match self.queue.next_time() {
                    Some(next) if next <= stop => {}
                    _ => break,
                }
            }
            let Some(event) = self.queue.pop() else {
                break;
            };
            self.events_processed += 1;
            // Makespan tracks job completions only: stale events (a killed
            // attempt's in-flight departure, a lost speculation race, a
            // late fault or straggler timer) may pop after the last job
            // has departed.
            if event.kind == EventKind::JobDeparture {
                self.makespan = event.time;
            }
            let now = event.time;
            self.clock = now;
            let job = event.job;
            if let Some(inv) = self.invariants.as_deref_mut() {
                inv.on_event(now);
            }
            match event.kind {
                EventKind::JobArrival => {
                    self.on_job_arrival(job, now);
                    // Refill the lookahead before the batching check below:
                    // a same-instant next arrival must join this batch so
                    // the policy sees every job submitted at the instant.
                    self.pull_next_arrival()?;
                }
                EventKind::MapTaskArrival | EventKind::ReduceTaskArrival => {
                    // task placements are counted at launch time and no
                    // longer travel through the priority queue; nothing
                    // else enqueues these kinds
                    debug_assert!(false, "marker event in queue");
                }
                EventKind::MapTaskDeparture => {
                    self.on_map_departure(job, event.task_index, event.attempt, now)
                }
                EventKind::AllMapsFinished => self.on_all_maps_finished(job, now),
                EventKind::ReduceTaskDeparture => {
                    self.on_reduce_departure(job, event.task_index, event.attempt, now)
                }
                EventKind::JobDeparture => self.on_job_departure(job, now),
                EventKind::HostFailure => self.on_host_failure(event.task_index, now),
                EventKind::SpeculationDue => {
                    self.on_speculation_due(job, event.task_index, event.attempt)
                }
                EventKind::HostRecovery => self.on_host_recovery(event.task_index),
                EventKind::PolicyWakeup => self.on_policy_wakeup(now),
            }
            // Make scheduling decisions only once every same-instant event
            // (simultaneous arrivals, departures, AllMapsFinished) has been
            // applied — the job master sees a consistent queue state, and
            // EDF-style policies observe all jobs submitted at that instant.
            if self.queue.next_time() == Some(now) {
                continue;
            }
            // Fixpoint at `now`: launches may complete instantly
            // (zero-duration tasks join the current batch) and unlock
            // further launches, so re-run until the instant is quiescent.
            loop {
                let launched = self.schedule(now);
                self.events_processed += launched;
                if let Some(inv) = self.invariants.as_deref_mut() {
                    inv.note_launches(launched);
                }
                if launched == 0 || self.queue.next_time() == Some(now) {
                    break;
                }
            }
            // The instant is quiescent (no further same-time events):
            // every engine invariant must hold on the settled state.
            if self.invariants.is_some() && self.queue.next_time() != Some(now) {
                let mut inv = self.invariants.take().expect("checked is_some");
                inv.check_batch(self, now);
                self.invariants = Some(inv);
            }
        }
        Ok(())
    }

    /// Assembles the final report from a drained engine, running the
    /// end-of-run invariant checks.
    fn finish(mut self) -> SimulationReport {
        let invariants = self.invariants.take();
        let (free_maps, free_reduces) = (self.free_map_slots.len(), self.free_reduce_slots.len());
        let lost_maps = self.dead_map_slots.iter().filter(|&&d| d).count();
        let lost_reduces = self.dead_reduce_slots.iter().filter(|&&d| d).count();
        let jobs = if self.config.collect_job_results {
            self.results
                .into_iter()
                .enumerate()
                .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} never departed")))
                .collect()
        } else {
            Vec::new()
        };
        let report = SimulationReport {
            jobs,
            makespan: self.makespan,
            events_processed: self.events_processed,
            timeline: self.timeline,
        };
        if let Some(inv) = invariants {
            inv.check_report(&report, free_maps, free_reduces, lost_maps, lost_reduces);
        }
        report
    }

    /// Asserts (when checking) that the dirty flag covers the queue
    /// mutation that just happened at `site` — every event handler and the
    /// preemption path must set `jobq_dirty` so the next scheduling pass
    /// cannot no-op against a silently changed queue. Task launches are
    /// exempt: they happen *inside* a pass, which re-consults the policy to
    /// a fixpoint before the flag matters again.
    fn note_mutation(&mut self, site: &'static str) {
        let dirty = self.jobq_dirty;
        if let Some(inv) = self.invariants.as_deref_mut() {
            inv.mutation_covered(dirty, site);
        }
    }

    /// Appends a timeline bar, running it through the online per-slot
    /// disjointness check when invariants are enabled.
    fn record_bar(&mut self, bar: TimelineEntry) {
        if let Some(inv) = self.invariants.as_deref_mut() {
            inv.check_bar(&bar);
        }
        self.timeline.push(bar);
    }

    /// The policy-visible entry equivalent to a job's current state.
    pub(crate) fn entry_of(&self, job: JobId) -> JobEntry {
        let s = self.jobs.get(job).expect("entry_of on a retired job");
        JobEntry {
            id: job,
            arrival: s.arrival,
            deadline: s.deadline,
            pending_maps: s.pending_maps(),
            running_maps: s.running_map_list.len(),
            completed_maps: s.maps_completed,
            total_maps: s.maps_total,
            pending_reduces: s.pending_reduces(),
            running_reduces: s.running_reduce_list.len(),
            completed_reduces: s.reduces_completed,
            total_reduces: s.reduces_total,
            reduce_eligible: s.maps_completed >= s.reduce_threshold,
        }
    }

    /// Fetches the incrementally-maintained entry of an active job.
    fn entry_mut(&mut self, job: JobId) -> &mut JobEntry {
        self.jobq.get_mut(job).expect("active job missing from the job queue")
    }

    fn on_job_arrival(&mut self, job: JobId, _now: SimTime) {
        let state = self.jobs.get_mut(job).expect("arrival of a retired job");
        state.active = true;
        let template = Arc::clone(&state.template);
        let relative_deadline = state.deadline.map(|d| d.since(state.arrival));
        let entry = self.entry_of(job);
        self.jobq.insert(entry);
        self.jobq_dirty = true;
        self.policy.on_job_arrival(job, &template, relative_deadline, self.config.cluster);
        // after on_job_arrival so routing-table state (pool assignment)
        // exists before the entry's counters are credited
        self.policy.on_job_queued(&entry);
        self.note_mutation("on_job_arrival");
    }

    fn on_map_departure(&mut self, job: JobId, task_index: u32, attempt: u32, now: SimTime) {
        let speculation = self.config.speculation_factor.is_some();
        let Some(state) = self.jobs.get_mut(job) else {
            // the job already departed and was retired; the attempt this
            // event named was accounted for then
            return;
        };
        let Some(pos) =
            state.running_map_list.iter().position(|r| r.idx == task_index && r.attempt == attempt)
        else {
            // stale departure from a killed attempt (preemption, host
            // failure, or a lost speculation race): its slot was already
            // handled at kill time, and nothing observable changed
            return;
        };
        let winner = state.running_map_list.remove(pos);
        let idx = task_index as usize;
        debug_assert!(!state.map_done[idx], "live attempt of an already-done map");
        state.map_done[idx] = true;
        state.map_done_slot[idx] = winner.slot;
        state.maps_completed += 1;
        // First finisher wins: kill the losing duplicate attempts and
        // cancel a not-yet-launched duplicate. Only speculation can create
        // a second attempt, so the scan is gated off the hot path.
        let mut losers: Vec<RunningMap> = Vec::new();
        let mut spec_cancelled = false;
        if speculation {
            let mut i = 0;
            while i < state.running_map_list.len() {
                if state.running_map_list[i].idx == task_index {
                    losers.push(state.running_map_list.remove(i));
                } else {
                    i += 1;
                }
            }
            if let Some(p) = state.spec_pending.iter().position(|&x| x == task_index) {
                state.spec_pending.remove(p);
                spec_cancelled = true;
            }
        }
        let completed = state.maps_completed;
        let threshold = state.reduce_threshold;
        let all_done = completed == state.maps_total;
        self.free_map_slots.push(winner.slot);
        for l in &losers {
            self.free_map_slots.push(l.slot);
        }
        let entry = self.entry_mut(job);
        let before = *entry;
        entry.running_maps -= 1 + losers.len();
        entry.completed_maps += 1;
        if spec_cancelled {
            entry.pending_maps -= 1;
        }
        let flipped_eligible = !entry.reduce_eligible && completed >= threshold;
        entry.reduce_eligible = completed >= threshold;
        let after = *entry;
        self.policy.on_entry_mutated(&before, &after);
        if flipped_eligible {
            self.jobq.reset_reduce_hint();
        }
        self.jobq_dirty = true;
        // Map bars are recorded at *departure* (not launch): a killed
        // attempt must not leave a full-duration phantom bar overlapping
        // the slot's next occupant.
        if self.config.record_timeline {
            self.record_bar(TimelineEntry {
                job,
                phase: TimelinePhase::Map,
                slot: winner.slot,
                start: winner.start,
                end: now,
            });
            for l in &losers {
                self.record_bar(TimelineEntry {
                    job,
                    phase: TimelinePhase::Map,
                    slot: l.slot,
                    start: l.start,
                    end: now,
                });
            }
        }
        if all_done {
            self.queue.push(now, EventKind::AllMapsFinished, job, 0);
        }
        self.note_mutation("on_map_departure");
    }

    /// Kills the victim job's most recently launched running map attempt:
    /// the slot frees immediately, all progress is lost, and the task
    /// returns to the pending queue for a later relaunch (Hadoop task-kill
    /// semantics) — unless another attempt of the same task is still alive
    /// or pending, in which case the survivor covers it. Returns false when
    /// the job had no running map.
    fn preempt_map(&mut self, job: JobId, now: SimTime) -> bool {
        let Some(state) = self.jobs.get_mut(job) else {
            return false;
        };
        let Some(victim) = state.running_map_list.pop() else {
            return false;
        };
        // The in-flight departure of (idx, attempt) is now stale: the pair
        // is no longer in the running list and attempts are never reused.
        let idx = victim.idx;
        let other_live = state.running_map_list.iter().any(|r| r.idx == idx);
        let mut requeued = false;
        if !other_live {
            if let Some(p) = state.spec_pending.iter().position(|&x| x == idx) {
                // downgrade the pending duplicate to the requeued primary
                state.spec_pending.remove(p);
                state.speculated[idx as usize] = false;
                state.requeued_maps.push(idx);
                // pending count is unchanged: spec_pending −1, requeued +1
            } else {
                state.requeued_maps.push(idx);
                requeued = true;
            }
        }
        self.free_map_slots.push(victim.slot);
        let entry = self.entry_mut(job);
        let before = *entry;
        entry.running_maps -= 1;
        if requeued {
            entry.pending_maps += 1;
        }
        let after = *entry;
        self.policy.on_entry_mutated(&before, &after);
        self.jobq.reset_map_hint();
        // The kill changed the policy-visible queue and freed a slot: the
        // next scheduling pass must not no-op behind a clean flag (a pass
        // that kills without relaunching would otherwise end that way).
        self.jobq_dirty = true;
        // The killed attempt's bar is truncated at the kill instant, so
        // the slot's next occupant never overlaps it.
        if self.config.record_timeline {
            self.record_bar(TimelineEntry {
                job,
                phase: TimelinePhase::Map,
                slot: victim.slot,
                start: victim.start,
                end: now,
            });
        }
        self.note_mutation("preempt_map");
        true
    }

    fn on_all_maps_finished(&mut self, job: JobId, now: SimTime) {
        // A host failure firing at the same instant can reopen the map
        // stage before this event pops, and a rerun wave can queue a second
        // AllMapsFinished later: only the first event of a truly closed
        // stage resolves the fillers.
        {
            let Some(state) = self.jobs.get_mut(job) else {
                return;
            };
            if state.maps_completed != state.maps_total || state.maps_finished.is_some() {
                return;
            }
            state.maps_finished = Some(now);
        }
        // Rewrite every in-flight first-wave filler's "infinite" duration to
        // (non-overlapping first shuffle) + (reduce phase), per §III-B.
        // Resolving fillers changes neither the job queue nor the free
        // slots, so this handler leaves the dirty flag untouched.
        let n = self.jobs.get(job).expect("state fetched above").running_reduce_list.len();
        for i in 0..n {
            let state = self.jobs.get(job).expect("state fetched above");
            let r = state.running_reduce_list[i];
            if !r.shuffle_end.is_infinite() {
                // later-wave reduce already fully scheduled at launch
                continue;
            }
            let mut shuffle = state.template.first_shuffle_duration(r.idx as usize);
            let mut reduce = state.template.reduce_duration(r.idx as usize);
            if let Some(&f) = self.reduce_slowdown.get(r.slot as usize) {
                shuffle = scaled(shuffle, f);
                reduce = scaled(reduce, f);
            }
            let shuffle_end = now + shuffle;
            let finish = shuffle_end + reduce;
            self.jobs.get_mut(job).expect("state fetched above").running_reduce_list[i]
                .shuffle_end = shuffle_end;
            self.queue.push_attempt(finish, EventKind::ReduceTaskDeparture, job, r.idx, r.attempt);
            // No bars yet: reduce bars are recorded at departure (or kill)
            // so a host failure can truncate them at the true extent.
        }
        let state = self.jobs.get(job).expect("state fetched above");
        if state.reduces_total == 0 {
            self.queue.push(now, EventKind::JobDeparture, job, 0);
        }
    }

    fn on_reduce_departure(&mut self, job: JobId, task_index: u32, attempt: u32, now: SimTime) {
        let Some(state) = self.jobs.get_mut(job) else {
            // the job already departed and was retired
            return;
        };
        let Some(pos) = state
            .running_reduce_list
            .iter()
            .position(|r| r.idx == task_index && r.attempt == attempt)
        else {
            // stale departure from an attempt killed by a host failure
            return;
        };
        let done = state.running_reduce_list.remove(pos);
        state.reduces_completed += 1;
        let job_done = state.reduces_completed == state.reduces_total
            && state.maps_completed == state.maps_total;
        self.free_reduce_slots.push(done.slot);
        let entry = self.entry_mut(job);
        let before = *entry;
        entry.running_reduces -= 1;
        entry.completed_reduces += 1;
        let after = *entry;
        self.policy.on_entry_mutated(&before, &after);
        self.jobq_dirty = true;
        if self.config.record_timeline {
            self.record_bar(TimelineEntry {
                job,
                phase: TimelinePhase::Shuffle,
                slot: done.slot,
                start: done.start,
                end: done.shuffle_end,
            });
            self.record_bar(TimelineEntry {
                job,
                phase: TimelinePhase::Reduce,
                slot: done.slot,
                start: done.shuffle_end,
                end: now,
            });
        }
        if job_done {
            self.queue.push(now, EventKind::JobDeparture, job, 0);
        }
        self.note_mutation("on_reduce_departure");
    }

    fn on_job_departure(&mut self, job: JobId, now: SimTime) {
        let Some(state) = self.jobs.get_mut(job) else {
            // duplicate departure of an already-retired job
            return;
        };
        state.active = false;
        if let Some(removed) = self.jobq.remove(job) {
            // before on_job_departure, which may drop routing state the
            // policy needs to release the entry's counter contribution
            self.policy.on_job_dequeued(&removed);
        }
        self.jobq_dirty = true;
        if self.config.collect_job_results {
            let state = self.jobs.get(job).expect("state fetched above");
            self.results[job.index()] = Some(JobResult {
                job,
                name: state.template.name.clone(),
                arrival: state.arrival,
                first_map_start: state.first_map_start,
                maps_finished: state.maps_finished,
                completion: now,
                deadline: state.deadline,
                num_maps: state.maps_total,
                num_reduces: state.reduces_total,
            });
        }
        // Retire the state: later in-flight events naming this job (stale
        // attempt departures, straggler timers) resolve to `None` and
        // no-op, and the table's window compacts past it.
        self.jobs.retire(job);
        self.policy.on_job_departure(job);
        self.note_mutation("on_job_departure");
    }

    /// Removes a worker host (fail-stop, Hadoop semantics; permanent for
    /// the run unless a recovery model is armed):
    ///
    /// 1. every slot striped onto the host leaves the free pools forever;
    /// 2. attempts running on those slots are killed and the tasks requeued;
    /// 3. for jobs whose map stage is still open, *completed* map tasks
    ///    whose output lived on the host are re-executed (their output is
    ///    needed by reduces that have not shuffled it yet).
    ///
    /// Host 0 never fails: it always holds at least one slot of each kind
    /// under round-robin striping, so every workload remains finishable.
    /// This also shields against out-of-range hosts in a user fault plan.
    fn on_host_failure(&mut self, host: u32, now: SimTime) {
        let hosts = self.config.cluster.hosts;
        if host == 0 || host as usize >= hosts || self.dead_hosts[host as usize] {
            return;
        }
        self.dead_hosts[host as usize] = true;
        for slot in (host as usize..self.config.cluster.map_slots).step_by(hosts) {
            self.dead_map_slots[slot] = true;
        }
        for slot in (host as usize..self.config.cluster.reduce_slots).step_by(hosts) {
            self.dead_reduce_slots[slot] = true;
        }
        let dead_maps = &self.dead_map_slots;
        self.free_map_slots.retain(|&s| !dead_maps[s as usize]);
        let dead_reduces = &self.dead_reduce_slots;
        self.free_reduce_slots.retain(|&s| !dead_reduces[s as usize]);

        let (lo, hi) = self.jobs.id_range();
        for j in lo..hi {
            let job = JobId(j as u32);
            let Some(state) = self.jobs.get_mut(job) else {
                continue;
            };
            if !state.active {
                continue;
            }
            let mut map_bars: Vec<RunningMap> = Vec::new();
            let mut reduce_bars: Vec<RunningReduce> = Vec::new();
            let mut reruns = 0usize;
            // kill running map attempts placed on the dead host
            let mut i = 0;
            while i < state.running_map_list.len() {
                if !self.dead_map_slots[state.running_map_list[i].slot as usize] {
                    i += 1;
                    continue;
                }
                // ordered remove: later attempts stay "most recent" for
                // the preemption victim choice
                let victim = state.running_map_list.remove(i);
                let idx = victim.idx;
                let other_live = state.running_map_list.iter().any(|r| r.idx == idx);
                if !other_live {
                    if let Some(p) = state.spec_pending.iter().position(|&x| x == idx) {
                        // the pending duplicate becomes the requeued primary
                        state.spec_pending.remove(p);
                        state.speculated[idx as usize] = false;
                    }
                    state.requeued_maps.push(idx);
                }
                map_bars.push(victim);
            }
            // Re-run completed maps whose output lived on the host — but
            // only while the map stage is still open. Once AllMapsFinished
            // has fired, every reduce has entered (or finished) its shuffle
            // and the model treats the map outputs as consumed; the stage
            // never re-opens.
            if state.maps_finished.is_none() {
                for idx in 0..state.maps_total {
                    if state.map_done[idx] && self.dead_map_slots[state.map_done_slot[idx] as usize]
                    {
                        state.map_done[idx] = false;
                        state.maps_completed -= 1;
                        state.speculated[idx] = false;
                        state.requeued_maps.push(idx as u32);
                        reruns += 1;
                    }
                }
            }
            // kill running reduce attempts placed on the dead host
            let mut i = 0;
            while i < state.running_reduce_list.len() {
                if !self.dead_reduce_slots[state.running_reduce_list[i].slot as usize] {
                    i += 1;
                    continue;
                }
                let victim = state.running_reduce_list.remove(i);
                state.requeued_reduces.push(victim.idx);
                reduce_bars.push(victim);
            }
            if map_bars.is_empty() && reduce_bars.is_empty() && reruns == 0 {
                continue;
            }
            // The per-field deltas are intricate here (kills, downgrades,
            // reruns, eligibility may flip back off); re-derive the policy
            // view wholesale from the mutated job state instead.
            let rebuilt = self.entry_of(job);
            let entry = self.entry_mut(job);
            let before = *entry;
            *entry = rebuilt;
            self.policy.on_entry_mutated(&before, &rebuilt);
            if self.config.record_timeline {
                for m in &map_bars {
                    self.record_bar(TimelineEntry {
                        job,
                        phase: TimelinePhase::Map,
                        slot: m.slot,
                        start: m.start,
                        end: now,
                    });
                }
                for r in &reduce_bars {
                    if r.shuffle_end >= now {
                        // killed mid-shuffle (fillers have infinite ends)
                        self.record_bar(TimelineEntry {
                            job,
                            phase: TimelinePhase::Shuffle,
                            slot: r.slot,
                            start: r.start,
                            end: now,
                        });
                    } else {
                        self.record_bar(TimelineEntry {
                            job,
                            phase: TimelinePhase::Shuffle,
                            slot: r.slot,
                            start: r.start,
                            end: r.shuffle_end,
                        });
                        self.record_bar(TimelineEntry {
                            job,
                            phase: TimelinePhase::Reduce,
                            slot: r.slot,
                            start: r.shuffle_end,
                            end: now,
                        });
                    }
                }
            }
        }
        self.jobq.reset_map_hint();
        self.jobq.reset_reduce_hint();
        self.jobq_dirty = true;
        self.note_mutation("on_host_failure");
    }

    /// Restores a failed worker host: the slots it lost rejoin the free
    /// pools, empty (no task state survives the downtime). Ignored for
    /// host 0, out-of-range ids, and hosts that are not currently dead
    /// (the matching failure was itself ignored, or the host already
    /// recovered); a recovered host may fail again if a later fault-plan
    /// entry names it.
    fn on_host_recovery(&mut self, host: u32) {
        let hosts = self.config.cluster.hosts;
        if host == 0 || host as usize >= hosts || !self.dead_hosts[host as usize] {
            return;
        }
        self.dead_hosts[host as usize] = false;
        for slot in (host as usize..self.config.cluster.map_slots).step_by(hosts) {
            if self.dead_map_slots[slot] {
                self.dead_map_slots[slot] = false;
                self.free_map_slots.push(slot as u32);
            }
        }
        for slot in (host as usize..self.config.cluster.reduce_slots).step_by(hosts) {
            if self.dead_reduce_slots[slot] {
                self.dead_reduce_slots[slot] = false;
                self.free_reduce_slots.push(slot as u32);
            }
        }
        self.jobq_dirty = true;
        self.note_mutation("on_host_recovery");
    }

    /// Policy-requested timer (see [`SchedulerPolicy::next_wakeup`]): force
    /// a scheduling pass so time-based decisions (min-share preemption
    /// timeouts) fire at their exact instant instead of waiting for the
    /// next queue event. A timer that was superseded by an earlier one is
    /// stale and ignored.
    fn on_policy_wakeup(&mut self, now: SimTime) {
        if self.policy_wakeup_at != Some(now) {
            return;
        }
        self.policy_wakeup_at = None;
        self.jobq_dirty = true;
        self.note_mutation("on_policy_wakeup");
    }

    /// Straggler timer: the attempt launched `speculation_factor × median`
    /// ago is still running — make a duplicate attempt schedulable. The
    /// event is stale (ignored) when the attempt already finished or was
    /// killed; a task is speculated at most once per primary attempt.
    fn on_speculation_due(&mut self, job: JobId, task_index: u32, attempt: u32) {
        let Some(state) = self.jobs.get_mut(job) else {
            // the job departed (and was retired) before its timer fired
            return;
        };
        let idx = task_index as usize;
        if state.map_done[idx] || state.speculated[idx] {
            return;
        }
        if !state.running_map_list.iter().any(|r| r.idx == task_index && r.attempt == attempt) {
            return;
        }
        state.speculated[idx] = true;
        state.spec_pending.push(task_index);
        let entry = self.entry_mut(job);
        let before = *entry;
        entry.pending_maps += 1;
        let after = *entry;
        self.policy.on_entry_mutated(&before, &after);
        self.jobq.reset_map_hint();
        self.jobq_dirty = true;
        self.note_mutation("on_speculation_due");
    }

    /// Rebuilds the policy view from scratch, in the same `(arrival, id)`
    /// order the incremental queue guarantees. Shared by the debug-only
    /// snapshot oracle and the checkpoint-restore path, so the oracle's
    /// differential tests exercise the exact rebuild `resume_from` relies
    /// on.
    fn rebuild_jobq(&mut self) {
        let mut entries: Vec<crate::JobEntry> =
            self.jobs.iter().filter(|(_, s)| s.active).map(|(id, _)| self.entry_of(id)).collect();
        entries.sort_by_key(|e| (e.arrival, e.id));
        self.jobq.clear();
        for entry in entries {
            self.jobq.insert(entry);
        }
    }

    /// One scheduling pass: drains free slots through the policy against
    /// the incrementally-maintained job view. Returns the number of task
    /// launches (each counts as one processed event). Skipped outright when
    /// nothing changed since the previous pass.
    fn schedule(&mut self, now: SimTime) -> u64 {
        #[cfg(any(test, debug_assertions))]
        if self.snapshot_oracle {
            self.rebuild_jobq();
            self.jobq_dirty = true;
        }
        if !self.jobq_dirty {
            return 0;
        }
        self.jobq_dirty = false;
        // NOTE: no free-slot early return here. A fully busy cluster must
        // still reach the preemption rounds below — bailing out when no
        // slot of either kind is free silently disabled `map_preemptions`
        // exactly when preemption matters most.
        self.jobq.now = now;
        if self.jobq.is_empty() {
            // still consult the wakeup hook: time-based policies clear
            // their starvation clocks when the queue drains
            self.consult_wakeup(now);
            return 0;
        }
        let mut launched = 0u64;

        while !self.free_map_slots.is_empty() {
            let Some(id) = self.policy.choose_next_map_task(&self.jobq) else {
                break;
            };
            let Some(entry) = self.jobq.get(id) else {
                debug_assert!(false, "policy chose unknown job {id}");
                break;
            };
            if !entry.has_schedulable_map() {
                debug_assert!(false, "policy chose job {id} without pending maps");
                break;
            }
            self.launch_map(id, now);
            launched += 1;
        }

        // Preemption rounds: when the map slots are exhausted, the policy
        // may name victim jobs whose most recent map task is killed and
        // requeued, freeing slots for more urgent work. Bounded by the
        // cluster size so a misbehaving policy cannot loop forever.
        let mut rounds = self.config.cluster.map_slots;
        while self.free_map_slots.is_empty() && rounds > 0 {
            rounds -= 1;
            self.victims.clear();
            self.policy.map_preemptions(&self.jobq, &mut self.victims);
            if self.victims.is_empty() {
                break;
            }
            let mut any = false;
            for i in 0..self.victims.len() {
                let victim = self.victims[i];
                if self.preempt_map(victim, now) {
                    any = true;
                }
            }
            if !any {
                break;
            }
            while !self.free_map_slots.is_empty() {
                let Some(id) = self.policy.choose_next_map_task(&self.jobq) else {
                    break;
                };
                let Some(entry) = self.jobq.get(id) else {
                    break;
                };
                if !entry.has_schedulable_map() {
                    break;
                }
                self.launch_map(id, now);
                launched += 1;
            }
        }

        while !self.free_reduce_slots.is_empty() {
            let Some(id) = self.policy.choose_next_reduce_task(&self.jobq) else {
                break;
            };
            let Some(entry) = self.jobq.get(id) else {
                debug_assert!(false, "policy chose unknown job {id}");
                break;
            };
            if !entry.has_schedulable_reduce() {
                debug_assert!(false, "policy chose job {id} without schedulable reduces");
                break;
            }
            self.launch_reduce(id, now);
            launched += 1;
        }
        self.consult_wakeup(now);
        launched
    }

    /// Asks the policy for its next time-based deadline and arms a
    /// `PolicyWakeup` timer for it. Arming is deduplicated: a new timer is
    /// pushed only when it is strictly earlier than the outstanding one
    /// (the pop-side handler re-consults after every fired timer, so a
    /// later deadline is re-armed then).
    fn consult_wakeup(&mut self, now: SimTime) {
        if let Some(at) = self.policy.next_wakeup(&self.jobq) {
            if at > now && !at.is_infinite() && self.policy_wakeup_at.is_none_or(|p| at < p) {
                self.policy_wakeup_at = Some(at);
                self.queue.push(at, EventKind::PolicyWakeup, JobId(0), 0);
            }
        }
    }

    fn launch_map(&mut self, job: JobId, now: SimTime) {
        let slot = self.free_map_slots.pop().expect("launch_map called with no free map slot");
        let state = self.jobs.get_mut(job).expect("launch_map on a retired job");
        // Requeued tasks (kills, failure reruns) go first, then fresh tasks,
        // then speculative duplicates of running stragglers.
        let (idx, primary) = if let Some(idx) = state.requeued_maps.pop() {
            (idx, true)
        } else if state.fresh_maps < state.maps_total {
            let fresh = state.fresh_maps as u32;
            state.fresh_maps += 1;
            (fresh, true)
        } else {
            let idx = state
                .spec_pending
                .pop()
                .expect("launch_map called on a job with no pending map work");
            (idx, false)
        };
        state.map_gen[idx as usize] += 1;
        let attempt = state.map_gen[idx as usize];
        state.running_map_list.push(RunningMap { idx, attempt, start: now, slot });
        state.first_map_start.get_or_insert(now);
        let spec_threshold = state.spec_threshold;
        let already_speculated = state.speculated[idx as usize];
        let base = state.template.map_duration(idx as usize);
        let entry = self.entry_mut(job);
        let before = *entry;
        entry.pending_maps -= 1;
        entry.running_maps += 1;
        let after = *entry;
        self.policy.on_entry_mutated(&before, &after);
        let duration = match self.map_slowdown.get(slot as usize) {
            Some(&f) => scaled(base, f),
            None => base,
        };
        self.queue.push_attempt(now + duration, EventKind::MapTaskDeparture, job, idx, attempt);
        // Arm the straggler timer only for primary attempts that will
        // actually outlive the threshold (the common fast case never
        // allocates a timer event).
        if primary && spec_threshold > 0 && duration > spec_threshold && !already_speculated {
            self.queue.push_attempt(
                now + spec_threshold,
                EventKind::SpeculationDue,
                job,
                idx,
                attempt,
            );
        }
        // No timeline bar yet: map bars are recorded when the attempt
        // leaves the slot (departure or kill), so killed attempts show
        // their true truncated extent.
    }

    fn launch_reduce(&mut self, job: JobId, now: SimTime) {
        let slot =
            self.free_reduce_slots.pop().expect("launch_reduce called with no free reduce slot");
        let state = self.jobs.get_mut(job).expect("launch_reduce on a retired job");
        let maps_done = state.maps_finished.is_some();
        let idx = state.requeued_reduces.pop().unwrap_or_else(|| {
            let fresh = state.fresh_reduces as u32;
            state.fresh_reduces += 1;
            fresh
        });
        state.reduce_gen[idx as usize] += 1;
        let attempt = state.reduce_gen[idx as usize];
        // later-wave reduce: typical shuffle + reduce phase (unused for a
        // first-wave filler, whose duration is resolved by AllMapsFinished)
        let base_shuffle = state.template.typical_shuffle_duration(idx as usize);
        let base_reduce = state.template.reduce_duration(idx as usize);
        let entry = self.entry_mut(job);
        let before = *entry;
        entry.pending_reduces -= 1;
        entry.running_reduces += 1;
        let after = *entry;
        self.policy.on_entry_mutated(&before, &after);
        let shuffle_end = if maps_done {
            let (mut shuffle, mut reduce) = (base_shuffle, base_reduce);
            if let Some(&f) = self.reduce_slowdown.get(slot as usize) {
                shuffle = scaled(shuffle, f);
                reduce = scaled(reduce, f);
            }
            let shuffle_end = now + shuffle;
            self.queue.push_attempt(
                shuffle_end + reduce,
                EventKind::ReduceTaskDeparture,
                job,
                idx,
                attempt,
            );
            shuffle_end
        } else {
            // first-wave filler of "infinite" duration; resolved by
            // AllMapsFinished
            SimTime::INFINITY
        };
        self.jobs
            .get_mut(job)
            .expect("state fetched above")
            .running_reduce_list
            .push(RunningReduce { idx, attempt, start: now, slot, shuffle_end });
        // No timeline bars yet: reduce bars are recorded at departure (or
        // kill) so a host failure can truncate them at the true extent.
    }

    /// Snapshots the engine's full deterministic state at the current
    /// settled boundary. `at` records the *requested* checkpoint instant;
    /// the actual boundary is `clock` (the last settled batch at or
    /// before `at`).
    fn capture(&self, at: SimTime) -> crate::EngineCheckpoint {
        let (events, next_seq, pushed) = self.queue.snapshot();
        crate::EngineCheckpoint {
            at,
            clock: self.clock,
            map_slots: self.config.cluster.map_slots,
            reduce_slots: self.config.cluster.reduce_slots,
            hosts: self.config.cluster.hosts,
            streaming: self.source.is_some(),
            collected: self.config.collect_job_results,
            jobq_dirty: self.jobq_dirty,
            events,
            next_seq,
            pushed,
            last_pulled_arrival: self.last_pulled_arrival,
            jobs_base: self.jobs.id_range().0,
            jobs: self.jobs.raw_slots().map(|s| s.cloned()).collect(),
            free_map_slots: self.free_map_slots.clone(),
            free_reduce_slots: self.free_reduce_slots.clone(),
            dead_hosts: self.dead_hosts.clone(),
            dead_map_slots: self.dead_map_slots.clone(),
            dead_reduce_slots: self.dead_reduce_slots.clone(),
            fault_plan: self.fault_plan.clone(),
            map_slowdown: self.map_slowdown.clone(),
            reduce_slowdown: self.reduce_slowdown.clone(),
            policy_wakeup_at: self.policy_wakeup_at,
            events_processed: self.events_processed,
            makespan: self.makespan,
            timeline: self.timeline.clone(),
            results: self.results.clone(),
            policy_name: self.policy.name().to_string(),
            policy_blob: self.policy.snapshot(),
        }
    }

    /// Resumes a checkpoint captured from a materialized-trace engine.
    ///
    /// Materialized engines admit every trace job at construction, so the
    /// checkpoint carries the whole job table and no trace is needed to
    /// continue — which is what lets the serve layer replay suffixes from
    /// a memoized checkpoint alone. `config` must be the configuration of
    /// the original run (the cluster shape and result collection are
    /// validated; behavioral knobs like speculation are the caller's
    /// contract), and `policy` a fresh policy of the kind that captured
    /// the checkpoint — divergences are applied afterwards via
    /// [`Self::apply_fork`].
    pub fn resume_materialized(
        config: EngineConfig,
        ckpt: &crate::EngineCheckpoint,
        policy: Box<dyn SchedulerPolicy + 'a>,
    ) -> Result<Self, crate::CkptError> {
        if ckpt.streaming {
            return Err(crate::CkptError::Mismatch(
                "checkpoint was captured from a streaming engine; \
                 resume it with resume_with_source"
                    .into(),
            ));
        }
        Self::resume_common(config, ckpt, policy, None)
    }

    /// Resumes a checkpoint captured from a streaming engine.
    ///
    /// The checkpoint records how many jobs the original run had admitted;
    /// that many are pulled from the fresh `source` and discarded (their
    /// state — including the one-arrival lookahead — lives in the
    /// checkpoint), after which the source supplies the remaining jobs
    /// exactly as the original run would have seen them.
    pub fn resume_with_source(
        config: EngineConfig,
        ckpt: &crate::EngineCheckpoint,
        mut source: Box<dyn JobSource + 'a>,
        policy: Box<dyn SchedulerPolicy + 'a>,
    ) -> Result<Self, crate::CkptError> {
        if !ckpt.streaming {
            return Err(crate::CkptError::Mismatch(
                "checkpoint was captured from a materialized engine; \
                 resume it with resume_materialized"
                    .into(),
            ));
        }
        let admitted = ckpt.jobs_base + ckpt.jobs.len();
        for i in 0..admitted {
            match source.next_job() {
                Ok(Some(_)) => {}
                Ok(None) => {
                    return Err(crate::CkptError::Mismatch(format!(
                        "source ran dry after {i} jobs; the checkpoint had admitted {admitted}"
                    )))
                }
                Err(e) => return Err(crate::CkptError::Mismatch(e.to_string())),
            }
        }
        Self::resume_common(config, ckpt, policy, Some(source))
    }

    fn resume_common(
        config: EngineConfig,
        ckpt: &crate::EngineCheckpoint,
        policy: Box<dyn SchedulerPolicy + 'a>,
        source: Option<Box<dyn JobSource + 'a>>,
    ) -> Result<Self, crate::CkptError> {
        use crate::CkptError;
        let c = config.cluster;
        if (c.map_slots, c.reduce_slots, c.hosts) != (ckpt.map_slots, ckpt.reduce_slots, ckpt.hosts)
        {
            return Err(CkptError::Mismatch(format!(
                "checkpoint cluster is {}m/{}r slots on {} hosts, resume config says {}m/{}r on {}",
                ckpt.map_slots, ckpt.reduce_slots, ckpt.hosts, c.map_slots, c.reduce_slots, c.hosts
            )));
        }
        if policy.name() != ckpt.policy_name {
            return Err(CkptError::Mismatch(format!(
                "checkpoint was captured under policy '{}', resume offers '{}'",
                ckpt.policy_name,
                policy.name()
            )));
        }
        if config.collect_job_results != ckpt.collected {
            return Err(CkptError::Mismatch(format!(
                "checkpoint {} job results, resume config {} them",
                if ckpt.collected { "collected" } else { "did not collect" },
                if config.collect_job_results { "collects" } else { "does not collect" }
            )));
        }
        let jobs = JobTable::from_parts(
            ckpt.jobs_base,
            ckpt.jobs.iter().map(|s| s.clone().map(Box::new)).collect(),
        );
        let boundary = (ckpt.events_processed > 0).then_some(ckpt.clock);
        let mut engine = SimulatorEngine {
            config,
            source,
            last_pulled_arrival: ckpt.last_pulled_arrival,
            policy,
            queue: EventQueue::from_snapshot(ckpt.events.clone(), ckpt.next_seq, ckpt.pushed),
            free_map_slots: ckpt.free_map_slots.clone(),
            free_reduce_slots: ckpt.free_reduce_slots.clone(),
            dead_hosts: ckpt.dead_hosts.clone(),
            dead_map_slots: ckpt.dead_map_slots.clone(),
            dead_reduce_slots: ckpt.dead_reduce_slots.clone(),
            fault_plan: ckpt.fault_plan.clone(),
            map_slowdown: ckpt.map_slowdown.clone(),
            reduce_slowdown: ckpt.reduce_slowdown.clone(),
            jobq: JobQueue::with_capacity(jobs.total().min(1024)),
            jobq_dirty: ckpt.jobq_dirty,
            victims: Vec::new(),
            policy_wakeup_at: ckpt.policy_wakeup_at,
            clock: ckpt.clock,
            seeded: true,
            jobs,
            events_processed: ckpt.events_processed,
            timeline: ckpt.timeline.clone(),
            results: ckpt.results.clone(),
            makespan: ckpt.makespan,
            invariants: config.invariants_enabled().then(|| {
                Box::new(InvariantState::resume(
                    &config,
                    ckpt.events_processed,
                    boundary,
                    &ckpt.timeline,
                ))
            }),
            #[cfg(any(test, debug_assertions))]
            snapshot_oracle: false,
        };
        engine.jobq.now = ckpt.clock;
        engine.rebuild_jobq();
        engine.adopt_policy();
        engine.policy.restore(&ckpt.policy_blob).map_err(CkptError::Mismatch)?;
        Ok(engine)
    }

    /// Replays the arrival-side policy hooks for every live job, in the
    /// `(arrival, id)` order the original run fired them, restricted to
    /// still-active jobs — used when a fresh policy object takes over a
    /// mid-run queue (checkpoint restore, the policy-swap divergence).
    /// Derivable policy state (routing tables, wanted-slot caps,
    /// deadline-index membership, share counters) is fully rebuilt by the
    /// replay; only non-derivable state (starvation clocks) needs the
    /// snapshot blob on top.
    fn adopt_policy(&mut self) {
        let entries: Vec<JobEntry> = self.jobq.entries().to_vec();
        for e in &entries {
            let state = self.jobs.get(e.id).expect("queued job must be live");
            let template = Arc::clone(&state.template);
            let relative_deadline = state.deadline.map(|d| d.since(state.arrival));
            self.policy.on_job_arrival(e.id, &template, relative_deadline, self.config.cluster);
        }
        for e in &entries {
            self.policy.on_job_queued(e);
        }
    }

    /// Applies a fork's divergences at the current settled boundary.
    /// Shared verbatim by the warm-start path (resume, then fork) and the
    /// from-scratch reference ([`Self::run_forked`]), which is what makes
    /// the two byte-identical by construction. Divergence-injected events
    /// land strictly after the boundary batch, which has already settled.
    pub fn apply_fork(&mut self, fork: crate::ForkSpec) -> Result<(), crate::CkptError> {
        use crate::{CkptError, Divergence};
        let horizon = if self.events_processed > 0 { self.clock + 1 } else { SimTime::ZERO };
        for d in fork.divergences {
            match d {
                Divergence::PolicySwap(new_policy) => {
                    // The incoming policy starts from scratch: it adopts
                    // the live queue through the same hook replay a
                    // restore uses, and owns scheduling from the next
                    // event on.
                    self.policy = new_policy;
                    self.adopt_policy();
                    self.jobq_dirty = true;
                }
                Divergence::AddSlots { map_slots, reduce_slots } => {
                    // Grow-only: new slots join the free pools alive and
                    // at nominal speed; the cluster never shrinks
                    // mid-run (occupied slots cannot be revoked here —
                    // that is what InjectFault models).
                    let (old_m, old_r) =
                        (self.config.cluster.map_slots, self.config.cluster.reduce_slots);
                    self.config.cluster.map_slots += map_slots;
                    self.config.cluster.reduce_slots += reduce_slots;
                    let (new_m, new_r) =
                        (self.config.cluster.map_slots, self.config.cluster.reduce_slots);
                    for s in old_m..new_m {
                        self.free_map_slots.push(s as u32);
                    }
                    for s in old_r..new_r {
                        self.free_reduce_slots.push(s as u32);
                    }
                    self.dead_map_slots.resize(new_m, false);
                    self.dead_reduce_slots.resize(new_r, false);
                    if !self.map_slowdown.is_empty() {
                        self.map_slowdown.resize(new_m, 1.0);
                    }
                    if !self.reduce_slowdown.is_empty() {
                        self.reduce_slowdown.resize(new_r, 1.0);
                    }
                    if let Some(inv) = self.invariants.as_deref_mut() {
                        inv.grow_cluster(new_m, new_r);
                    }
                    self.jobq_dirty = true;
                }
                Divergence::InjectFault { host, at } => {
                    if host.0 == 0 || host.0 as usize >= self.config.cluster.hosts {
                        return Err(CkptError::Mismatch(format!(
                            "fork fault names host {} of a {}-host cluster \
                             (host 0 never fails)",
                            host.0, self.config.cluster.hosts
                        )));
                    }
                    let t = at.max(horizon);
                    self.fault_plan.push(HostFailure { host, at: t });
                    self.queue.push(t, EventKind::HostFailure, JobId(0), host.0);
                }
                Divergence::ArrivalSurge(specs) => {
                    for spec in specs {
                        spec.template.validate().map_err(|e| {
                            CkptError::Mismatch(format!("surge job template invalid: {e}"))
                        })?;
                        let arrival = spec.arrival.max(horizon);
                        let state = JobState::new(
                            Arc::new(spec.template),
                            arrival,
                            spec.deadline,
                            &self.config,
                        );
                        let id = self.jobs.push(Box::new(state));
                        if self.config.collect_job_results {
                            self.results.push(None);
                        }
                        self.queue.push(arrival, EventKind::JobArrival, id, 0);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultSpec, RecoverySpec};
    use simmr_types::{JobSpec, JobTemplate};

    /// Minimal FIFO used to exercise the engine in isolation.
    struct TestFifo;
    impl SchedulerPolicy for TestFifo {
        fn name(&self) -> &str {
            "test-fifo"
        }
        fn choose_next_map_task(&mut self, q: &JobQueue) -> Option<JobId> {
            q.entries()
                .iter()
                .filter(|e| e.has_schedulable_map())
                .min_by_key(|e| (e.arrival, e.id))
                .map(|e| e.id)
        }
        fn choose_next_reduce_task(&mut self, q: &JobQueue) -> Option<JobId> {
            q.entries()
                .iter()
                .filter(|e| e.has_schedulable_reduce())
                .min_by_key(|e| (e.arrival, e.id))
                .map(|e| e.id)
        }
    }

    /// EDF with one preemption victim per round, mirroring `maxedf-p` —
    /// exercises the kill-and-requeue path without depending on simmr-sched.
    struct TestEdfPreempt;
    impl SchedulerPolicy for TestEdfPreempt {
        fn name(&self) -> &str {
            "test-edf-p"
        }
        fn choose_next_map_task(&mut self, q: &JobQueue) -> Option<JobId> {
            q.entries()
                .iter()
                .filter(|e| e.has_schedulable_map())
                .min_by_key(|e| e.edf_key())
                .map(|e| e.id)
        }
        fn choose_next_reduce_task(&mut self, q: &JobQueue) -> Option<JobId> {
            q.entries()
                .iter()
                .filter(|e| e.has_schedulable_reduce())
                .min_by_key(|e| e.edf_key())
                .map(|e| e.id)
        }
        fn map_preemptions(&mut self, q: &JobQueue, victims: &mut Vec<JobId>) {
            let Some(urgent) =
                q.entries().iter().filter(|e| e.has_schedulable_map()).min_by_key(|e| e.edf_key())
            else {
                return;
            };
            if let Some(victim) = q
                .entries()
                .iter()
                .filter(|e| {
                    e.id != urgent.id && e.running_maps > 0 && e.edf_key() > urgent.edf_key()
                })
                .max_by_key(|e| e.edf_key())
            {
                victims.push(victim.id);
            }
        }
    }

    fn run(config: EngineConfig, trace: &WorkloadTrace) -> SimulationReport {
        SimulatorEngine::new(config, trace, Box::new(TestFifo)).run()
    }

    fn uniform_job(
        maps: usize,
        reduces: usize,
        map_ms: u64,
        first_sh: u64,
        typ_sh: u64,
        red_ms: u64,
        arrival: SimTime,
    ) -> JobSpec {
        JobSpec::new(
            JobTemplate::new(
                "t",
                vec![map_ms; maps],
                if reduces > 0 { vec![first_sh] } else { vec![] },
                if reduces > 0 { vec![typ_sh; reduces] } else { vec![] },
                vec![red_ms; reduces],
            )
            .unwrap(),
            arrival,
        )
    }

    #[test]
    fn map_only_job_completion() {
        // 4 maps of 100ms on 2 slots -> 2 waves -> 200ms
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(4, 0, 100, 0, 0, 0, SimTime::ZERO));
        let report = run(EngineConfig::new(2, 2), &trace);
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(200));
        assert_eq!(report.jobs[0].maps_finished, Some(SimTime::from_millis(200)));
        assert_eq!(report.jobs[0].duration(), 200);
    }

    #[test]
    fn first_wave_fillers_use_first_shuffle() {
        // Maps of 50ms and 100ms on 2 map slots; 2 reduces on 2 slots.
        // Slowstart 5% (threshold 1 map): map 0 departs at t=50, reduces
        // become eligible and launch at t=50 as first-wave *fillers* (the
        // map stage is still running). Maps finish at t=100, so the fillers
        // resolve to 100 + first_shuffle(50) + reduce(30) = 180. The
        // typical-shuffle value (999) must NOT be used.
        let template =
            JobTemplate::new("t", vec![50, 100], vec![50], vec![999, 999], vec![30, 30]).unwrap();
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(JobSpec::new(template, SimTime::ZERO));
        let report = run(EngineConfig::new(2, 2), &trace);
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(180));
    }

    #[test]
    fn typical_shuffle_used_for_later_waves() {
        // 2 maps (100ms each) on 1 map slot => map stage ends at t=200.
        // 2 reduces on 1 reduce slot, slowstart 0.5 (threshold 1 map):
        // Wave 1: reduce 0 launches at t=100 as a filler; maps finish at
        //   t=200, so it departs at 200 + first_shuffle(20) + reduce(30)
        //   = 250.
        // Wave 2: reduce 1 launches at t=250 after the map stage — it uses
        //   the *typical* shuffle: 250 + 40 + 30 = 320.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(2, 2, 100, 20, 40, 30, SimTime::ZERO));
        let report = run(EngineConfig::new(1, 1).with_slowstart(0.5), &trace);
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(320));
    }

    #[test]
    fn slowstart_delays_reduce_launch() {
        // 4 maps of 100ms on 1 map slot; maps finish at t=400.
        // slowstart 1.0: the reduce only launches once AllMapsFinished has
        // been applied, so it runs as a later-wave task with the *typical*
        // shuffle: 400 + 40 + 30 = 470.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(4, 1, 100, 20, 40, 30, SimTime::ZERO));
        let report = run(EngineConfig::new(1, 1).with_slowstart(1.0), &trace);
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(470));

        // slowstart 0.05: the reduce launches right after the first map
        // (t=100) as a first-wave filler; it resolves with the
        // non-overlapping *first* shuffle: 400 + 20 + 30 = 450 — earlier,
        // because the overlapped part of its shuffle was already done.
        let report = run(EngineConfig::new(1, 1).with_slowstart(0.05), &trace);
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(450));
    }

    #[test]
    fn multi_wave_maps() {
        // 5 maps of 100ms on 2 slots: waves at 100,200,300 => 300ms total
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(5, 0, 100, 0, 0, 0, SimTime::ZERO));
        let report = run(EngineConfig::new(2, 2), &trace);
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(300));
    }

    #[test]
    fn fifo_two_jobs_share_cluster() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(2, 0, 100, 0, 0, 0, SimTime::ZERO));
        trace.push(uniform_job(2, 0, 100, 0, 0, 0, SimTime::ZERO));
        // 2 map slots: job 0 takes both (FIFO), finishes at 100; job 1 runs
        // 100..200.
        let report = run(EngineConfig::new(2, 2), &trace);
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(100));
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(200));
    }

    #[test]
    fn late_arrival_waits() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(1, 0, 100, 0, 0, 0, SimTime::from_millis(500)));
        let report = run(EngineConfig::new(4, 4), &trace);
        assert_eq!(report.jobs[0].arrival, SimTime::from_millis(500));
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(600));
    }

    #[test]
    fn deterministic_replay() {
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..20 {
            trace.push(uniform_job(
                3 + i % 5,
                1 + i % 3,
                50 + (i as u64 * 13) % 200,
                10,
                25,
                15,
                SimTime::from_millis((i as u64 * 37) % 400),
            ));
        }
        let r1 = run(EngineConfig::new(4, 3), &trace);
        let r2 = run(EngineConfig::new(4, 3), &trace);
        assert_eq!(r1, r2);
    }

    #[test]
    fn timeline_recording() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(2, 1, 100, 20, 40, 30, SimTime::ZERO));
        let report = run(EngineConfig::new(2, 1).with_timeline(), &trace);
        // 2 map bars + 1 shuffle bar + 1 reduce bar
        let maps = report.timeline.iter().filter(|t| t.phase == TimelinePhase::Map).count();
        let shuffles = report.timeline.iter().filter(|t| t.phase == TimelinePhase::Shuffle).count();
        let reduces = report.timeline.iter().filter(|t| t.phase == TimelinePhase::Reduce).count();
        assert_eq!((maps, shuffles, reduces), (2, 1, 1));
        for bar in &report.timeline {
            assert!(bar.start <= bar.end);
        }
        // without the flag the timeline stays empty
        let report = run(EngineConfig::new(2, 1), &trace);
        assert!(report.timeline.is_empty());
    }

    /// Groups bars by (kind-of-slot, slot id) and checks pairwise
    /// disjointness; shuffle+reduce of one task share a slot contiguously,
    /// so adjacent reduce-slot bars are merged first.
    fn assert_timeline_disjoint(report: &SimulationReport, map_slots: usize, reduce_slots: usize) {
        let mut map_bars: std::collections::HashMap<u32, Vec<(u64, u64)>> = Default::default();
        let mut red_bars: std::collections::HashMap<u32, Vec<(u64, u64)>> = Default::default();
        for bar in &report.timeline {
            let target = match bar.phase {
                TimelinePhase::Map => &mut map_bars,
                _ => &mut red_bars,
            };
            target.entry(bar.slot).or_default().push((bar.start.as_millis(), bar.end.as_millis()));
        }
        assert!(map_bars.len() <= map_slots);
        assert!(red_bars.len() <= reduce_slots);
        for bars in map_bars.values_mut() {
            bars.sort_unstable();
            for w in bars.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap on map slot: {w:?}");
            }
        }
        for bars in red_bars.values_mut() {
            bars.sort_unstable();
            let mut merged: Vec<(u64, u64)> = Vec::new();
            for &(s, e) in bars.iter() {
                match merged.last_mut() {
                    Some(last) if s == last.1 => last.1 = e,
                    _ => merged.push((s, e)),
                }
            }
            for w in merged.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap on reduce slot: {w:?}");
            }
        }
    }

    #[test]
    fn timeline_slots_never_oversubscribed() {
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..10 {
            trace.push(uniform_job(6, 3, 90, 15, 35, 25, SimTime::from_millis(i * 40)));
        }
        let report = run(EngineConfig::new(3, 2).with_timeline(), &trace);
        assert_timeline_disjoint(&report, 3, 2);
    }

    #[test]
    fn timeline_slots_never_oversubscribed_under_preemption() {
        // Regression test for the preemption-path pair of bugs: killed map
        // attempts used to keep their full launch-time bar (overlapping the
        // slot's next occupant), and `preempt_map` left `jobq_dirty` unset.
        // Staggered arrivals with ever-tighter deadlines under 3 contended
        // map slots force repeated kills; invariants are armed so the
        // checker cross-examines every batch as well.
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..10u64 {
            trace.push(
                uniform_job(6, 2, 200, 15, 35, 25, SimTime::from_millis(i * 60))
                    .with_deadline(SimTime::from_millis(20_000 - i * 1_800)),
            );
        }
        let report = SimulatorEngine::new(
            EngineConfig::new(3, 2).with_timeline().with_invariants(),
            &trace,
            Box::new(TestEdfPreempt),
        )
        .run();
        assert_eq!(report.jobs.len(), 10);
        assert_timeline_disjoint(&report, 3, 2);
        // preemption actually happened: killed attempts add extra map bars
        let total_maps: usize = trace.jobs.iter().map(|j| j.template.num_maps).sum();
        let map_bars = report.timeline.iter().filter(|t| t.phase == TimelinePhase::Map).count();
        assert!(
            map_bars > total_maps,
            "no preemption occurred ({map_bars} bars, {total_maps} maps)"
        );
    }

    #[test]
    fn preempted_map_bar_truncated_at_kill() {
        // Job 0 (loose deadline) holds the only map slot; job 1 arrives at
        // t=200 with a tight deadline and preempts it. The killed attempt
        // must leave a bar truncated at exactly t=200, and job 0's relaunch
        // restarts from scratch at t=300.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(
            uniform_job(2, 0, 1000, 0, 0, 0, SimTime::ZERO)
                .with_deadline(SimTime::from_millis(100_000)),
        );
        trace.push(
            uniform_job(1, 0, 100, 0, 0, 0, SimTime::from_millis(200))
                .with_deadline(SimTime::from_millis(300)),
        );
        let report = SimulatorEngine::new(
            EngineConfig::new(1, 1).with_timeline().with_invariants(),
            &trace,
            Box::new(TestEdfPreempt),
        )
        .run();
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(300));
        // job 0: map 0 reruns 300..1300, map 1 runs 1300..2300
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(2300));
        let mut map_bars: Vec<(u32, u64, u64)> = report
            .timeline
            .iter()
            .filter(|t| t.phase == TimelinePhase::Map)
            .map(|t| (t.job.0, t.start.as_millis(), t.end.as_millis()))
            .collect();
        map_bars.sort_unstable_by_key(|&(_, s, _)| s);
        // 3 map tasks + 1 killed attempt = 4 bars, killed bar cut at t=200
        assert_eq!(map_bars, vec![(0, 0, 200), (1, 200, 300), (0, 300, 1300), (0, 1300, 2300)]);
        assert_timeline_disjoint(&report, 1, 1);
    }

    #[test]
    fn event_count_and_makespan() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(3, 2, 100, 10, 20, 15, SimTime::ZERO));
        let report = run(EngineConfig::new(2, 2), &trace);
        // At least: 1 job arrival + 3*2 map events + 2*2 reduce events +
        // all-maps + departure = 13
        assert!(report.events_processed >= 13, "{}", report.events_processed);
        assert_eq!(report.makespan, report.jobs[0].completion);
    }

    #[test]
    fn zero_duration_tasks() {
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(2, 1, 0, 0, 0, 0, SimTime::ZERO));
        let report = run(EngineConfig::new(1, 1), &trace);
        assert_eq!(report.jobs[0].completion, SimTime::ZERO);
    }

    #[test]
    fn deadline_carried_through() {
        let mut trace = WorkloadTrace::new("t", "test");
        let job =
            uniform_job(1, 0, 100, 0, 0, 0, SimTime::ZERO).with_deadline(SimTime::from_millis(50));
        trace.push(job);
        let report = run(EngineConfig::new(1, 1), &trace);
        assert_eq!(report.jobs[0].deadline, Some(SimTime::from_millis(50)));
        assert!(!report.jobs[0].met_deadline());
        assert_eq!(report.missed_deadlines(), 1);
        assert!((report.total_relative_deadline_exceeded() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let trace = WorkloadTrace::new("t", "test");
        let report = run(EngineConfig::new(4, 4), &trace);
        assert!(report.jobs.is_empty());
        assert_eq!(report.events_processed, 0);
    }

    #[test]
    fn heavy_trace_all_jobs_complete() {
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..200u64 {
            trace.push(uniform_job(
                1 + (i % 7) as usize,
                (i % 4) as usize,
                10 + i % 90,
                5,
                10,
                8,
                SimTime::from_millis(i * 7),
            ));
        }
        let report = run(EngineConfig::new(5, 3), &trace);
        assert_eq!(report.jobs.len(), 200);
        for r in &report.jobs {
            assert!(r.completion >= r.arrival);
        }
        // completions of FIFO'd jobs with same arrival pattern are monotone
        // in arrival for map-only jobs; at minimum makespan covers all
        assert_eq!(report.makespan, report.jobs.iter().map(|j| j.completion).max().unwrap());
    }

    #[test]
    fn incremental_view_matches_snapshot_oracle() {
        // mixed workload with simultaneous arrivals, zero-duration tasks,
        // multi-wave maps and fillers — the incremental queue must produce
        // the same report as a per-pass from-scratch rebuild
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..60u64 {
            trace.push(uniform_job(
                1 + (i % 6) as usize,
                (i % 3) as usize,
                (i % 5) * 40,
                7,
                11,
                9,
                SimTime::from_millis((i / 3) * 50),
            ));
        }
        let fast = run(EngineConfig::new(4, 3), &trace);
        let oracle = SimulatorEngine::new(EngineConfig::new(4, 3), &trace, Box::new(TestFifo))
            .with_snapshot_oracle()
            .run();
        assert_eq!(fast, oracle);
    }

    #[test]
    fn events_counted_per_launch() {
        // 1 job, 3 maps, 2 reduces, no preemption: events = 1 arrival +
        // 3 launches + 3 departures (maps) + 2 launches + 2 departures
        // (reduces) + AllMapsFinished + JobDeparture = 13, matching the
        // old per-marker accounting exactly
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(3, 2, 100, 10, 20, 15, SimTime::ZERO));
        let report = run(EngineConfig::new(4, 4), &trace);
        assert_eq!(report.events_processed, 13);
    }

    #[test]
    fn saturated_cluster_preemption_still_runs() {
        // Regression for the preemption gap: with 1 map + 1 reduce slot and
        // the reduce slot occupied by job 0's filler, the old scheduling
        // pass early-returned ("no slot of either kind free") and never
        // consulted map_preemptions — job 1's tight-deadline map had to
        // wait for job 0's 1000 ms map to finish naturally.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(
            uniform_job(2, 1, 1000, 10, 20, 15, SimTime::ZERO)
                .with_deadline(SimTime::from_millis(100_000)),
        );
        trace.push(
            uniform_job(1, 0, 100, 0, 0, 0, SimTime::from_millis(1500))
                .with_deadline(SimTime::from_millis(1700)),
        );
        let config = EngineConfig::new(1, 1).with_slowstart(0.05).with_invariants();
        let report = SimulatorEngine::new(config, &trace, Box::new(TestEdfPreempt)).run();
        // job 0's second map (launched at 1000) is killed at 1500; job 1
        // runs 1500..1600 and meets its deadline
        assert_eq!(report.jobs[1].completion, SimTime::from_millis(1600));
        assert!(report.jobs[1].met_deadline());
    }

    #[test]
    fn host_failure_kills_and_reruns() {
        // 4 map + 2 reduce slots striped over 2 hosts: host 1 owns map
        // slots 1, 3 and reduce slot 1. Six 100 ms maps: wave 1 puts maps
        // 0-3 on slots 3,2,1,0 (free list pops from the back), wave 2 puts
        // map 4 on slot 0 and map 5 on slot 1 at t=100. The failure at
        // t=150 kills the running map 5 (slot 1) and re-runs completed
        // maps 0 (slot 3) and 2 (slot 1) whose output died with the host;
        // the filler reduce on dead reduce slot 1 is killed and relaunched
        // on slot 0.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(6, 1, 100, 20, 40, 30, SimTime::ZERO));
        let config = EngineConfig::new(4, 2).with_hosts(2).with_timeline().with_invariants();
        let report = SimulatorEngine::new(config, &trace, Box::new(TestFifo))
            .with_fault_plan(vec![HostFailure { host: HostId(1), at: SimTime::from_millis(150) }])
            .run();
        // surviving slots 0, 2 re-run the three lost tasks: only slot 2 is
        // free at 150 (map 2 runs 150..250), slot 0 frees at 200 (map 0
        // runs 200..300), slot 2 again at 250 (map 5 runs 250..350); the
        // filler reduce resolves with first shuffle 20 + reduce 30
        assert_eq!(report.jobs[0].maps_finished, Some(SimTime::from_millis(350)));
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(400));
        assert_eq!(report.makespan, SimTime::from_millis(400));
        // 6 originals + 1 killed attempt + 2 re-runs = 9 map bars, none on
        // the dead slots after t=150
        let map_bars: Vec<_> =
            report.timeline.iter().filter(|b| b.phase == TimelinePhase::Map).collect();
        assert_eq!(map_bars.len(), 9);
        for bar in &map_bars {
            if bar.slot % 2 == 1 {
                assert!(
                    bar.end <= SimTime::from_millis(150),
                    "bar on dead slot past the failure: {bar:?}"
                );
            }
        }
    }

    #[test]
    fn speculation_first_finisher_wins() {
        // maps [100, 100, 100, 1000] on 2 slots: median 100, threshold
        // 2.0 × 100 = 200. Map 3 (launched at 100 on slot 1) is still
        // running when its timer fires at 300; the duplicate launches at
        // 300 on slot 0. The original finishes first at 1100 and the
        // duplicate is killed (truncated bar 300..1100); its stale
        // departure at 1300 is ignored.
        let template =
            JobTemplate::new("t", vec![100, 100, 100, 1000], vec![], vec![], vec![]).unwrap();
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(JobSpec::new(template, SimTime::ZERO));
        let config =
            EngineConfig::new(2, 1).with_speculation(2.0).with_timeline().with_invariants();
        let report = run(config, &trace);
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(1100));
        assert_eq!(report.makespan, SimTime::from_millis(1100));
        let map_bars: Vec<_> =
            report.timeline.iter().filter(|b| b.phase == TimelinePhase::Map).collect();
        assert_eq!(map_bars.len(), 5, "4 primaries + 1 killed duplicate");
        let dup = map_bars
            .iter()
            .find(|b| b.start == SimTime::from_millis(300))
            .expect("duplicate attempt bar");
        assert_eq!(dup.end, SimTime::from_millis(1100));
    }

    #[test]
    fn host_0_failures_ignored() {
        // host 0 never fails (it anchors at least one slot of each kind);
        // out-of-range hosts in a hand-built plan are ignored too
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(4, 1, 100, 10, 20, 15, SimTime::ZERO));
        let config = EngineConfig::new(2, 1).with_hosts(2).with_invariants();
        let baseline = SimulatorEngine::new(config, &trace, Box::new(TestFifo)).run();
        let ignored = SimulatorEngine::new(config, &trace, Box::new(TestFifo))
            .with_fault_plan(vec![
                HostFailure { host: HostId(0), at: SimTime::from_millis(50) },
                HostFailure { host: HostId(9), at: SimTime::from_millis(60) },
            ])
            .run();
        assert_eq!(baseline.jobs, ignored.jobs);
        assert_eq!(baseline.makespan, ignored.makespan);
    }

    #[test]
    fn slowdown_scales_task_durations() {
        // constant 2× slowdown on every slot: 2 maps of 100 ms run
        // sequentially on the single map slot (200 + 200), the map stage
        // closes at 400, and the reduce (launched at 400 under full
        // slowstart) takes (40 + 30) × 2 = 140 → completion at 540
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(2, 1, 100, 20, 40, 30, SimTime::ZERO));
        let config = EngineConfig::new(1, 1)
            .with_slowstart(1.0)
            .with_slowdown(Dist::Constant { value: 2.0 }, 5)
            .with_invariants();
        let report = run(config, &trace);
        assert_eq!(report.jobs[0].maps_finished, Some(SimTime::from_millis(400)));
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(540));
    }

    #[test]
    fn failure_model_deterministic_across_reruns() {
        // the full perturbation stack — seeded faults, speculation and
        // per-slot slowdowns — must replay byte-identically
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..20u64 {
            trace.push(uniform_job(
                1 + (i % 7) as usize,
                (i % 3) as usize,
                50 + (i % 5) * 90,
                15,
                25,
                35,
                SimTime::from_millis(i * 130),
            ));
        }
        let config = EngineConfig::new(6, 3)
            .with_hosts(3)
            .with_faults(FaultSpec { seed: 42, count: 3, mean_interval_ms: 400 })
            .with_speculation(1.5)
            .with_slowdown(Dist::LogNormal { mu: -0.125, sigma: 0.5 }, 7)
            .with_timeline()
            .with_invariants();
        let a = run(config, &trace);
        let b = run(config, &trace);
        assert_eq!(a, b);
        // the plan actually fired: some slots are lost, so at least one
        // host beyond host 0 died — all jobs still complete
        assert_eq!(a.jobs.len(), 20);
    }

    #[test]
    fn host_recovery_restores_slots() {
        // 40 maps of 100 ms on 4 slots over 2 hosts; host 1 (slots 1, 3)
        // dies at t=150. Permanently, the tail of the job runs on host 0's
        // two surviving slots. With recovery armed the host comes back
        // after a seeded exponential downtime and the run finishes
        // strictly earlier — and byte-identically across reruns. The
        // invariant checker's slot-conservation pass covers the restored
        // slots at every batch.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(40, 0, 100, 0, 0, 0, SimTime::ZERO));
        let plan = vec![HostFailure { host: HostId(1), at: SimTime::from_millis(150) }];
        let config = EngineConfig::new(4, 1).with_hosts(2).with_invariants();
        let permanent = SimulatorEngine::new(config, &trace, Box::new(TestFifo))
            .with_fault_plan(plan.clone())
            .run();
        let recovering = config.with_recovery(RecoverySpec { seed: 9, mean_ms: 300 });
        let a = SimulatorEngine::new(recovering, &trace, Box::new(TestFifo))
            .with_fault_plan(plan.clone())
            .run();
        let b = SimulatorEngine::new(recovering, &trace, Box::new(TestFifo))
            .with_fault_plan(plan)
            .run();
        assert_eq!(a, b);
        assert!(
            a.makespan < permanent.makespan,
            "recovery did not help: {} vs permanent {}",
            a.makespan,
            permanent.makespan
        );
    }

    #[test]
    fn recovery_deterministic_with_full_perturbation_stack() {
        // recovery draws from its own RNG stream, so arming it alongside
        // seeded faults, speculation and slowdowns stays deterministic —
        // and a recovered host may fail again under a later plan entry
        let mut trace = WorkloadTrace::new("t", "test");
        for i in 0..20u64 {
            trace.push(uniform_job(
                1 + (i % 7) as usize,
                (i % 3) as usize,
                50 + (i % 5) * 90,
                15,
                25,
                35,
                SimTime::from_millis(i * 130),
            ));
        }
        let config = EngineConfig::new(6, 3)
            .with_hosts(3)
            .with_faults(FaultSpec { seed: 42, count: 4, mean_interval_ms: 400 })
            .with_recovery(RecoverySpec { seed: 11, mean_ms: 500 })
            .with_speculation(1.5)
            .with_slowdown(Dist::LogNormal { mu: -0.125, sigma: 0.5 }, 7)
            .with_timeline()
            .with_invariants();
        let a = run(config, &trace);
        let b = run(config, &trace);
        assert_eq!(a, b);
        assert_eq!(a.jobs.len(), 20);
        // changing only the recovery seed must leave the fault plan intact
        // but may shift completions (different downtimes)
        let reseeded = config.with_recovery(RecoverySpec { seed: 12, mean_ms: 500 });
        let c = run(reseeded, &trace);
        assert_eq!(c.jobs.len(), 20);
    }

    /// Holds every map back until `release`, using the wakeup timer to get
    /// a scheduling pass at the release time (plus one more to launch,
    /// since `next_wakeup` runs after the pass's choose loop).
    struct GatedRelease {
        release: SimTime,
        open: bool,
    }
    impl SchedulerPolicy for GatedRelease {
        fn name(&self) -> &str {
            "test-gated"
        }
        fn choose_next_map_task(&mut self, q: &JobQueue) -> Option<JobId> {
            if !self.open {
                return None;
            }
            q.entries()
                .iter()
                .filter(|e| e.has_schedulable_map())
                .min_by_key(|e| (e.arrival, e.id))
                .map(|e| e.id)
        }
        fn choose_next_reduce_task(&mut self, q: &JobQueue) -> Option<JobId> {
            q.entries()
                .iter()
                .filter(|e| e.has_schedulable_reduce())
                .min_by_key(|e| (e.arrival, e.id))
                .map(|e| e.id)
        }
        fn next_wakeup(&mut self, q: &JobQueue) -> Option<SimTime> {
            if self.open || q.is_empty() {
                return None;
            }
            if q.now >= self.release {
                self.open = true;
                // one more pass so the now-open gate actually launches
                return Some(q.now + 1);
            }
            Some(self.release)
        }
    }

    #[test]
    fn policy_wakeup_drives_time_based_scheduling() {
        // One 100 ms map arriving at t=0, gate at t=500: without the
        // PolicyWakeup timer the engine would run out of events with the
        // job stuck. The wakeup fires the pass at 500, the follow-up pass
        // at 501 launches, and the job completes at 601.
        let mut trace = WorkloadTrace::new("t", "test");
        trace.push(uniform_job(1, 0, 100, 0, 0, 0, SimTime::ZERO));
        let policy = GatedRelease { release: SimTime::from_millis(500), open: false };
        let report = SimulatorEngine::new(
            EngineConfig::new(2, 1).with_invariants(),
            &trace,
            Box::new(policy),
        )
        .run();
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(601));

        // a gate already open at arrival time needs only the follow-up pass
        let policy = GatedRelease { release: SimTime::ZERO, open: false };
        let report = SimulatorEngine::new(EngineConfig::new(2, 1), &trace, Box::new(policy)).run();
        assert_eq!(report.jobs[0].completion, SimTime::from_millis(101));
    }
}
