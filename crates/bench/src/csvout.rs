//! CSV output helpers for the experiment binaries.
//!
//! Every figure binary prints its series to stdout *and* writes a CSV under
//! `experiments/results/` so EXPERIMENTS.md can reference stable artifacts.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Walks up from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`), falling back to
/// `.` when none is found.
pub fn workspace_root() -> PathBuf {
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = cur.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return cur;
                }
            }
        }
        if !cur.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Resolves the results directory (created on demand): the
/// `SIMMR_RESULTS_DIR` environment variable, or `experiments/results`
/// relative to the workspace root / current directory.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("SIMMR_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("experiments").join("results"));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Writes `rows` (with a header) to `experiments/results/<name>.csv` and
/// echoes the path. Errors are printed, not fatal — the figures also go to
/// stdout.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> Option<PathBuf> {
    let path = results_dir().join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let ok =
                writeln!(f, "{header}").is_ok() && rows.iter().all(|r| writeln!(f, "{r}").is_ok());
            if ok {
                eprintln!("[csv] wrote {}", path.display());
                Some(path)
            } else {
                eprintln!("[csv] failed writing {}", path.display());
                None
            }
        }
        Err(e) => {
            eprintln!("[csv] cannot create {}: {e}", path.display());
            None
        }
    }
}

/// Reads back a CSV written by [`write_csv`] (test helper).
pub fn read_csv(path: &Path) -> std::io::Result<Vec<String>> {
    Ok(std::fs::read_to_string(path)?.lines().map(str::to_string).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        std::env::set_var("SIMMR_RESULTS_DIR", std::env::temp_dir().join("simmr-csv-test"));
        let rows = vec!["1,2".to_string(), "3,4".to_string()];
        let path = write_csv("unit_test", "a,b", &rows).unwrap();
        let lines = read_csv(&path).unwrap();
        assert_eq!(lines, vec!["a,b", "1,2", "3,4"]);
        std::env::remove_var("SIMMR_RESULTS_DIR");
    }
}
