//! The testbed → profile → replay validation pipeline (§IV).

use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim, TestbedRun};
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_mumak::{MumakConfig, MumakSim};
use simmr_sched::parse_policy;
use simmr_trace::{trace_from_history, RumenTrace};
use simmr_types::{SimTime, SimulationReport, WorkloadTrace};

/// Runs a set of `(job model, arrival, deadline)` submissions on the
/// testbed simulator.
pub fn run_testbed(
    jobs: Vec<(simmr_apps::JobModel, SimTime, Option<SimTime>)>,
    policy: ClusterPolicy,
    config: ClusterConfig,
    seed: u64,
) -> TestbedRun {
    let mut sim = ClusterSim::new(config, policy, seed);
    for (model, arrival, deadline) in jobs {
        sim.submit(model, arrival, deadline);
    }
    sim.run()
}

/// Profiles a testbed history log and replays it in SimMR under the named
/// policy (`fifo`, `maxedf`, `minedf`, `fair`). `deadlines[i]` attaches an
/// absolute deadline to job `i` of the log (deadlines are not recorded in
/// job-history logs, so they are re-supplied here).
pub fn replay_in_simmr(
    history: &str,
    policy_name: &str,
    map_slots: usize,
    reduce_slots: usize,
    deadlines: &[Option<SimTime>],
) -> SimulationReport {
    let mut trace: WorkloadTrace =
        trace_from_history(history, "replay").expect("testbed history must profile cleanly");
    for (i, job) in trace.jobs.iter_mut().enumerate() {
        job.deadline = deadlines.get(i).copied().flatten();
    }
    let policy = parse_policy(policy_name).unwrap_or_else(|e| panic!("{e}"));
    SimulatorEngine::new(EngineConfig::new(map_slots, reduce_slots), &trace, policy).run()
}

/// Like [`replay_in_simmr`] but with a caller-constructed policy (used by
/// the Figure 5 harness to hand SimMR's MinEDF the same preset allocations
/// the testbed's MinEDF derived from the shared profile database).
pub fn replay_in_simmr_with(
    history: &str,
    policy: Box<dyn simmr_core::SchedulerPolicy>,
    map_slots: usize,
    reduce_slots: usize,
    deadlines: &[Option<SimTime>],
) -> SimulationReport {
    let mut trace: WorkloadTrace =
        trace_from_history(history, "replay").expect("testbed history must profile cleanly");
    for (i, job) in trace.jobs.iter_mut().enumerate() {
        job.deadline = deadlines.get(i).copied().flatten();
    }
    SimulatorEngine::new(EngineConfig::new(map_slots, reduce_slots), &trace, policy).run()
}

/// Replays a testbed history log in the Mumak baseline (FIFO only, like
/// the paper's comparison).
pub fn replay_in_mumak(history: &str, config: MumakConfig) -> SimulationReport {
    let rumen = RumenTrace::from_history(history).expect("history must parse");
    MumakSim::new(config).run(&rumen)
}

/// One row of a Figure-5-style accuracy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Job name.
    pub name: String,
    /// Ground-truth duration from the testbed, ms.
    pub actual_ms: u64,
    /// Simulated duration, ms.
    pub simulated_ms: u64,
}

impl AccuracyRow {
    /// Relative error of the simulation, in percent (signed: negative =
    /// underestimate).
    pub fn error_pct(&self) -> f64 {
        if self.actual_ms == 0 {
            return 0.0;
        }
        (self.simulated_ms as f64 - self.actual_ms as f64) / self.actual_ms as f64 * 100.0
    }
}

/// Mean of absolute per-row errors, in percent.
pub fn mean_abs_error(rows: &[AccuracyRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.error_pct().abs()).sum::<f64>() / rows.len() as f64
}

/// Maximum absolute per-row error, in percent.
pub fn max_abs_error(rows: &[AccuracyRow]) -> f64 {
    rows.iter().map(|r| r.error_pct().abs()).fold(0.0, f64::max)
}

/// Builds accuracy rows by matching testbed results to a simulated report
/// (jobs are matched by log order, which both sides preserve).
pub fn accuracy_rows(testbed: &TestbedRun, simulated: &SimulationReport) -> Vec<AccuracyRow> {
    testbed
        .results
        .iter()
        .zip(&simulated.jobs)
        .map(|(actual, sim)| AccuracyRow {
            name: actual.name.clone(),
            actual_ms: actual.duration_ms(),
            simulated_ms: sim.duration(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmr_apps::{AppKind, JobModel};

    fn quick_job(maps: usize, reduces: usize) -> JobModel {
        let mut j = JobModel::with_task_counts(AppKind::WordCount, maps, reduces);
        j.map_time_s = simmr_stats::Dist::LogNormal { mu: 1.0, sigma: 0.2 };
        j.reduce_time_s = simmr_stats::Dist::LogNormal { mu: 0.3, sigma: 0.2 };
        j.shuffle_mb_per_reduce = 60.0;
        j
    }

    #[test]
    fn accuracy_row_math() {
        let r = AccuracyRow { name: "x".into(), actual_ms: 1000, simulated_ms: 950 };
        assert!((r.error_pct() + 5.0).abs() < 1e-12);
        let rows = vec![r, AccuracyRow { name: "y".into(), actual_ms: 1000, simulated_ms: 1100 }];
        assert!((mean_abs_error(&rows) - 7.5).abs() < 1e-12);
        assert!((max_abs_error(&rows) - 10.0).abs() < 1e-12);
        assert_eq!(mean_abs_error(&[]), 0.0);
    }

    #[test]
    fn end_to_end_simmr_replay_is_accurate() {
        // the §IV-D experiment in miniature: testbed run -> profile ->
        // SimMR replay should land within a few percent
        let config = ClusterConfig::tiny(8);
        let run = run_testbed(
            vec![(quick_job(24, 6), SimTime::ZERO, None)],
            ClusterPolicy::Fifo,
            config,
            42,
        );
        let report = replay_in_simmr(
            &run.history,
            "fifo",
            config.total_map_slots(),
            config.total_reduce_slots(),
            &[None],
        );
        let rows = accuracy_rows(&run, &report);
        assert_eq!(rows.len(), 1);
        let err = mean_abs_error(&rows);
        assert!(err < 10.0, "SimMR replay error too large: {err:.2}%");
    }

    #[test]
    fn mumak_underestimates_shuffle_heavy_jobs() {
        let config = ClusterConfig::tiny(8);
        let mut job = quick_job(16, 8);
        job.shuffle_mb_per_reduce = 400.0; // shuffle-heavy
        let run = run_testbed(vec![(job, SimTime::ZERO, None)], ClusterPolicy::Fifo, config, 7);
        let mumak = replay_in_mumak(
            &run.history,
            MumakConfig { num_trackers: 8, ..MumakConfig::default() },
        );
        let rows = accuracy_rows(&run, &mumak);
        assert!(
            rows[0].error_pct() < -15.0,
            "Mumak should underestimate, got {:+.1}%",
            rows[0].error_pct()
        );
    }
}
