//! Terminal line plots for the figure binaries.
//!
//! Good enough to eyeball the paper's curve shapes (crossovers, decay,
//! bumps) straight from the experiment output without leaving the
//! terminal; the CSVs remain the canonical artifacts.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; its first character is the plot glyph.
    pub name: String,
    /// Data points (x must be positive when `log_x` is set).
    pub points: Vec<(f64, f64)>,
}

/// Renders series into a `width`×`height` character grid with axis labels.
/// `log_x` plots x on a log10 scale (the Figure 7/8 x-axes).
pub fn render(series: &[Series], width: usize, height: usize, log_x: bool) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let tx = |x: f64| if log_x { x.max(f64::MIN_POSITIVE).log10() } else { x };
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(tx(x));
        x_max = x_max.max(tx(x));
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.name.chars().next().unwrap_or('*');
        // draw line segments between consecutive points
        let mut cells: Vec<(usize, usize)> = Vec::new();
        for &(x, y) in &s.points {
            let cx = ((tx(x) - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            cells.push((cx.min(width - 1), height - 1 - cy.min(height - 1)));
        }
        for pair in cells.windows(2) {
            let ((x0, y0), (x1, y1)) = (pair[0], pair[1]);
            let steps = x1.abs_diff(x0).max(y1.abs_diff(y0)).max(1);
            for i in 0..=steps {
                let f = i as f64 / steps as f64;
                let x = (x0 as f64 + f * (x1 as f64 - x0 as f64)).round() as usize;
                let y = (y0 as f64 + f * (y1 as f64 - y0 as f64)).round() as usize;
                grid[y.min(height - 1)][x.min(width - 1)] = glyph;
            }
        }
        // points overwrite the interpolation so markers stay visible
        for &(x, y) in &cells {
            grid[y][x] = glyph;
        }
    }

    let mut out = String::new();
    for (row, line) in grid.iter().enumerate() {
        let label = if row == 0 {
            format!("{y_max:>9.1} |")
        } else if row == height - 1 {
            format!("{y_min:>9.1} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9}  {}\n", "", "-".repeat(width)));
    let x_lo = if log_x { 10f64.powf(x_min) } else { x_min };
    let x_hi = if log_x { 10f64.powf(x_max) } else { x_max };
    out.push_str(&format!(
        "{:>9}  {:<width$}\n",
        "",
        format!("{x_lo:.0} .. {x_hi:.0}{}", if log_x { " (log x)" } else { "" }),
        width = width
    ));
    for s in series {
        out.push_str(&format!(
            "{:>9}  {} = {}\n",
            "",
            s.name.chars().next().unwrap_or('*'),
            s.name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, pts: &[(f64, f64)]) -> Series {
        Series { name: name.into(), points: pts.to_vec() }
    }

    #[test]
    fn renders_points_and_legend() {
        let s = series("Max", &[(1.0, 0.0), (10.0, 5.0), (100.0, 10.0)]);
        let plot = render(&[s], 40, 10, true);
        assert!(plot.contains('M'));
        assert!(plot.contains("M = Max"));
        assert!(plot.contains("(log x)"));
        // y axis labels
        assert!(plot.contains("10.0 |"));
        assert!(plot.contains("0.0 |"));
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a = series("Alpha", &[(1.0, 1.0), (2.0, 2.0)]);
        let b = series("Beta", &[(1.0, 2.0), (2.0, 1.0)]);
        let plot = render(&[a, b], 30, 8, false);
        assert!(plot.contains('A'));
        assert!(plot.contains('B'));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(render(&[], 30, 8, false), "(no data)\n");
        // a single point must not panic or divide by zero
        let s = series("P", &[(5.0, 3.0)]);
        let plot = render(&[s], 20, 5, false);
        assert!(plot.contains('P'));
        // constant series
        let s = series("C", &[(1.0, 2.0), (5.0, 2.0)]);
        let plot = render(&[s], 20, 5, true);
        assert!(plot.contains('C'));
    }

    #[test]
    fn minimum_dimensions_enforced() {
        let s = series("X", &[(0.0, 0.0), (1.0, 1.0)]);
        let plot = render(&[s], 1, 1, false);
        assert!(plot.lines().count() >= 4);
    }

    #[test]
    fn monotone_series_renders_monotone() {
        // the highest-y point lands on the top row, lowest on the bottom
        let s = series("M", &[(1.0, 0.0), (2.0, 10.0)]);
        let plot = render(&[s], 20, 6, false);
        let lines: Vec<&str> = plot.lines().collect();
        assert!(lines[0].contains('M'), "top row should hold the max point");
        assert!(lines[5].contains('M'), "bottom row should hold the min point");
    }
}
