//! Figure 8 (§V-C): MaxEDF vs MinEDF on the synthetic Facebook workload.
//!
//! Traces come from the Synthetic TraceGen's Facebook model (LogNormal task
//! durations fitted in the paper, Table-3-style job mix). Deadline factors
//! {1.1, 1.5, 2}, mean inter-arrival swept as in Figure 7, metric = sum of
//! relative deadlines exceeded, averaged over repetitions (`SIMMR_REPS`,
//! default 400).
//!
//! Expected shape: MinEDF consistently and significantly outperforms
//! MaxEDF, consistent with the real-trace study.

use simmr_bench::csvout::write_csv;
use simmr_bench::workloads::assign_deadlines;
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_stats::SeededRng;
use simmr_trace::FacebookWorkload;

const JOBS_PER_TRACE: usize = 100;

fn reps() -> usize {
    std::env::var("SIMMR_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(400)
}

fn one_run(mean_ia_ms: f64, df: f64, policy: &str, seed: u64) -> f64 {
    let mut trace =
        FacebookWorkload { mean_interarrival_ms: mean_ia_ms }.generate(JOBS_PER_TRACE, seed);
    let mut rng = SeededRng::new(seed ^ 0xDEAD);
    assign_deadlines(&mut trace, df, 64, 64, &mut rng);
    let report = SimulatorEngine::new(
        EngineConfig::new(64, 64),
        &trace,
        parse_policy(policy).expect("policy exists"),
    )
    .run();
    report.total_relative_deadline_exceeded()
}

fn average(mean_ia_ms: f64, df: f64, policy: &str, reps: usize) -> f64 {
    simmr_bench::parallel_mean(reps, |r| {
        one_run(mean_ia_ms, df, policy, 0xF8_0000 + r as u64 * 6271)
    })
}

fn main() {
    let reps = reps();
    eprintln!("[fig8] {reps} repetitions per point, {JOBS_PER_TRACE} Facebook jobs per trace");
    let mean_ias = [1.0e3, 1.0e4, 1.0e5, 1.0e6, 1.0e7, 1.0e8];
    for (panel, df) in [("a", 1.1), ("b", 1.5), ("c", 2.0)] {
        println!("\n== Figure 8({panel}): deadline factor = {df} ==");
        println!("{:>16} {:>12} {:>12}", "mean_ia_s", "MaxEDF", "MinEDF");
        let mut rows = Vec::new();
        let mut max_series = Vec::new();
        let mut min_series = Vec::new();
        for &ia in &mean_ias {
            let maxedf = average(ia, df, "maxedf", reps);
            let minedf = average(ia, df, "minedf", reps);
            println!("{:>16.0} {:>12.2} {:>12.2}", ia / 1000.0, maxedf, minedf);
            rows.push(format!("{},{},{}", ia / 1000.0, maxedf, minedf));
            max_series.push((ia / 1000.0, maxedf));
            min_series.push((ia / 1000.0, minedf));
        }
        print!(
            "{}",
            simmr_bench::plot::render(
                &[
                    simmr_bench::plot::Series { name: "X MaxEDF".into(), points: max_series },
                    simmr_bench::plot::Series { name: "o MinEDF".into(), points: min_series },
                ],
                64,
                14,
                true,
            )
        );
        write_csv(
            &format!("fig8{panel}_facebook_edf_df{df}"),
            "mean_interarrival_s,maxedf_rel_deadline_exceeded,minedf_rel_deadline_exceeded",
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper): MinEDF significantly outperforms MaxEDF across\n\
         the sweep, consistent with the real-testbed study of Figure 7."
    );
}
