//! Ablation: what happens to SimMR's accuracy if it drops the shuffle
//! model, like Mumak does? (§IV-A: "The main difference between Mumak and
//! SimMR is that Mumak omits modeling the shuffle/sort phase.")
//!
//! We replay the same testbed history twice through the `simmr-serve`
//! facade: once with the full profile and once with both shuffle arrays
//! zeroed. The degraded replay should reproduce Mumak-class
//! underestimation — directly validating the paper's diagnosis.

use simmr_bench::csvout::write_csv;
use simmr_bench::pipeline::{accuracy_rows, mean_abs_error, run_testbed};
use simmr_cluster::{ClusterConfig, ClusterPolicy};
use simmr_sched::PolicySpec;
use simmr_serve::{ScenarioSpec, SimFacade, TraceRef};
use simmr_trace::trace_from_history;
use simmr_types::SimTime;

fn main() {
    let config = ClusterConfig::paper_testbed();
    let jobs: Vec<_> = simmr_bench::suite_models(&[1])
        .into_iter()
        .enumerate()
        .map(|(i, m)| (m, SimTime::from_secs(i as u64 * 2000), None))
        .collect();
    let run = run_testbed(jobs, ClusterPolicy::Fifo, config, 0xAB1A);
    let full_trace = trace_from_history(&run.history, "ablation").unwrap();

    // degraded trace: shuffle model off
    let mut no_shuffle = full_trace.clone();
    for job in no_shuffle.jobs.iter_mut() {
        for d in job.template.first_shuffle_durations.iter_mut() {
            *d = 0;
        }
        for d in job.template.typical_shuffle_durations.iter_mut() {
            *d = 0;
        }
    }

    let facade = SimFacade::new();
    let replay = |trace: &simmr_types::WorkloadTrace| {
        let spec = ScenarioSpec::new(TraceRef::Inline(trace.clone()), PolicySpec::Fifo);
        facade.run(&spec).expect("replay scenario runs").report
    };
    let full = accuracy_rows(&run, &replay(&full_trace));
    let degraded = accuracy_rows(&run, &replay(&no_shuffle));

    println!("== Ablation: SimMR with and without the shuffle model ==");
    println!("{:<22} {:>10} {:>12} {:>14}", "job", "actual_s", "full_err%", "no_shuffle_err%");
    let mut rows = Vec::new();
    for (f, d) in full.iter().zip(&degraded) {
        println!(
            "{:<22} {:>10.1} {:>+12.2} {:>+14.2}",
            f.name,
            f.actual_ms as f64 / 1000.0,
            f.error_pct(),
            d.error_pct()
        );
        rows.push(format!("{},{},{},{}", f.name, f.actual_ms, f.error_pct(), d.error_pct()));
    }
    println!(
        "\nfull model: avg |err| {:.2}%   shuffle dropped: avg |err| {:.2}%",
        mean_abs_error(&full),
        mean_abs_error(&degraded)
    );
    println!(
        "=> dropping the shuffle model reproduces Mumak-class underestimation,\n\
         confirming the paper's diagnosis of Mumak's 37% average error."
    );
    write_csv("ablation_shuffle", "job,actual_ms,full_err_pct,no_shuffle_err_pct", &rows);
}
