//! Figure 6 (§IV-E): simulator performance. The paper collects 1148 jobs
//! from six months of cluster operation, compacts them into a single trace,
//! and measures replay time: SimMR finishes in 1.5 s, Mumak needs 680 s —
//! more than two orders of magnitude slower, because Mumak simulates
//! TaskTrackers and heartbeats.
//!
//! We rebuild the setup: the 18 suite jobs are profiled once on the testbed,
//! then a 1148-job trace is sampled from those templates with compact
//! exponential arrivals, and both simulators replay growing prefixes while
//! we measure wall-clock time.

use simmr_bench::csvout::write_csv;
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_mumak::{MumakConfig, MumakSim};
use simmr_sched::FifoPolicy;
use simmr_stats::SeededRng;
use simmr_trace::{profile_history, RumenTrace};
use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};
use std::time::Instant;

const TOTAL_JOBS: usize = 1148;

/// Profiles the 18 suite jobs once each on the testbed.
fn suite_templates() -> Vec<JobTemplate> {
    let mut out = Vec::new();
    for (i, model) in simmr_bench::suite_models(&[0, 1, 2]).into_iter().enumerate() {
        let mut sim =
            ClusterSim::new(ClusterConfig::paper_testbed(), ClusterPolicy::Fifo, 0xF6 + i as u64);
        sim.submit(model, SimTime::ZERO, None);
        let run = sim.run();
        out.push(profile_history(&run.history).expect("history profiles")[0].template.clone());
    }
    out
}

/// Samples `n` jobs from the profiled templates with compact arrivals
/// (the paper removed inactivity periods from its 6-month trace).
///
/// The paper's 1148 production jobs total ~152 hours of *serial* work
/// (§IV-E), i.e. ~8 minutes per job on average — production mixes are
/// dominated by small jobs. We downscale each sampled suite template with
/// the trace-scaling transform so the generated mix matches that scale.
fn sample_trace(templates: &[JobTemplate], n: usize, seed: u64) -> WorkloadTrace {
    const TARGET_MEAN_SERIAL_MS: f64 = 152.0 * 3600.0 * 1000.0 / 1148.0;
    let mut rng = SeededRng::new(seed);
    let mut trace = WorkloadTrace::new(format!("{n} sampled jobs"), "fig6");
    let mut clock = SimTime::ZERO;
    for _ in 0..n {
        let t = &templates[rng.index(templates.len())];
        // exponential job-size mix around the production mean
        let target = TARGET_MEAN_SERIAL_MS * (-rng.unit().max(1e-9).ln());
        let factor = (target / t.total_work_ms().max(1) as f64).clamp(0.002, 1.0);
        trace.push(JobSpec::new(simmr_trace::scale_template(t, factor), clock));
        // compact arrivals: keep the 64x64 cluster busy without an
        // unbounded backlog (mean serial work / slots ≈ 7.5 s)
        clock += rng.uniform_u64(2_000, 13_000);
    }
    trace
}

fn main() {
    eprintln!("[fig6] profiling the 18 suite jobs on the testbed ...");
    let templates = suite_templates();
    let full = sample_trace(&templates, TOTAL_JOBS, 0x6F16);
    eprintln!(
        "[fig6] full trace: {} jobs, {} tasks, {:.1} hours of serial work",
        full.len(),
        full.total_tasks(),
        full.total_serial_work_ms() as f64 / 3_600_000.0
    );

    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>14} {:>9}",
        "jobs", "simmr_s", "simmr_events", "mumak_s", "mumak_events", "speedup"
    );
    let mut rows = Vec::new();
    for &n in &[57usize, 115, 287, 574, 861, TOTAL_JOBS] {
        let trace = full.prefix_by_arrival(n);

        let t0 = Instant::now();
        let simmr_report =
            SimulatorEngine::new(EngineConfig::new(64, 64), &trace, Box::new(FifoPolicy::new()))
                .run();
        let simmr_s = t0.elapsed().as_secs_f64();

        let rumen = RumenTrace::from_workload(&trace);
        let t0 = Instant::now();
        let mumak_report = MumakSim::new(MumakConfig::default()).run(&rumen);
        let mumak_s = t0.elapsed().as_secs_f64();

        let speedup = mumak_s / simmr_s.max(1e-9);
        println!(
            "{:>6} {:>12.4} {:>14} {:>12.3} {:>14} {:>8.0}x",
            n,
            simmr_s,
            simmr_report.events_processed,
            mumak_s,
            mumak_report.events_processed,
            speedup
        );
        rows.push(format!(
            "{n},{simmr_s},{},{mumak_s},{},{speedup}",
            simmr_report.events_processed, mumak_report.events_processed
        ));
    }
    write_csv("fig6_perf", "jobs,simmr_s,simmr_events,mumak_s,mumak_events,speedup", &rows);
    println!(
        "\nPaper: SimMR 1.5 s vs Mumak 680 s on 1148 jobs (>450x). The shape to\n\
         check is the orders-of-magnitude gap, driven by Mumak's heartbeat events."
    );
}
