//! Ablation: speculative execution in the SimMR engine.
//!
//! §IV-B of the paper: *"We disabled speculation as it did not lead to any
//! significant improvements."* This checks the claim against the engine's
//! own speculation model, driven as `ScenarioSpec`s through the
//! `simmr-serve` facade: per-slot LogNormal slowdowns (`slowdown_sigma`)
//! create stragglers, and `speculation: F` duplicates a map attempt
//! outliving `F ×` its job's median map duration (first finisher wins).
//! With a mild, calibrated slowdown spread speculation should barely move
//! the numbers — and on a pathological straggler-heavy cluster it should
//! recover the map-stage tail.

use simmr_bench::csvout::write_csv;
use simmr_sched::PolicySpec;
use simmr_serve::{ScenarioSpec, SimFacade, TraceRef};
use simmr_types::{ClusterSpec, WorkloadTrace};

const SEED: u64 = 0x57EC;

fn scenario(trace: &WorkloadTrace, sigma: f64, speculation: Option<f64>) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(TraceRef::Inline(trace.clone()), PolicySpec::Fifo);
    spec.cluster = ClusterSpec::new(32, 16).with_hosts(8);
    spec.seed = SEED;
    // the facade builds the mean-1 LogNormal(-sigma^2/2, sigma) slowdown
    spec.slowdown_sigma = Some(sigma);
    spec.speculation = speculation;
    spec
}

fn compare(label: &str, trace: &WorkloadTrace, sigma: f64, rows: &mut Vec<String>) {
    let mut runs = SimFacade::new()
        .run_batch(&[scenario(trace, sigma, None), scenario(trace, sigma, Some(1.5))])
        .into_iter();
    let off = runs.next().unwrap().expect("spec-off run").report;
    let on = runs.next().unwrap().expect("spec-on run").report;
    println!("\n-- {label} --");
    println!("{:<18} {:>12} {:>12} {:>9}", "metric", "spec_off_s", "spec_on_s", "delta%");
    for (metric, base, spec) in [
        ("mean_job_dur", off.mean_duration_ms(), on.mean_duration_ms()),
        ("makespan", off.makespan.as_millis() as f64, on.makespan.as_millis() as f64),
    ] {
        let delta = (spec / base - 1.0) * 100.0;
        println!("{:<18} {:>12.1} {:>12.1} {:>+9.2}", metric, base / 1000.0, spec / 1000.0, delta);
        rows.push(format!("{label},{metric},{base},{spec},{delta}"));
    }
}

fn main() {
    println!("== Ablation: speculative execution (§IV-B \"no significant improvements\") ==");
    let trace = simmr_trace::FacebookWorkload { mean_interarrival_ms: 30_000.0 }.generate(80, SEED);
    let mut rows = Vec::new();

    // calibrated: a mild per-slot spread, stragglers rare and shallow
    compare("calibrated (sigma=0.3)", &trace, 0.3, &mut rows);

    // pathological: heavy-tailed slot speeds, deep stragglers
    compare("pathological (sigma=1.2)", &trace, 1.2, &mut rows);

    write_csv("ablation_speculation", "scenario,metric,spec_off_ms,spec_on_ms,delta_pct", &rows);
    println!(
        "\nWith the paper-like straggler profile speculation changes little\n\
         (consistent with §IV-B); on a straggler-heavy cluster the duplicate\n\
         attempts land on faster slots and recover the map-stage tail."
    );
}
