//! Ablation: speculative execution on the testbed.
//!
//! §IV-B of the paper: *"We disabled speculation as it did not lead to any
//! significant improvements."* We check that claim directly: with the
//! testbed's calibrated straggler rate (1%, ×2.5) speculation should barely
//! move the suite's completion times — and then we crank stragglers up to
//! show the feature does work when it matters.

use simmr_bench::csvout::write_csv;
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_types::SimTime;

fn run_suite(config: ClusterConfig, seed: u64) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (i, model) in simmr_bench::suite_models(&[1]).into_iter().enumerate() {
        let mut sim = ClusterSim::new(config, ClusterPolicy::Fifo, seed + i as u64);
        sim.submit(model, SimTime::ZERO, None);
        let run = sim.run();
        out.push((run.results[0].name.clone(), run.results[0].duration_ms()));
    }
    out
}

fn compare(label: &str, config: ClusterConfig, rows: &mut Vec<String>) {
    let off = run_suite(config, 0x57EC);
    let on = run_suite(ClusterConfig { speculative_execution: true, ..config }, 0x57EC);
    println!("\n-- {label} --");
    println!("{:<20} {:>12} {:>12} {:>9}", "job", "spec_off_s", "spec_on_s", "delta%");
    let mut total_delta = 0.0;
    for ((name, base), (_, spec)) in off.iter().zip(&on) {
        let delta = (*spec as f64 / *base as f64 - 1.0) * 100.0;
        total_delta += delta;
        println!(
            "{:<20} {:>12.1} {:>12.1} {:>+9.2}",
            name,
            *base as f64 / 1000.0,
            *spec as f64 / 1000.0,
            delta
        );
        rows.push(format!("{label},{name},{base},{spec},{delta}"));
    }
    println!("mean delta: {:+.2}%", total_delta / off.len() as f64);
}

fn main() {
    println!("== Ablation: speculative execution (§IV-B \"no significant improvements\") ==");
    let mut rows = Vec::new();

    // the calibrated testbed: stragglers are rare and mild
    compare("calibrated (1% stragglers x2.5)", ClusterConfig::paper_testbed(), &mut rows);

    // a pathological cluster: stragglers common and severe
    let pathological = ClusterConfig {
        straggler_prob: 0.10,
        straggler_factor: 6.0,
        ..ClusterConfig::paper_testbed()
    };
    compare("pathological (10% stragglers x6)", pathological, &mut rows);

    write_csv("ablation_speculation", "scenario,job,spec_off_ms,spec_on_ms,delta_pct", &rows);
    println!(
        "\nWith the paper-like straggler profile speculation changes little\n\
         (consistent with §IV-B); on a straggler-heavy cluster it recovers the\n\
         map-stage tail."
    );
}
