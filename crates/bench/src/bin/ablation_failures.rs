//! Ablation: node failures on the testbed (extension beyond the paper).
//!
//! The paper's validation cluster was healthy; a practical what-if a SimMR
//! user asks is *how much slack do deadlines need on flaky hardware?* We
//! sweep per-node MTBF and report the suite's completion-time inflation —
//! and measure what failures do to SimMR's replay accuracy. The result is
//! a real limit of trace replay: history logs record only *winning*
//! attempts, so killed work and capacity dips are invisible to the
//! profile, and the replay underestimates increasingly as failures mount.

use simmr_bench::csvout::write_csv;
use simmr_bench::pipeline::{accuracy_rows, mean_abs_error, replay_in_simmr};
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_types::SimTime;

fn run_suite(mtbf_s: f64, seed: u64) -> simmr_cluster::TestbedRun {
    let config = ClusterConfig {
        node_mtbf_s: mtbf_s,
        node_recovery_s: 60.0,
        ..ClusterConfig::paper_testbed()
    };
    let mut sim = ClusterSim::new(config, ClusterPolicy::Fifo, seed);
    let mut clock = SimTime::ZERO;
    for model in simmr_bench::suite_models(&[1]) {
        sim.submit(model, clock, None);
        clock += 2_000_000;
    }
    sim.run()
}

fn main() {
    println!("== Ablation: node failures (per-node MTBF sweep, 6-app suite) ==");
    println!(
        "{:>10} {:>16} {:>14} {:>16}",
        "mtbf_s", "mean_job_dur_s", "vs_healthy%", "simmr_replay_err%"
    );
    let mut rows = Vec::new();
    let mut healthy_mean = 0.0f64;
    for &mtbf in &[0.0f64, 3600.0, 900.0, 300.0] {
        let run = run_suite(mtbf, 0xFA11);
        let mean = run.results.iter().map(|r| r.duration_ms() as f64).sum::<f64>()
            / run.results.len() as f64;
        if mtbf == 0.0 {
            healthy_mean = mean;
        }
        let deadlines = vec![None; run.results.len()];
        let replay = replay_in_simmr(&run.history, "fifo", 64, 64, &deadlines);
        let err = mean_abs_error(&accuracy_rows(&run, &replay));
        let inflation = (mean / healthy_mean - 1.0) * 100.0;
        println!("{:>10.0} {:>16.1} {:>+14.2} {:>16.2}", mtbf, mean / 1000.0, inflation, err);
        rows.push(format!("{mtbf},{mean},{inflation},{err}"));
    }
    write_csv("ablation_failures", "mtbf_s,mean_dur_ms,inflation_pct,simmr_replay_err_pct", &rows);
    println!(
        "\nShorter MTBF inflates completion times (killed work re-executes) AND\n\
         degrades SimMR's replay accuracy: the history log records only winning\n\
         attempts, so lost work and down-node capacity are invisible to the\n\
         extracted profile. Trace replay is a healthy-cluster technique — a\n\
         limitation the paper's validation (on a healthy cluster) never hits."
    );
}
