//! Ablation: host failures in the SimMR engine (extension beyond the paper).
//!
//! The paper's validation cluster was healthy; a practical what-if a SimMR
//! user asks is *how much slack do deadlines need on flaky hardware?* This
//! sweep drives the engine's seeded failure model through `ScenarioSpec`s
//! run by the `simmr-serve` facade (the same scenarios the what-if service
//! answers): slots are striped over worker hosts, a fail-stop plan with the
//! given per-plan MTBF kills hosts mid-run (re-executing lost map output,
//! Hadoop-style), and we report the Facebook-mix completion-time inflation.
//! A second column arms the recovery model (60 s mean repair) and measures
//! how much of the inflation repaired hosts claw back.

use simmr_bench::csvout::write_csv;
use simmr_sched::PolicySpec;
use simmr_serve::{ScenarioSpec, SimFacade, TraceRef};
use simmr_types::{ClusterSpec, WorkloadTrace};

const SEED: u64 = 0xFA11;
const HOSTS: usize = 16;
const RECOVERY_MEAN_S: f64 = 60.0;

fn scenario(trace: &WorkloadTrace, mtbf_s: f64, count: u32, recovery: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(TraceRef::Inline(trace.clone()), PolicySpec::Fifo);
    spec.cluster = ClusterSpec::new(64, 32).with_hosts(HOSTS);
    spec.seed = SEED;
    if count > 0 {
        spec.failures = Some(count);
        spec.failure_mtbf_s = mtbf_s;
        if recovery {
            spec.failure_recovery_s = Some(RECOVERY_MEAN_S);
        }
    }
    spec
}

fn main() {
    println!("== Ablation: engine-level host failures (MTBF sweep, Facebook mix) ==");
    let trace = simmr_trace::FacebookWorkload { mean_interarrival_ms: 30_000.0 }.generate(80, SEED);
    let facade = SimFacade::new();
    let healthy = facade.run(&scenario(&trace, 0.0, 0, false)).expect("healthy run").report;
    let healthy_mean = healthy.mean_duration_ms();
    let span_s = healthy.makespan.as_secs_f64();
    println!(
        "{:>10} {:>16} {:>12} {:>18} {:>14}",
        "mtbf_s", "mean_job_dur_s", "vs_healthy%", "recovered_dur_s", "vs_healthy%"
    );
    let mut rows = Vec::new();
    // mtbf 0 is the healthy-cluster baseline (no fault plan)
    for &mtbf in &[0.0f64, 3600.0, 900.0, 300.0] {
        let (mean, rec_mean) = if mtbf == 0.0 {
            (healthy_mean, healthy_mean)
        } else {
            let count = (span_s / mtbf).ceil() as u32;
            let mut runs = facade
                .run_batch(&[
                    scenario(&trace, mtbf, count, false),
                    scenario(&trace, mtbf, count, true),
                ])
                .into_iter();
            let failed = runs.next().unwrap().expect("failure run");
            let recovered = runs.next().unwrap().expect("recovery run");
            (failed.report.mean_duration_ms(), recovered.report.mean_duration_ms())
        };
        let inflation = (mean / healthy_mean - 1.0) * 100.0;
        let rec_inflation = (rec_mean / healthy_mean - 1.0) * 100.0;
        println!(
            "{:>10.0} {:>16.1} {:>+12.2} {:>18.1} {:>+14.2}",
            mtbf,
            mean / 1000.0,
            inflation,
            rec_mean / 1000.0,
            rec_inflation
        );
        rows.push(format!("{mtbf},{mean},{inflation},{rec_mean},{rec_inflation}"));
    }
    write_csv(
        "ablation_failures",
        "mtbf_s,mean_dur_ms,inflation_pct,recovered_mean_dur_ms,recovered_inflation_pct",
        &rows,
    );
    println!(
        "\nShorter MTBF inflates completion times: failed hosts shrink the slot\n\
         pools for the rest of the run, killed attempts restart from scratch,\n\
         and completed map output on a lost host is re-executed while the job's\n\
         map stage is open. Arming the recovery model (60 s mean repair)\n\
         returns the slots and claws back most of the inflation — the residual\n\
         cost is the re-executed work itself."
    );
}
