//! Calibration helper: runs each §IV-C application (mid dataset) alone on
//! the paper testbed and prints actual runtime plus SimMR/Mumak replay
//! errors. Paper reference points (Fig. 5a): WC 251 s, Sort 88 s,
//! Bayes 476 s, TFIDF 66 s, WT 1271 s, Twitter 276 s.

use simmr_bench::pipeline::{accuracy_rows, replay_in_mumak, replay_in_simmr, run_testbed};
use simmr_cluster::{ClusterConfig, ClusterPolicy};
use simmr_mumak::MumakConfig;
use simmr_types::SimTime;

fn main() {
    let config = ClusterConfig::paper_testbed();
    println!("{:<18} {:>10} {:>12} {:>12}", "job", "actual_s", "simmr_err%", "mumak_err%");
    for (i, model) in simmr_bench::suite_models(&[1]).into_iter().enumerate() {
        let run = run_testbed(
            vec![(model, SimTime::ZERO, None)],
            ClusterPolicy::Fifo,
            config,
            1000 + i as u64,
        );
        let simmr = replay_in_simmr(&run.history, "fifo", 64, 64, &[None]);
        let mumak = replay_in_mumak(&run.history, MumakConfig::default());
        let s_rows = accuracy_rows(&run, &simmr);
        let m_rows = accuracy_rows(&run, &mumak);
        println!(
            "{:<18} {:>10.1} {:>+12.2} {:>+12.2}",
            s_rows[0].name,
            s_rows[0].actual_ms as f64 / 1000.0,
            s_rows[0].error_pct(),
            m_rows[0].error_pct()
        );
    }
}
