//! Figure 7 (§V-B): MaxEDF vs MinEDF on the real testbed workload.
//!
//! The 18 suite jobs (6 applications × 3 datasets) are profiled on the
//! testbed; each simulation draws a random permutation with exponential
//! inter-arrivals, assigns each job a deadline uniform in `[T_J, df·T_J]`
//! (T_J = all-slots standalone runtime), and replays under both schedulers.
//! The metric is the paper's *sum of relative deadlines exceeded*,
//! averaged over many repetitions (400 in the paper; set `SIMMR_REPS` to
//! override).
//!
//! Expected shape: identical curves at df=1; MinEDF strictly better at
//! df=1.5 and better still at df=3; the metric decays as the mean
//! inter-arrival grows; a non-preemption "bump" near 100 s.

use simmr_bench::csvout::write_csv;
use simmr_bench::workloads::{assign_deadlines, permute_with_exponential_arrivals};
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_core::{EngineConfig, SimulatorEngine};
use simmr_sched::parse_policy;
use simmr_stats::SeededRng;
use simmr_trace::profile_history;
use simmr_types::{JobSpec, JobTemplate, SimTime, WorkloadTrace};

fn reps() -> usize {
    std::env::var("SIMMR_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(400)
}

/// Profiles the 18 suite jobs (one standalone testbed run each).
fn suite_templates() -> Vec<JobTemplate> {
    let mut out = Vec::new();
    for (i, model) in simmr_bench::suite_models(&[0, 1, 2]).into_iter().enumerate() {
        let mut sim =
            ClusterSim::new(ClusterConfig::paper_testbed(), ClusterPolicy::Fifo, 0x700 + i as u64);
        sim.submit(model, SimTime::ZERO, None);
        let run = sim.run();
        out.push(profile_history(&run.history).expect("profiles")[0].template.clone());
    }
    out
}

/// One simulation: permute, draw arrivals and deadlines, run `policy`.
fn one_run(templates: &[JobTemplate], mean_ia_ms: f64, df: f64, policy: &str, seed: u64) -> f64 {
    let mut rng = SeededRng::new(seed);
    let mut trace = WorkloadTrace::new("fig7", "edf-study");
    for t in templates {
        trace.push(JobSpec::new(t.clone(), SimTime::ZERO));
    }
    permute_with_exponential_arrivals(&mut trace, mean_ia_ms, &mut rng);
    assign_deadlines(&mut trace, df, 64, 64, &mut rng);
    let report = SimulatorEngine::new(
        EngineConfig::new(64, 64),
        &trace,
        parse_policy(policy).expect("policy exists"),
    )
    .run();
    report.total_relative_deadline_exceeded()
}

/// Averages `reps` runs, fanned out across threads.
fn average(templates: &[JobTemplate], mean_ia_ms: f64, df: f64, policy: &str, reps: usize) -> f64 {
    simmr_bench::parallel_mean(reps, |r| {
        one_run(templates, mean_ia_ms, df, policy, 0xF17_0000 + r as u64 * 7919)
    })
}

fn main() {
    eprintln!("[fig7] profiling the 18 suite jobs ...");
    let templates = suite_templates();
    let reps = reps();
    eprintln!("[fig7] {reps} repetitions per point");

    let mean_ias = [1.0e3, 1.0e4, 1.0e5, 1.0e6, 1.0e7, 1.0e8];
    for (panel, df) in [("a", 1.0), ("b", 1.5), ("c", 3.0)] {
        println!("\n== Figure 7({panel}): deadline factor = {df} ==");
        println!("{:>16} {:>12} {:>12}", "mean_ia_s", "MaxEDF", "MinEDF");
        let mut rows = Vec::new();
        let mut max_series = Vec::new();
        let mut min_series = Vec::new();
        for &ia in &mean_ias {
            let maxedf = average(&templates, ia, df, "maxedf", reps);
            let minedf = average(&templates, ia, df, "minedf", reps);
            println!("{:>16.0} {:>12.2} {:>12.2}", ia / 1000.0, maxedf, minedf);
            rows.push(format!("{},{},{}", ia / 1000.0, maxedf, minedf));
            max_series.push((ia / 1000.0, maxedf));
            min_series.push((ia / 1000.0, minedf));
        }
        print!(
            "{}",
            simmr_bench::plot::render(
                &[
                    simmr_bench::plot::Series { name: "X MaxEDF".into(), points: max_series },
                    simmr_bench::plot::Series { name: "o MinEDF".into(), points: min_series },
                ],
                64,
                14,
                true,
            )
        );
        write_csv(
            &format!("fig7{panel}_real_edf_df{df}"),
            "mean_interarrival_s,maxedf_rel_deadline_exceeded,minedf_rel_deadline_exceeded",
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper): curves coincide at df=1; MinEDF beats MaxEDF at\n\
         df=1.5 and the gap widens at df=3; the metric decays with the arrival rate."
    );
}
