//! Figure 3 (§II): CDFs of map, shuffle, and reduce task durations for
//! WordCount under two different resource allocations (64×64 vs 32×32
//! slots). The paper's point: the duration *distributions* are invariant to
//! the allocation, which is what makes one execution a valid "job
//! representative" for replay. We quantify the similarity with the same
//! symmetric KL divergence used in Table I.

use simmr_apps::{AppKind, JobModel};
use simmr_bench::csvout::write_csv;
use simmr_cluster::{ClusterConfig, ClusterPolicy, ClusterSim};
use simmr_stats::{kl::symmetric_kl_ms, EmpiricalCdf, KlOptions};
use simmr_trace::profile_history;
use simmr_types::SimTime;

struct Phases {
    map: Vec<u64>,
    shuffle: Vec<u64>,
    reduce: Vec<u64>,
}

fn run(slots: usize, seed: u64) -> Phases {
    let config = ClusterConfig::paper_testbed();
    let job = JobModel::with_task_counts(AppKind::WordCount, 200, 256);
    let mut sim = ClusterSim::new(config, ClusterPolicy::Fifo, seed);
    sim.submit_capped(job, SimTime::ZERO, (slots, slots));
    let run = sim.run();
    let profiled = profile_history(&run.history).expect("history profiles");
    let t = &profiled[0].template;
    Phases {
        map: t.map_durations.clone(),
        // Figure 3 plots the typical-shuffle distribution
        shuffle: t.typical_shuffle_durations.clone(),
        reduce: t.reduce_durations.clone(),
    }
}

fn print_cdf(name: &str, a: &[u64], b: &[u64]) {
    let cdf_a = EmpiricalCdf::from_ms(a);
    let cdf_b = EmpiricalCdf::from_ms(b);
    let kl = symmetric_kl_ms(a, b, KlOptions::default());
    println!(
        "\n-- {name} durations: 64x64 ({} samples) vs 32x32 ({} samples), KL = {kl:.3} --",
        a.len(),
        b.len()
    );
    println!("{:>12} {:>10} {:>10}", "duration_s", "cdf_64x64", "cdf_32x32");
    let mut rows = Vec::new();
    for pct in (5..=100).step_by(5) {
        let q = pct as f64 / 100.0;
        let xa = cdf_a.quantile(q).unwrap_or(0.0);
        println!("{:>12.2} {:>10.2} {:>10.2}", xa / 1000.0, cdf_a.eval(xa), cdf_b.eval(xa));
        rows.push(format!("{},{},{}", xa, cdf_a.eval(xa), cdf_b.eval(xa)));
    }
    write_csv(&format!("fig3_{}", name.to_lowercase()), "duration_ms,cdf_64x64,cdf_32x32", &rows);
}

fn main() {
    println!("== Figure 3: WordCount task-duration CDFs under 64x64 vs 32x32 slots ==");
    let big = run(64, 0x64);
    let small = run(32, 0x32);
    print_cdf("Map", &big.map, &small.map);
    print_cdf("Shuffle", &big.shuffle, &small.shuffle);
    print_cdf("Reduce", &big.reduce, &small.reduce);
    println!(
        "\nPaper's claim: the distributions of the two executions are very similar\n\
         (small KL divergence), so either execution works as a replay template."
    );
}
