//! Ablation: the MinEDF sizing basis (lower bound / mean of bounds / upper
//! bound of the ARIA model). Lower is aggressive and overruns; Upper is
//! conservative and converges to MaxEDF under tight deadlines; the mean
//! (the paper's choice) balances the two.

use simmr_bench::csvout::write_csv;
use simmr_bench::workloads::assign_deadlines;
use simmr_core::{EngineConfig, JobQueue, SchedulerPolicy, SimulatorEngine};
use simmr_model::{min_slots_for_deadline_with, BoundBasis, JobProfileSummary, SlotAllocation};
use simmr_stats::SeededRng;
use simmr_trace::FacebookWorkload;
use simmr_types::{DurationMs, JobId, JobTemplate};
use std::collections::HashMap;

/// MinEDF with a configurable sizing basis (the library default is
/// `Estimate`; this harness-local policy exposes all three).
struct BasisMinEdf {
    basis: BoundBasis,
    wanted: HashMap<JobId, SlotAllocation>,
}

impl SchedulerPolicy for BasisMinEdf {
    fn name(&self) -> &str {
        "minedf-basis"
    }
    fn on_job_arrival(
        &mut self,
        id: JobId,
        template: &JobTemplate,
        relative_deadline: Option<DurationMs>,
        cluster: simmr_types::ClusterSpec,
    ) {
        let alloc = match relative_deadline {
            Some(d) => min_slots_for_deadline_with(
                &JobProfileSummary::from_template(template),
                d,
                cluster.map_slots,
                cluster.reduce_slots,
                self.basis,
            ),
            None => SlotAllocation {
                maps: cluster.map_slots.min(template.num_maps),
                reduces: cluster.reduce_slots.min(template.num_reduces),
            },
        };
        self.wanted.insert(id, alloc);
    }
    fn on_job_departure(&mut self, id: JobId) {
        self.wanted.remove(&id);
    }
    fn choose_next_map_task(&mut self, q: &JobQueue) -> Option<JobId> {
        q.entries()
            .iter()
            .filter(|e| {
                e.has_schedulable_map()
                    && self.wanted.get(&e.id).is_none_or(|w| e.running_maps < w.maps)
            })
            .min_by_key(|e| e.edf_key())
            .map(|e| e.id)
    }
    fn choose_next_reduce_task(&mut self, q: &JobQueue) -> Option<JobId> {
        q.entries()
            .iter()
            .filter(|e| {
                e.has_schedulable_reduce()
                    && self.wanted.get(&e.id).is_none_or(|w| e.running_reduces < w.reduces)
            })
            .min_by_key(|e| e.edf_key())
            .map(|e| e.id)
    }
}

fn main() {
    println!("== Ablation: MinEDF bound basis (df = 1.5, 100 Facebook jobs, 20 reps) ==");
    println!("{:>10} {:>10} {:>14} {:>12}", "basis", "missed", "rel_exceeded", "mean_dur_s");
    let mut rows = Vec::new();
    for (label, basis) in [
        ("lower", BoundBasis::Lower),
        ("estimate", BoundBasis::Estimate),
        ("upper", BoundBasis::Upper),
    ] {
        let mut missed = 0usize;
        let mut exceeded = 0.0;
        let mut dur = 0.0;
        let reps = 20;
        for rep in 0..reps {
            let mut trace = FacebookWorkload { mean_interarrival_ms: 60_000.0 }.generate(100, rep);
            let mut rng = SeededRng::new(rep ^ 0xBA515);
            assign_deadlines(&mut trace, 1.5, 64, 64, &mut rng);
            let report = SimulatorEngine::new(
                EngineConfig::new(64, 64),
                &trace,
                Box::new(BasisMinEdf { basis, wanted: HashMap::new() }),
            )
            .run();
            missed += report.missed_deadlines();
            exceeded += report.total_relative_deadline_exceeded();
            dur += report.mean_duration_ms();
        }
        let reps_f = reps as f64;
        println!(
            "{:>10} {:>10} {:>14.2} {:>12.1}",
            label,
            missed,
            exceeded / reps_f,
            dur / reps_f / 1000.0
        );
        rows.push(format!("{label},{missed},{},{}", exceeded / reps_f, dur / reps_f));
    }
    write_csv("ablation_basis", "basis,missed_total,rel_exceeded_avg,mean_dur_ms", &rows);
    println!(
        "\nLower sizes too few slots (more misses); Upper over-allocates (behaves\n\
         like MaxEDF under pressure); Estimate — the paper's mean of bounds —\n\
         balances deadline safety against slot conservation."
    );
}
